"""One-level "real object size" computation.

The paper's object-size JMX monitoring agent computes the *real size* of a
Java object as its own (shallow) size plus the size of the objects it
references **directly** — and explicitly not the transitive closure, because
in J2EE applications almost every object indirectly reaches almost every
other object, which would make the metric useless.

These functions implement exactly that rule over the simulated
:class:`~repro.jvm.objects.JavaObject` graph.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from repro.jvm.heap import Heap
from repro.jvm.objects import JavaObject


def deep_object_size(obj: JavaObject, heap: Optional[Heap] = None) -> int:
    """Shallow size of ``obj`` plus the shallow sizes of its direct references.

    Parameters
    ----------
    obj:
        The object to measure.
    heap:
        When given, references to objects that are no longer live on the heap
        are skipped (they have been collected and occupy no memory).

    Notes
    -----
    Duplicate references to the same object are counted once, mirroring a
    retained-size computation over a set of children.
    """
    total = obj.shallow_size
    seen: Set[int] = set()
    for child in obj.iter_references():
        if child.object_id in seen:
            continue
        seen.add(child.object_id)
        if heap is not None and not heap.is_live(child):
            continue
        total += child.shallow_size
    return total


def retained_component_size(
    roots: Iterable[JavaObject], heap: Optional[Heap] = None
) -> int:
    """One-level size aggregated over a component's root objects.

    A component may expose several long-lived objects (instance state,
    caches); its reported size is the sum of their one-level sizes, with
    shared children counted once.
    """
    total = 0
    seen_children: Set[int] = set()
    seen_roots: Set[int] = set()
    for root in roots:
        if root.object_id in seen_roots:
            continue
        seen_roots.add(root.object_id)
        if heap is not None and not heap.is_live(root):
            continue
        total += root.shallow_size
        for child in root.iter_references():
            if child.object_id in seen_children or child.object_id in seen_roots:
                continue
            seen_children.add(child.object_id)
            if heap is not None and not heap.is_live(child):
                continue
            total += child.shallow_size
    return total
