"""One-level "real object size" computation.

The paper's object-size JMX monitoring agent computes the *real size* of a
Java object as its own (shallow) size plus the size of the objects it
references **directly** — and explicitly not the transitive closure, because
in J2EE applications almost every object indirectly reaches almost every
other object, which would make the metric useless.

These functions implement exactly that rule over the simulated
:class:`~repro.jvm.objects.JavaObject` graph.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.jvm.heap import Heap
from repro.jvm.objects import JavaObject


def deep_object_size(obj: JavaObject, heap: Optional[Heap] = None) -> int:
    """Shallow size of ``obj`` plus the shallow sizes of its direct references.

    Parameters
    ----------
    obj:
        The object to measure.
    heap:
        When given, references to objects that are no longer live on the heap
        are skipped (they have been collected and occupy no memory).

    Notes
    -----
    Duplicate references to the same object are counted once, mirroring a
    retained-size computation over a set of children.
    """
    total = obj.shallow_size
    seen: Set[int] = set()
    for child in obj.iter_references():
        if child.object_id in seen:
            continue
        seen.add(child.object_id)
        if heap is not None and not heap.is_live(child):
            continue
        total += child.shallow_size
    return total


def retained_component_size(
    roots: Iterable[JavaObject], heap: Optional[Heap] = None
) -> int:
    """One-level size aggregated over a component's root objects.

    A component may expose several long-lived objects (instance state,
    caches); its reported size is the sum of their one-level sizes, with
    shared children counted once.
    """
    total = 0
    seen_children: Set[int] = set()
    seen_roots: Set[int] = set()
    for root in roots:
        if root.object_id in seen_roots:
            continue
        seen_roots.add(root.object_id)
        if heap is not None and not heap.is_live(root):
            continue
        total += root.shallow_size
        for child in root.iter_references():
            if child.object_id in seen_children or child.object_id in seen_roots:
                continue
            seen_children.add(child.object_id)
            if heap is not None and not heap.is_live(child):
                continue
            total += child.shallow_size
    return total


class ComponentSizeCache:
    """Dirty-flag memoisation of :func:`retained_component_size`.

    The monitoring stack measures every component's one-level size twice per
    intercepted request (the Aspect Component samples before *and* after the
    execution) plus once per periodic snapshot, but a component's size only
    changes when one of its roots gains/loses a reference (leak injections)
    or when a referenced object dies (garbage collection).  Both causes are
    observable in O(#roots) without walking the reference graph:

    * every :class:`~repro.jvm.objects.JavaObject` bumps a ``version``
      counter on reference mutations, and
    * the :class:`~repro.jvm.heap.Heap` bumps a ``liveness_epoch`` whenever
      any object stops being live.

    A cached size is therefore valid while the heap epoch and every root's
    ``(object_id, version)`` pair are unchanged.  Child-object sizes are
    immutable after allocation in this model, so they cannot invalidate a
    one-level measurement on their own.
    """

    def __init__(self, heap: Optional[Heap] = None) -> None:
        self._heap = heap
        #: component -> (liveness epoch, ((root id, root version), ...), size)
        self._cache: Dict[str, Tuple[int, Tuple[Tuple[int, int], ...], int]] = {}
        self._hits = 0
        self._misses = 0

    def component_size(self, component: str, roots: List[JavaObject]) -> int:
        """Cached one-level size of ``component``'s root set."""
        heap = self._heap
        epoch = heap.liveness_epoch if heap is not None else 0
        stamp = tuple((root.object_id, root.version) for root in roots)
        entry = self._cache.get(component)
        if entry is not None and entry[0] == epoch and entry[1] == stamp:
            self._hits += 1
            return entry[2]
        size = retained_component_size(roots, heap=heap)
        self._cache[component] = (epoch, stamp, size)
        self._misses += 1
        return size

    def invalidate(self, component: Optional[str] = None) -> None:
        """Drop one component's cached size (or all of them)."""
        if component is None:
            self._cache.clear()
        else:
            self._cache.pop(component, None)

    @property
    def stats(self) -> Dict[str, int]:
        """Cache hit/miss counters (for the perf harness and tests)."""
        return {"hits": self._hits, "misses": self._misses}
