"""The JMX Manager Agent.

The core of the proposal (Section III-B.3): it collects the metrics reported
by the Aspect Components, builds the resource-component map, offers a first
root-cause analysis, and can activate or deactivate ACs on demand (to reduce
overhead or focus monitoring on a subset of components).

Besides the AC-pushed samples the manager can also *poll*: :meth:`snapshot`
reads the object-size agent for every known component and the heap agent for
the whole JVM, producing the evenly spaced per-component size series that
Figs. 4, 5 and 7 plot (rarely used components would otherwise have almost no
data points).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.aspect_component import ASPECT_DOMAIN
from repro.core.monitoring_agents import AGENT_DOMAIN
from repro.core.resource_map import DEFAULT_METRIC, ComponentSample, ResourceComponentMap
from repro.core.rootcause import PaperMapStrategy, RootCauseReport, RootCauseStrategy
from repro.jmx.mbean import MBean, attribute, operation
from repro.jmx.mbean_server import MBeanServer
from repro.jmx.notifications import Notification, NotificationBroadcaster, type_filter
from repro.jmx.object_name import ObjectName

#: Canonical ObjectName of the manager agent.
MANAGER_OBJECT_NAME = ObjectName.of("repro.core", type="ManagerAgent")

#: Notification emitted when a component's consumption crosses the alert threshold.
AGING_SUSPECT_NOTIFICATION = "repro.aging.suspect"

#: Buffered AC samples are folded into the map once this many accumulate
#: (or earlier, whenever anything reads the map).
SAMPLE_FLUSH_THRESHOLD = 256


class ManagerAgent(MBean, NotificationBroadcaster):
    """Collects samples, builds the map and ranks root-cause suspects.

    Parameters
    ----------
    mbean_server:
        Server used to reach agents and AC proxies.
    clock:
        Clock-like object used to timestamp snapshots.
    strategy:
        Root-cause strategy (defaults to the paper's map strategy).
    alert_growth_bytes:
        When a component's accumulated consumption first exceeds this many
        bytes, the manager emits an ``repro.aging.suspect`` notification.
    """

    description = "JMX Manager Agent: resource-component map and root-cause analysis"

    def __init__(
        self,
        mbean_server: MBeanServer,
        clock: Optional[object] = None,
        strategy: Optional[RootCauseStrategy] = None,
        alert_growth_bytes: float = 10 * 1024 * 1024,
    ) -> None:
        MBean.__init__(self)
        NotificationBroadcaster.__init__(self)
        self._server = mbean_server
        self._clock = clock
        self.strategy = strategy or PaperMapStrategy()
        self.alert_growth_bytes = float(alert_growth_bytes)
        self._map = ResourceComponentMap()
        self._known_components: List[str] = []
        self._known_set: set = set()
        self._pending_samples: List[ComponentSample] = []
        #: Per-component delta sums of the buffered samples / consumption at
        #: the last flush — a cheap running estimate that lets the buffered
        #: intake still raise aging alerts promptly (see record_sample).
        self._pending_growth: Dict[str, float] = {}
        self._folded_consumption: Dict[str, float] = {}
        self._alerted: set = set()
        self._snapshot_count = 0
        self._snapshot_listeners: List[Callable[[float, Dict[str, float]], None]] = []
        #: Whether snapshots also poll the heap agent's ``live_bytes`` walk
        #: (an O(live objects) reference-graph closure).  Off by default;
        #: the rejuvenation controller switches it on because its policies
        #: extrapolate the post-GC ``heap_live`` series.
        self.poll_live_heap = False

    # ------------------------------------------------------------------ #
    def _now(self) -> float:
        return float(getattr(self._clock, "now", 0.0)) if self._clock is not None else 0.0

    @property
    def map(self) -> ResourceComponentMap:
        """The resource-component map, with buffered samples folded in."""
        self._flush_samples()
        return self._map

    # ------------------------------------------------------------------ #
    # Sample intake (called by ACs through the MBeanServer)
    # ------------------------------------------------------------------ #
    @operation
    def record_sample(self, sample: ComponentSample) -> None:
        """Buffer one Aspect-Component sample (folded into the map in batches).

        ACs deliver two samples per intercepted request; buffering them and
        folding in bulk replaces per-sample series appends on the hottest
        monitoring path.  Every read of the map flushes first, so buffering
        is invisible to consumers.
        """
        if not isinstance(sample, ComponentSample):
            raise TypeError(f"expected a ComponentSample, got {type(sample).__name__}")
        self._pending_samples.append(sample)
        component = sample.component
        if component not in self._alerted:
            # Running delta-sum estimate: when the folded consumption plus
            # the buffered growth reaches the alert threshold, flush now so
            # the aging alert fires on the sample that crossed it instead of
            # up to a buffer's worth of samples later.
            growth = self._pending_growth.get(component, 0.0) + sample.deltas.get(
                DEFAULT_METRIC, 0.0
            )
            self._pending_growth[component] = growth
            if (
                growth > 0
                and self._folded_consumption.get(component, 0.0) + growth
                >= self.alert_growth_bytes
            ):
                self._flush_samples()
                return
        if len(self._pending_samples) >= SAMPLE_FLUSH_THRESHOLD:
            self._flush_samples()

    def _flush_samples(self) -> None:
        """Fold every buffered sample into the map and run alert checks.

        The alert check is folded into the flush: one consumption scan per
        touched series decides the alert *and* refreshes the folded-growth
        estimate the buffered intake's early-flush heuristic reads (the
        pre-fold version scanned each series twice — once for the alert,
        once for the estimate).
        """
        pending = self._pending_samples
        if not pending:
            return
        self._pending_samples = []
        self._pending_growth.clear()
        touched = dict.fromkeys(sample.component for sample in pending)
        for component in touched:
            if component not in self._known_set:
                self._known_set.add(component)
                self._known_components.append(component)
        self._map.add_samples(pending)
        for component in touched:
            if component in self._alerted:
                continue
            growth = self._map.consumption(component, DEFAULT_METRIC)
            if growth >= self.alert_growth_bytes:
                self._emit_alert(component, growth)
            else:
                self._folded_consumption[component] = growth

    @operation
    def register_component(self, component: str) -> None:
        """Declare a component so it shows up in the map even if never sampled."""
        if component not in self._known_set:
            self._known_set.add(component)
            self._known_components.append(component)
        self._map.register_component(component)

    @operation
    def record_external_series(
        self, component: str, metric: str, when: float, value: float
    ) -> None:
        """Record a metric point produced outside the polled agents.

        Hybrid simulation uses this to publish the fluid bulk population's
        per-component series (cumulative bulk visits, modelled resource
        growth) into the same :class:`ResourceComponentMap` the discrete
        tracers feed, so attribution and trend analysis see one combined
        picture.  Unknown components are registered on first use.
        """
        if component not in self._known_set:
            self.register_component(component)
        self._map.record_observation(component, metric, float(when), float(value))

    # ------------------------------------------------------------------ #
    # Polling
    # ------------------------------------------------------------------ #
    @operation
    def snapshot(self, timestamp: Optional[float] = None) -> Dict[str, float]:
        """Poll the object-size agent for every known component.

        Returns the component -> object_size mapping recorded, and also
        records whole-JVM heap usage under the pseudo component ``"<jvm>"``.
        """
        self._flush_samples()
        when = timestamp if timestamp is not None else self._now()
        sizes: Dict[str, float] = {}
        object_size_agents = self._server.query_names(f"{AGENT_DOMAIN}:type=object-size,*")
        for agent_name in object_size_agents:
            for component in self._known_components:
                values = self._server.invoke(agent_name, "sample", component)
                if not values:
                    continue
                size = float(values.get("object_size", 0.0))
                sizes[component] = size
                self._map.record_observation(component, "object_size", when, size)
                self._check_alert(component)
        heap_agents = self._server.query_names(f"{AGENT_DOMAIN}:type=heap,*")
        for agent_name in heap_agents:
            values = self._server.invoke(agent_name, "sample", "<jvm>")
            if values:
                self._map.record_observation(
                    "<jvm>", "heap_used", when, float(values.get("heap_used", 0.0))
                )
                if self.poll_live_heap:
                    # The post-GC floor — a reference-graph walk, so polled
                    # only when a rejuvenation controller consumes it.
                    self._map.record_observation(
                        "<jvm>",
                        "heap_live",
                        when,
                        float(self._server.invoke(agent_name, "live_bytes")),
                    )
        # Extension resources: the thread and connection-pool agents (when
        # installed) contribute whole-JVM series under the same ``"<jvm>"``
        # pseudo component, giving the rejuvenation controller's thread and
        # connection channels an evenly spaced trend to extrapolate.
        for agent_name in self._server.query_names(f"{AGENT_DOMAIN}:type=threads,*"):
            values = self._server.invoke(agent_name, "sample", "<jvm>")
            if values:
                self._map.record_observation(
                    "<jvm>", "threads_total", when, float(values.get("threads_total", 0.0))
                )
        for agent_name in self._server.query_names(f"{AGENT_DOMAIN}:type=connections,*"):
            values = self._server.invoke(agent_name, "sample", "<jvm>")
            if values:
                self._map.record_observation(
                    "<jvm>",
                    "connections_active",
                    when,
                    float(values.get("connections_active", 0.0)),
                )
        self._snapshot_count += 1
        for listener in self._snapshot_listeners:
            listener(when, dict(sizes))
        return sizes

    def _check_alert(self, component: str) -> None:
        """Scan one component's consumption and emit the alert if crossed.

        Used by the polling :meth:`snapshot` path; the buffered intake folds
        the same check into :meth:`_flush_samples` so a flush pays at most
        one consumption scan per touched series.
        """
        if component in self._alerted:
            return
        growth = self._map.consumption(component, DEFAULT_METRIC)
        if growth >= self.alert_growth_bytes:
            self._emit_alert(component, growth)

    def _emit_alert(self, component: str, growth: float) -> None:
        """Mark ``component`` as an aging suspect and notify listeners."""
        self._alerted.add(component)
        self.send_notification(
            AGING_SUSPECT_NOTIFICATION,
            source=str(MANAGER_OBJECT_NAME),
            message=(
                f"component {component!r} accumulated {growth:.0f} bytes of "
                f"{DEFAULT_METRIC} (threshold {self.alert_growth_bytes:.0f})"
            ),
            timestamp=self._now(),
            component=component,
            growth_bytes=growth,
        )

    # ------------------------------------------------------------------ #
    # Map / analysis
    # ------------------------------------------------------------------ #
    @operation
    def build_map(self, metric: str = DEFAULT_METRIC) -> List[Dict[str, float]]:
        """The resource-component map as printable rows (Fig. 6)."""
        return self.map.to_rows(metric)

    @operation
    def determine_root_cause(self, metric: str = DEFAULT_METRIC) -> RootCauseReport:
        """Run the configured strategy over the current map."""
        return self.strategy.analyze(self.map, metric)

    @operation
    def list_components(self) -> List[str]:
        """Components known to the manager (sorted)."""
        self._flush_samples()
        return sorted(self._known_components)

    # ------------------------------------------------------------------ #
    # Rejuvenation trigger hook
    # ------------------------------------------------------------------ #
    def add_rejuvenation_trigger(
        self, callback: Callable[[Optional[str], Notification], None]
    ) -> None:
        """Invoke ``callback(component, notification)`` on aging alerts.

        The hook the live rejuvenation subsystem hangs off: when a
        component's accumulated consumption first crosses the alert
        threshold, the controller gets told immediately instead of waiting
        for its next periodic check.
        """

        def _relay(notification: Notification, handback: object) -> None:
            callback(notification.attributes.get("component"), notification)

        self.add_notification_listener(_relay, type_filter(AGING_SUSPECT_NOTIFICATION))

    def add_snapshot_listener(
        self, callback: Callable[[float, Dict[str, float]], None]
    ) -> None:
        """Invoke ``callback(when, sizes)`` after every polling snapshot.

        The observability plane's read-only publish hook: listeners receive
        a *copy* of the component -> object_size mapping each snapshot
        records, so they can track polling liveness without re-reading the
        map (and without any way to perturb it).
        """
        self._snapshot_listeners.append(callback)

    # ------------------------------------------------------------------ #
    # AC control
    # ------------------------------------------------------------------ #
    def _proxy_names(self, component: Optional[str] = None) -> List[ObjectName]:
        pattern = (
            f"{ASPECT_DOMAIN}:type=AspectComponent,component={component}"
            if component is not None
            else f"{ASPECT_DOMAIN}:type=AspectComponent,*"
        )
        return self._server.query_names(pattern)

    @operation
    def activate_component(self, component: str) -> bool:
        """Activate monitoring of one component; returns whether it was found."""
        names = self._proxy_names(component)
        for name in names:
            self._server.invoke(name, "activate")
        return bool(names)

    @operation
    def deactivate_component(self, component: str) -> bool:
        """Deactivate monitoring of one component; returns whether it was found."""
        names = self._proxy_names(component)
        for name in names:
            self._server.invoke(name, "deactivate")
        return bool(names)

    @operation
    def activate_all(self) -> int:
        """Activate every AC; returns how many were reached."""
        names = self._proxy_names()
        for name in names:
            self._server.invoke(name, "activate")
        return len(names)

    @operation
    def deactivate_all(self) -> int:
        """Deactivate every AC; returns how many were reached."""
        names = self._proxy_names()
        for name in names:
            self._server.invoke(name, "deactivate")
        return len(names)

    @operation
    def component_status(self) -> Dict[str, bool]:
        """Enabled flag of every AC proxy."""
        status: Dict[str, bool] = {}
        for name in self._proxy_names():
            component = name.get("component") or ""
            status[component] = bool(self._server.get_attribute(name, "Enabled"))
        return status

    # ------------------------------------------------------------------ #
    # Attributes
    # ------------------------------------------------------------------ #
    @attribute
    def ComponentCount(self) -> int:
        """Number of components known to the manager."""
        self._flush_samples()
        return len(self._known_components)

    @attribute
    def SampleCount(self) -> int:
        """Number of AC samples received."""
        return self.map.sample_count

    @attribute
    def SnapshotCount(self) -> int:
        """Number of polling snapshots taken."""
        return self._snapshot_count

    @attribute
    def StrategyName(self) -> str:
        """The active root-cause strategy."""
        return self.strategy.name
