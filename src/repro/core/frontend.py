"""The External Front-end.

A thin administrative client that talks to the JMX Manager Agent through a
remote connector (Section III-B.4 of the paper): inspect component status in
real time, read the resource-component map, get the current root-cause
ranking, and switch individual Aspect Components (or whole monitoring
agents) on and off.  Output is plain text, suitable for a terminal.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.manager_agent import MANAGER_OBJECT_NAME
from repro.core.monitoring_agents import AGENT_DOMAIN
from repro.core.resource_map import DEFAULT_METRIC
from repro.core.rootcause import RootCauseReport
from repro.jmx.connector import JmxConnector


def _format_bytes(value: float) -> str:
    """Human-readable byte formatting for reports."""
    magnitude = abs(value)
    if magnitude >= 1024 * 1024:
        return f"{value / (1024 * 1024):.2f} MB"
    if magnitude >= 1024:
        return f"{value / 1024:.1f} KB"
    return f"{value:.0f} B"


def _format_table(rows: List[Dict[str, object]], columns: List[str]) -> str:
    """Render a list of dict rows as a fixed-width text table."""
    if not rows:
        return "(no data)"
    widths = {column: len(column) for column in columns}
    for row in rows:
        for column in columns:
            widths[column] = max(widths[column], len(str(row.get(column, ""))))
    header = "  ".join(column.ljust(widths[column]) for column in columns)
    separator = "  ".join("-" * widths[column] for column in columns)
    lines = [header, separator]
    for row in rows:
        lines.append("  ".join(str(row.get(column, "")).ljust(widths[column]) for column in columns))
    return "\n".join(lines)


class MonitoringFrontEnd:
    """Administrator-facing client of the monitoring framework.

    Parameters
    ----------
    connector:
        A :class:`~repro.jmx.connector.JmxConnector` to the MBeanServer that
        hosts the manager agent, the agents and the AC proxies.
    """

    def __init__(self, connector: JmxConnector) -> None:
        self._connector = connector
        self._manager = connector.proxy(MANAGER_OBJECT_NAME)

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #
    def component_status(self) -> Dict[str, bool]:
        """Enabled flag of every monitored component."""
        return self._manager.call("component_status")

    def list_agents(self) -> List[str]:
        """ObjectNames of every registered monitoring agent."""
        return [str(name) for name in self._connector.query_names(f"{AGENT_DOMAIN}:*")]

    def resource_map_rows(self, metric: str = DEFAULT_METRIC) -> List[Dict[str, object]]:
        """The resource-component map as rows."""
        return self._manager.call("build_map", metric)

    def root_cause(self, metric: str = DEFAULT_METRIC) -> RootCauseReport:
        """The current root-cause report."""
        return self._manager.call("determine_root_cause", metric)

    # ------------------------------------------------------------------ #
    # Control
    # ------------------------------------------------------------------ #
    def activate(self, component: str) -> bool:
        """Activate monitoring of one component."""
        return self._manager.call("activate_component", component)

    def deactivate(self, component: str) -> bool:
        """Deactivate monitoring of one component."""
        return self._manager.call("deactivate_component", component)

    def activate_all(self) -> int:
        """Activate every Aspect Component."""
        return self._manager.call("activate_all")

    def deactivate_all(self) -> int:
        """Deactivate every Aspect Component."""
        return self._manager.call("deactivate_all")

    def take_snapshot(self, timestamp: Optional[float] = None) -> Dict[str, float]:
        """Trigger a polling snapshot through the manager."""
        return self._manager.call("snapshot", timestamp)

    # ------------------------------------------------------------------ #
    # Text reports
    # ------------------------------------------------------------------ #
    def status_report(self) -> str:
        """One-screen overview: components, sample counts, agent list."""
        status = self.component_status()
        rows = [
            {"component": name, "monitoring": "on" if enabled else "off"}
            for name, enabled in sorted(status.items())
        ]
        lines = [
            "== Monitoring framework status ==",
            f"manager: {MANAGER_OBJECT_NAME}",
            f"components known: {self._manager.get('ComponentCount')}",
            f"samples received: {self._manager.get('SampleCount')}",
            f"snapshots taken:  {self._manager.get('SnapshotCount')}",
            "",
            _format_table(rows, ["component", "monitoring"]),
            "",
            "agents: " + ", ".join(self.list_agents()),
        ]
        return "\n".join(lines)

    def map_report(self, metric: str = DEFAULT_METRIC) -> str:
        """The resource-consumption vs. usage map as a text table (Fig. 6)."""
        rows = self.resource_map_rows(metric)
        for row in rows:
            consumed_key = f"{metric}_consumed"
            last_key = f"{metric}_last"
            if consumed_key in row:
                row[consumed_key] = _format_bytes(float(row[consumed_key]))
            if last_key in row:
                row[last_key] = _format_bytes(float(row[last_key]))
        columns = ["component", "invocations", "usage_per_second",
                   f"{metric}_consumed", f"{metric}_last", "quadrant"]
        return "== Resource-component map ==\n" + _format_table(rows, columns)

    def root_cause_report(self, metric: str = DEFAULT_METRIC) -> str:
        """The ranked root-cause suspects as a text table."""
        report = self.root_cause(metric)
        rows = []
        for suspicion in report.ranked():
            rows.append(
                {
                    "rank": suspicion.rank,
                    "component": suspicion.component,
                    "score": _format_bytes(suspicion.score)
                    if metric == DEFAULT_METRIC
                    else f"{suspicion.score:.3f}",
                    "responsibility": f"{100.0 * suspicion.responsibility:.1f}%",
                }
            )
        header = f"== Root cause ranking (strategy: {report.strategy}, metric: {metric}) =="
        return header + "\n" + _format_table(rows, ["rank", "component", "score", "responsibility"])
