"""Monitoring-overhead accounting.

Every time an Aspect Component samples a monitoring agent it performs real
work on the application server (in the original system: JMX attribute reads,
object-size walks).  The framework charges that work to an
:class:`OverheadAccount`; the servlet container registers the account as an
*external cost provider*, so the charge lands in the very next request's
simulated service time.  This is the mechanism behind the ~5 % throughput
penalty of Fig. 3, and disabling monitoring (the ablation benchmark) removes
it entirely.
"""

from __future__ import annotations

from typing import Dict


class OverheadAccount:
    """Accumulates monitoring overhead and hands it to the container.

    Parameters
    ----------
    sample_cost_seconds:
        Simulated CPU seconds charged for one agent sample (one JMX read +
        the measurement work behind it).
    """

    def __init__(self, sample_cost_seconds: float = 2.5e-3) -> None:
        if sample_cost_seconds < 0:
            raise ValueError(
                f"sample_cost_seconds must be non-negative, got {sample_cost_seconds}"
            )
        self.sample_cost_seconds = float(sample_cost_seconds)
        self._pending = 0.0
        self._total = 0.0
        self._by_component: Dict[str, float] = {}
        self._samples = 0

    # ------------------------------------------------------------------ #
    def charge_sample(self, component: str, samples: int = 1) -> float:
        """Charge ``samples`` agent reads on behalf of ``component``."""
        if samples < 0:
            raise ValueError(f"samples must be non-negative, got {samples}")
        cost = samples * self.sample_cost_seconds
        self.charge(component, cost)
        self._samples += samples
        return cost

    def charge(self, component: str, seconds: float) -> None:
        """Charge an arbitrary amount of overhead to ``component``."""
        if seconds < 0:
            raise ValueError(f"overhead seconds must be non-negative, got {seconds}")
        self._pending += seconds
        self._total += seconds
        self._by_component[component] = self._by_component.get(component, 0.0) + seconds

    # ------------------------------------------------------------------ #
    def consume_pending(self) -> float:
        """Return and reset the overhead accumulated since the last call.

        This is the callable the container invokes once per request (it is
        registered through
        :meth:`repro.container.server.ApplicationServer.add_external_cost_provider`).
        """
        pending = self._pending
        self._pending = 0.0
        return pending

    # ------------------------------------------------------------------ #
    @property
    def total_seconds(self) -> float:
        """Total overhead charged since creation."""
        return self._total

    @property
    def pending_seconds(self) -> float:
        """Overhead charged but not yet folded into a request."""
        return self._pending

    @property
    def sample_count(self) -> int:
        """Total number of agent samples charged."""
        return self._samples

    def by_component(self) -> Dict[str, float]:
        """Overhead attributed to each component (copy)."""
        return dict(self._by_component)
