"""The paper's contribution: AOP/JMX monitoring and root-cause determination.

Architecture (Fig. 1 of the paper):

* :mod:`repro.core.aspect_component`   -- the Aspect Component (AC) woven
  around every application component, plus its AC Proxy MBean.
* :mod:`repro.core.monitoring_agents`  -- JMX Monitoring Agents that read
  resource state on demand (object size, heap, CPU, threads, connections).
* :mod:`repro.core.manager_agent`      -- the JMX Manager Agent: collects
  per-component samples, builds the resource-component map, ranks suspects,
  and activates/deactivates ACs at runtime.
* :mod:`repro.core.resource_map`       -- the resource-consumption vs.
  usage-frequency map (Figs. 2 and 6).
* :mod:`repro.core.rootcause`          -- root-cause determination strategies
  (the paper's map strategy plus trend-based refinements).
* :mod:`repro.core.sizing`             -- the one-level "real object size"
  computation used by the object-size agent.
* :mod:`repro.core.overhead`           -- accounting of the monitoring
  overhead the framework itself adds (Fig. 3).
* :mod:`repro.core.frontend`           -- the External Front-end.
* :mod:`repro.core.framework`          -- one-call installation of the whole
  monitoring stack onto a TPC-W deployment.
"""

from __future__ import annotations

from repro.core.aspect_component import AspectComponent, AspectComponentProxy
from repro.core.framework import FrameworkConfig, MonitoringFramework
from repro.core.frontend import MonitoringFrontEnd
from repro.core.manager_agent import ManagerAgent
from repro.core.monitoring_agents import (
    ConnectionPoolAgent,
    CpuAgent,
    HeapAgent,
    MonitoringAgent,
    ObjectSizeAgent,
    ThreadAgent,
)
from repro.core.overhead import OverheadAccount
from repro.core.rejuvenation import (
    RejuvenationController,
    RejuvenationEvent,
    RejuvenationReport,
)
from repro.core.resource_map import ComponentSample, ComponentStats, ResourceComponentMap
from repro.core.rootcause import (
    CascadeAwareStrategy,
    LatencyTrendStrategy,
    PaperMapStrategy,
    RootCauseReport,
    RootCauseStrategy,
    Suspicion,
    TrendStrategy,
    WeightedCompositeStrategy,
)
from repro.core.sizing import deep_object_size, retained_component_size

__all__ = [
    "AspectComponent",
    "AspectComponentProxy",
    "MonitoringAgent",
    "ObjectSizeAgent",
    "HeapAgent",
    "CpuAgent",
    "ThreadAgent",
    "ConnectionPoolAgent",
    "ManagerAgent",
    "ComponentSample",
    "ComponentStats",
    "ResourceComponentMap",
    "RootCauseStrategy",
    "PaperMapStrategy",
    "TrendStrategy",
    "LatencyTrendStrategy",
    "CascadeAwareStrategy",
    "WeightedCompositeStrategy",
    "Suspicion",
    "RootCauseReport",
    "OverheadAccount",
    "RejuvenationController",
    "RejuvenationEvent",
    "RejuvenationReport",
    "MonitoringFrontEnd",
    "MonitoringFramework",
    "FrameworkConfig",
    "deep_object_size",
    "retained_component_size",
]
