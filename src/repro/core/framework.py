"""One-call installation of the monitoring framework on a TPC-W deployment.

:class:`MonitoringFramework` assembles the pieces of Fig. 1 — monitoring
agents, per-component Aspect Components (woven at runtime), AC proxies, the
JMX Manager Agent and the External Front-end — on top of an already running
application, without touching any servlet code.  It also registers the
overhead account with the container so the framework's own cost shows up in
the measured throughput (Fig. 3), and offers periodic snapshots so the
per-component size series of Figs. 4/5/7 get evenly spaced points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.aop.registry import AspectRegistry
from repro.aop.weaver import Weaver
from repro.core.aspect_component import AspectComponent, AspectComponentProxy
from repro.core.frontend import MonitoringFrontEnd
from repro.core.manager_agent import MANAGER_OBJECT_NAME, ManagerAgent
from repro.core.monitoring_agents import (
    ConnectionPoolAgent,
    CpuAgent,
    HeapAgent,
    MonitoringAgent,
    ObjectSizeAgent,
    ThreadAgent,
)
from repro.core.overhead import OverheadAccount
from repro.core.rootcause import RootCauseReport, RootCauseStrategy
from repro.jmx.connector import JmxConnector
from repro.jmx.mbean_server import MBeanServer
from repro.sim.engine import SimulationEngine
from repro.tpcw.application import TpcwDeployment


@dataclass
class FrameworkConfig:
    """Installation options of the monitoring framework."""

    #: Simulated cost of one agent sample (see :class:`OverheadAccount`).
    sample_cost_seconds: float = 2.5e-3
    #: Which servlet methods the ACs intercept.
    method_pattern: str = "service"
    #: Install the CPU agent (future-work resource).
    monitor_cpu: bool = False
    #: Install the thread agent (future-work resource).
    monitor_threads: bool = False
    #: Install the connection-pool agent (future-work resource).
    monitor_connections: bool = False
    #: Seconds between periodic manager snapshots (when scheduled).
    snapshot_interval: float = 60.0
    #: Growth (bytes) above which the manager emits an aging alert.
    alert_growth_bytes: float = 10 * 1024 * 1024


class MonitoringFramework:
    """The fully assembled monitoring stack for one TPC-W deployment.

    Typical use::

        framework = MonitoringFramework(deployment, engine=engine)
        framework.install()
        framework.schedule_snapshots(duration=3600.0)
        ... run the workload ...
        report = framework.root_cause()
    """

    def __init__(
        self,
        deployment: TpcwDeployment,
        engine: Optional[SimulationEngine] = None,
        config: Optional[FrameworkConfig] = None,
        mbean_server: Optional[MBeanServer] = None,
        strategy: Optional[RootCauseStrategy] = None,
    ) -> None:
        self.deployment = deployment
        self.engine = engine
        self.config = config or FrameworkConfig()
        self.mbean_server = mbean_server or MBeanServer(name="repro-monitoring")
        self.overhead = OverheadAccount(sample_cost_seconds=self.config.sample_cost_seconds)
        self.weaver = Weaver(clock=deployment.clock)
        self.registry = AspectRegistry()
        self.manager = ManagerAgent(
            self.mbean_server,
            clock=deployment.clock,
            strategy=strategy,
            alert_growth_bytes=self.config.alert_growth_bytes,
        )
        self.connector = JmxConnector(self.mbean_server)
        self.frontend: Optional[MonitoringFrontEnd] = None
        self.agents: List[MonitoringAgent] = []
        self.aspect_components: Dict[str, AspectComponent] = {}
        self._installed = False
        self._overhead_provider_registered = False

    # ------------------------------------------------------------------ #
    # Installation / removal
    # ------------------------------------------------------------------ #
    def install(self) -> None:
        """Weave the ACs, register agents, manager and proxies."""
        if self._installed:
            raise RuntimeError("monitoring framework is already installed")
        deployment = self.deployment
        runtime = deployment.runtime

        # Monitoring agents (probe level).
        object_size_agent = ObjectSizeAgent(runtime)
        heap_agent = HeapAgent(runtime)
        self.agents = [object_size_agent, heap_agent]
        if self.config.monitor_cpu:
            self.agents.append(CpuAgent(runtime))
        if self.config.monitor_threads:
            self.agents.append(ThreadAgent(runtime))
        if self.config.monitor_connections:
            self.agents.append(ConnectionPoolAgent(deployment.datasource))
        for agent in self.agents:
            self.mbean_server.register(agent.object_name(), agent)

        # Manager agent (agent level core).
        self.mbean_server.register(MANAGER_OBJECT_NAME, self.manager)

        # One Aspect Component per application component, woven at runtime.
        for component_name in deployment.interaction_names():
            servlet = deployment.servlet(component_name)
            object_size_agent.register_component(component_name, servlet.instance_root)
            self.manager.register_component(component_name)

            aspect_component = AspectComponent(
                component_name=component_name,
                java_class_name=servlet.java_class_name,
                mbean_server=self.mbean_server,
                overhead=self.overhead,
                clock=deployment.clock,
                method_pattern=self.config.method_pattern,
            )
            self.weaver.register_aspect(aspect_component)
            self.registry.add(aspect_component)
            self.aspect_components[component_name] = aspect_component

            proxy = AspectComponentProxy(aspect_component)
            self.mbean_server.register(proxy.object_name(), proxy)

            woven = self.weaver.weave_object(
                servlet, method_names=[self.config.method_pattern], component=component_name
            )
            if not woven:
                raise RuntimeError(
                    f"failed to weave component {component_name!r} "
                    f"({servlet.java_class_name}.{self.config.method_pattern})"
                )

        # Fold monitoring overhead into the container's request costs.
        deployment.server.add_external_cost_provider(self.overhead.consume_pending)
        self._overhead_provider_registered = True

        # Remote management level.
        self.frontend = MonitoringFrontEnd(self.connector)
        self._installed = True

    def uninstall(self) -> None:
        """Unweave every AC and disable further overhead charges."""
        if not self._installed:
            return
        self.weaver.unweave_all()
        for aspect_component in self.aspect_components.values():
            aspect_component.disable()
        self._installed = False

    @property
    def is_installed(self) -> bool:
        """Whether :meth:`install` has run (and :meth:`uninstall` has not)."""
        return self._installed

    # ------------------------------------------------------------------ #
    # Periodic snapshots
    # ------------------------------------------------------------------ #
    def snapshot(self, timestamp: Optional[float] = None) -> Dict[str, float]:
        """Take one manager snapshot now."""
        return self.manager.snapshot(timestamp)

    def schedule_snapshots(
        self, duration: float, interval: Optional[float] = None, start: Optional[float] = None
    ) -> int:
        """Schedule periodic snapshots on the simulation engine.

        Returns the number of snapshots scheduled.
        """
        if self.engine is None:
            raise RuntimeError("no simulation engine was provided to the framework")
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        interval = interval if interval is not None else self.config.snapshot_interval
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        begin = start if start is not None else self.engine.now
        count = 0
        t = begin + interval
        while t <= begin + duration + 1e-9:
            self.engine.schedule_at(
                t, lambda when=t: self.manager.snapshot(when), priority=5, name="manager.snapshot"
            )
            count += 1
            t += interval
        return count

    # ------------------------------------------------------------------ #
    # Convenience passthroughs
    # ------------------------------------------------------------------ #
    def root_cause(self, metric: str = "object_size") -> RootCauseReport:
        """The manager's current root-cause report."""
        return self.manager.determine_root_cause(metric)

    def resource_map_rows(self, metric: str = "object_size"):
        """The manager's resource-component map rows."""
        return self.manager.build_map(metric)

    def enable_component(self, component: str) -> None:
        """Activate monitoring of one component."""
        self.manager.activate_component(component)

    def disable_component(self, component: str) -> None:
        """Deactivate monitoring of one component."""
        self.manager.deactivate_component(component)

    def disable_all(self) -> None:
        """Deactivate every Aspect Component (overhead drops to ~zero)."""
        self.manager.deactivate_all()

    def enable_all(self) -> None:
        """Activate every Aspect Component."""
        self.manager.activate_all()

    def component_series(self, component: str, metric: str = "object_size"):
        """The recorded time series for one component (Figs. 4/5/7)."""
        return self.manager.map.series(component, metric)
