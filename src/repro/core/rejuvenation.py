"""Live rejuvenation subsystem: in-sim restarts and micro-reboots.

The paper's whole point of AOP-based root-cause *component* determination is
to enable surgical rejuvenation — a micro-reboot of the guilty component
(Candea et al.) — instead of whole-server restarts.  The
:class:`RejuvenationController` closes that loop inside the simulation: it
watches the heap trend the monitoring stack records, consults a
:class:`~repro.baselines.rejuvenation.RejuvenationPolicy`, and *executes*
the decided action mid-run:

* **full restart** — the server refuses load for ``downtime_seconds``
  (browsers park and retry when it is back), every component's retained
  state is dropped, HTTP sessions are invalidated, and a full collection
  sweeps the freed state — the heap returns to its post-deploy level.
* **micro-reboot** — only the guilty component's accumulated objects are
  reclaimed (:meth:`~repro.jvm.heap.Heap.reclaim_owned`) and only requests
  routed to that component are refused, for a downtime that is orders of
  magnitude smaller.

Besides the periodic checks, the controller hangs off the manager's
aging-suspect notification (:meth:`ManagerAgent.add_rejuvenation_trigger`),
so a component crossing the alert threshold is re-examined immediately
instead of at the next check boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.baselines.rejuvenation import (
    FULL_RESTART,
    MICRO_REBOOT,
    PolicyObservation,
    RejuvenationAction,
    RejuvenationPolicy,
)
from repro.core.manager_agent import ManagerAgent
from repro.sim.engine import SimulationEngine
from repro.tpcw.application import TpcwDeployment

#: Event priority of periodic rejuvenation checks: after manager snapshots
#: (5) and black-box samples (6), so a same-time snapshot lands first and the
#: policy sees the freshest heap observation.
CHECK_PRIORITY = 7
#: Priority of alert-triggered checks (after a same-time periodic check).
ALERT_CHECK_PRIORITY = 8


@dataclass
class RejuvenationEvent:
    """One executed rejuvenation action."""

    time: float
    kind: str  #: ``"full-restart"`` or ``"micro-reboot"``
    downtime_seconds: float
    component: Optional[str] = None
    reason: str = ""
    reclaimed_objects: int = 0
    reclaimed_bytes: int = 0

    @property
    def ends_at(self) -> float:
        """When the action's outage window closes."""
        return self.time + self.downtime_seconds


@dataclass
class RejuvenationReport:
    """Summary of a controller's activity over one run."""

    policy: str
    actions: int
    total_downtime_seconds: float
    reclaimed_bytes: int
    #: Requests refused while an outage window was in effect.
    refused_requests: int
    events: List[RejuvenationEvent] = field(default_factory=list)


class RejuvenationController:
    """Watches the monitored heap trend and rejuvenates mid-run.

    Parameters
    ----------
    deployment:
        The TPC-W deployment to act on (server outages, heap reclaim).
    manager:
        The JMX Manager Agent whose map supplies the heap series and the
        root-cause suspect.
    engine:
        Simulation engine used to schedule periodic checks.
    policy:
        Decides *when* to act and *what* to do.
    clear_sessions:
        Whether a full restart also invalidates every HTTP session (a real
        Tomcat restart does; disable for session-preserving redeploys).
    trend_metric:
        Which ``"<jvm>"`` series the policy extrapolates.  Defaults to
        ``heap_live`` (the post-GC floor): ``heap_used`` rides the garbage
        sawtooth between collections, whose slope reflects allocation rate
        rather than the leak.  Falls back to ``heap_used`` automatically
        while the live series has no samples yet.
    """

    def __init__(
        self,
        deployment: TpcwDeployment,
        manager: ManagerAgent,
        engine: SimulationEngine,
        policy: RejuvenationPolicy,
        clear_sessions: bool = True,
        trend_metric: str = "heap_live",
    ) -> None:
        self.deployment = deployment
        self.manager = manager
        self.engine = engine
        self.policy = policy
        self.clear_sessions = clear_sessions
        self.trend_metric = trend_metric
        # Snapshots only pay the live-bytes reference-graph walk when a
        # controller is around to extrapolate the resulting series.
        manager.poll_live_heap = True
        self.events: List[RejuvenationEvent] = []
        self._start_time = engine.now
        self._last_action_end: Optional[float] = None
        self._alert_check_pending = False
        self._checks_run = 0

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def schedule_checks(
        self, duration: float, interval: float, start: Optional[float] = None
    ) -> int:
        """Schedule periodic policy checks; returns how many were scheduled."""
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        begin = start if start is not None else self.engine.now
        count = 0
        t = begin + interval
        while t <= begin + duration + 1e-9:
            self.engine.schedule_at(
                t,
                lambda when=t: self.check(when),
                priority=CHECK_PRIORITY,
                name="rejuvenation.check",
            )
            count += 1
            t += interval
        return count

    def install_alert_trigger(self) -> None:
        """Re-check immediately when the manager flags an aging suspect.

        The manager raises the alert in the middle of request processing
        (inside an Aspect-Component advice), so the check is deferred to its
        own event at the same simulated time rather than executed inline.
        """

        def _on_suspect(component: Optional[str], notification) -> None:
            if self._alert_check_pending:
                return
            self._alert_check_pending = True

            def _deferred_check() -> None:
                self._alert_check_pending = False
                self.check()

            self.engine.schedule_at(
                self.engine.now,
                _deferred_check,
                priority=ALERT_CHECK_PRIORITY,
                name="rejuvenation.alert-check",
            )

        self.manager.add_rejuvenation_trigger(_on_suspect)

    # ------------------------------------------------------------------ #
    # Decision + execution
    # ------------------------------------------------------------------ #
    def check(self, timestamp: Optional[float] = None) -> Optional[RejuvenationEvent]:
        """Consult the policy once; execute and return its action, if any."""
        now = timestamp if timestamp is not None else self.engine.now
        self._checks_run += 1
        if self._last_action_end is not None and now < self._last_action_end:
            return None  # the previous action's downtime is still running
        heap_series = self.manager.map.series("<jvm>", self.trend_metric)
        if len(heap_series) == 0:
            heap_series = self.manager.map.series("<jvm>", "heap_used")
        window_start = (
            self._last_action_end if self._last_action_end is not None else self._start_time
        )
        observation = PolicyObservation(
            now=now,
            heap_series=heap_series.window(window_start, now),
            heap_capacity=float(self.deployment.runtime.total_memory()),
            start_time=self._start_time,
            last_action_end=self._last_action_end,
            suspect_component=self._suspect() if self.policy.needs_root_cause else None,
        )
        action = self.policy.decide(observation)
        if action is None:
            return None
        return self.execute(action, now)

    def _suspect(self) -> Optional[str]:
        report = self.manager.determine_root_cause()
        top = report.top()
        if top is None or top.responsibility <= 0:
            return None
        return top.component

    def execute(self, action: RejuvenationAction, at_time: float) -> RejuvenationEvent:
        """Carry out ``action`` at ``at_time`` and record the event."""
        if action.kind == FULL_RESTART:
            event = self._full_restart(at_time, action)
        elif action.kind == MICRO_REBOOT:
            if action.component is None:
                raise ValueError("micro-reboot actions must name a component")
            event = self._micro_reboot(at_time, action)
        else:  # pragma: no cover - RejuvenationAction validates kinds
            raise ValueError(f"unknown action kind {action.kind!r}")
        self.events.append(event)
        self._last_action_end = event.ends_at
        return event

    def _full_restart(self, at_time: float, action: RejuvenationAction) -> RejuvenationEvent:
        deployment = self.deployment
        server = deployment.server
        heap = deployment.runtime.heap
        if action.downtime_seconds > 0:
            server.begin_outage(at_time, at_time + action.downtime_seconds, component=None)
        used_before = heap.used_bytes
        objects_before = heap.live_object_count
        # Drop every component's retained state (a restart forgets static
        # fields and caches) and, like a real redeploy, the session store.
        for component in deployment.interaction_names():
            deployment.servlet(component).instance_root.clear_references()
        if self.clear_sessions:
            server.sessions.invalidate_all()
        # Sweep the freed state.  The collector is invoked directly: the
        # outage window already models the restart's cost, so no GC pause is
        # charged to the first post-restart request.
        deployment.runtime.collector.collect()
        return RejuvenationEvent(
            time=at_time,
            kind=FULL_RESTART,
            downtime_seconds=action.downtime_seconds,
            reason=action.reason,
            reclaimed_objects=objects_before - heap.live_object_count,
            reclaimed_bytes=used_before - heap.used_bytes,
        )

    def _micro_reboot(self, at_time: float, action: RejuvenationAction) -> RejuvenationEvent:
        deployment = self.deployment
        component = action.component
        if action.downtime_seconds > 0:
            deployment.server.begin_outage(
                at_time, at_time + action.downtime_seconds, component=component
            )
        # Recycle only the guilty component: drop its retained references and
        # free its accumulated objects; every other component keeps serving.
        deployment.servlet(component).instance_root.clear_references()
        objects, reclaimed = deployment.runtime.reclaim_owned(component)
        return RejuvenationEvent(
            time=at_time,
            kind=MICRO_REBOOT,
            downtime_seconds=action.downtime_seconds,
            component=component,
            reason=action.reason,
            reclaimed_objects=objects,
            reclaimed_bytes=reclaimed,
        )

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    @property
    def action_count(self) -> int:
        """Number of executed rejuvenation actions."""
        return len(self.events)

    @property
    def total_downtime_seconds(self) -> float:
        """Accumulated downtime across all executed actions."""
        return sum(event.downtime_seconds for event in self.events)

    @property
    def checks_run(self) -> int:
        """How many times the policy was consulted."""
        return self._checks_run

    def report(self) -> RejuvenationReport:
        """Summarise the controller's activity."""
        return RejuvenationReport(
            policy=self.policy.name,
            actions=self.action_count,
            total_downtime_seconds=self.total_downtime_seconds,
            reclaimed_bytes=sum(event.reclaimed_bytes for event in self.events),
            refused_requests=self.deployment.server.refused_during_outage,
            events=list(self.events),
        )
