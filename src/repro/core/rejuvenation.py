"""Live rejuvenation subsystem: in-sim restarts and micro-reboots.

The paper's whole point of AOP-based root-cause *component* determination is
to enable surgical rejuvenation — a micro-reboot of the guilty component
(Candea et al.) — instead of whole-server restarts.  The
:class:`RejuvenationController` closes that loop inside the simulation: it
watches the resource trends the monitoring stack records, consults a
:class:`~repro.baselines.rejuvenation.RejuvenationPolicy`, and *executes*
the decided action mid-run:

* **full restart** — the server refuses load for ``downtime_seconds``
  (browsers park and retry when it is back), every component's retained
  state is dropped, HTTP sessions are invalidated, leaked threads die,
  held connections return to the pool, and a full collection sweeps the
  freed state — every resource returns to its post-deploy level.
* **micro-reboot** — only the guilty component is recycled: its retained
  references are dropped, its accumulated heap objects reclaimed
  (:meth:`~repro.jvm.heap.Heap.reclaim_owned`), its runaway threads
  terminated, its held pool connections force-closed — and only requests
  routed to that component are refused, for a downtime that is orders of
  magnitude smaller.

What the controller *watches* is pluggable: a :class:`ResourceChannel`
binds one monitored whole-JVM series to its capacity, its
component-attribution rule, and the ``"<jvm>"`` metric the manager's
snapshots record.  The built-in channels cover the paper's case study
(:class:`HeapChannel`) and its future-work aging causes
(:class:`ThreadChannel`, :class:`ConnectionChannel`), so one controller
with one policy recycles whichever resource trends toward exhaustion.

Besides the periodic checks, the controller hangs off the manager's
aging-suspect notification (:meth:`ManagerAgent.add_rejuvenation_trigger`),
so a component crossing the alert threshold is re-examined immediately
instead of at the next check boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.baselines.rejuvenation import (
    FULL_RESTART,
    MICRO_REBOOT,
    PolicyObservation,
    RejuvenationAction,
    RejuvenationPolicy,
)
from repro.core.manager_agent import ManagerAgent
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import TimeSeries
from repro.tpcw.application import TpcwDeployment

#: Event priority of periodic rejuvenation checks: after manager snapshots
#: (5) and black-box samples (6), so a same-time snapshot lands first and the
#: policy sees the freshest heap observation.
CHECK_PRIORITY = 7
#: Priority of alert-triggered checks (after a same-time periodic check).
ALERT_CHECK_PRIORITY = 8


# --------------------------------------------------------------------------- #
# Resource channels
# --------------------------------------------------------------------------- #
class ResourceChannel:
    """One monitored resource the controller can predict and recycle.

    A channel binds together: the whole-JVM series the manager's snapshots
    record for the resource, the capacity that series exhausts against, and
    the attribution rule naming the component to blame.  The *recycling*
    itself is component-scoped and shared (a micro-reboot recycles the whole
    component — heap state, threads and connections alike); channels only
    differ in what they watch and whom they blame.
    """

    name = "abstract"
    #: ``"<jvm>"`` metric recorded by manager snapshots for this resource.
    metric = ""
    #: Metric to fall back to while ``metric`` has no samples yet.
    fallback_metric: Optional[str] = None
    #: Whether the manager must pay the live-heap reference walk per snapshot.
    wants_live_heap = False

    def series(self, manager: ManagerAgent) -> TimeSeries:
        """The monitored series this channel extrapolates."""
        series = manager.map.series("<jvm>", self.metric)
        if len(series) == 0 and self.fallback_metric is not None:
            series = manager.map.series("<jvm>", self.fallback_metric)
        return series

    def capacity(self, deployment: TpcwDeployment) -> float:
        """Units at which the resource is exhausted."""
        raise NotImplementedError

    def suspect(self, controller: "RejuvenationController") -> Optional[str]:
        """The component to blame for this resource's growth (or ``None``)."""
        raise NotImplementedError


class HeapChannel(ResourceChannel):
    """Post-GC live heap bytes vs. heap capacity (the paper's case study).

    Attribution goes through the manager's root-cause analysis — heap growth
    is only attributable via the per-component object-size accounting the
    Aspect Components collect.

    Parameters
    ----------
    metric:
        Which ``"<jvm>"`` series to extrapolate.  Defaults to ``heap_live``
        (the post-GC floor): ``heap_used`` rides the garbage sawtooth
        between collections, whose slope reflects allocation rate rather
        than the leak.  Falls back to ``heap_used`` automatically while the
        live series has no samples yet.
    """

    name = "heap"
    metric = "heap_live"
    fallback_metric = "heap_used"
    wants_live_heap = True

    def __init__(self, metric: str = "heap_live") -> None:
        self.metric = metric

    def capacity(self, deployment: TpcwDeployment) -> float:
        return float(deployment.runtime.total_memory())

    def suspect(self, controller: "RejuvenationController") -> Optional[str]:
        report = controller.manager.determine_root_cause()
        top = report.top()
        if top is None or top.responsibility <= 0:
            return None
        return top.component


class ThreadChannel(ResourceChannel):
    """Live thread count vs. the JVM's thread capacity (future-work cause).

    Attribution is direct: the thread registry tags every thread with the
    component that spawned it, so the busiest owner among the application
    components is the suspect — no strategy analysis needed.
    """

    name = "threads"
    metric = "threads_total"

    def capacity(self, deployment: TpcwDeployment) -> float:
        capacity = deployment.runtime.threads.capacity
        return float(capacity) if capacity is not None else float("inf")

    def suspect(self, controller: "RejuvenationController") -> Optional[str]:
        threads = controller.deployment.runtime.threads
        best: Optional[str] = None
        best_count = 0
        for component in controller.deployment.interaction_names():
            count = threads.count_by_owner(component)
            if count > best_count:
                best, best_count = component, count
        return best


class ConnectionChannel(ResourceChannel):
    """Active pooled connections vs. the pool bound (future-work cause).

    Attribution is direct: every borrow is tagged with the borrowing
    component (see :meth:`~repro.db.jdbc.DataSource.get_connection`), so
    the component holding the most connections is the suspect.
    """

    name = "connections"
    metric = "connections_active"

    def capacity(self, deployment: TpcwDeployment) -> float:
        return float(deployment.datasource.pool_size)

    def suspect(self, controller: "RejuvenationController") -> Optional[str]:
        by_owner = controller.deployment.datasource.active_by_owner()
        best: Optional[str] = None
        best_count = 0
        for component in controller.deployment.interaction_names():
            count = by_owner.get(component, 0)
            if count > best_count:
                best, best_count = component, count
        return best


#: Channel constructors by name (the ``ExperimentConfig`` wiring strings).
CHANNEL_FACTORIES = {
    HeapChannel.name: HeapChannel,
    ThreadChannel.name: ThreadChannel,
    ConnectionChannel.name: ConnectionChannel,
}


def build_channels(names: List[str]) -> List[ResourceChannel]:
    """Instantiate channels from their names (``heap``/``threads``/``connections``)."""
    channels: List[ResourceChannel] = []
    for name in names:
        factory = CHANNEL_FACTORIES.get(name)
        if factory is None:
            raise KeyError(
                f"unknown resource channel {name!r} "
                f"(expected one of {sorted(CHANNEL_FACTORIES)})"
            )
        channels.append(factory())
    return channels


# --------------------------------------------------------------------------- #
# Events / reports
# --------------------------------------------------------------------------- #
@dataclass
class RejuvenationEvent:
    """One executed rejuvenation action."""

    time: float
    kind: str  #: ``"full-restart"`` or ``"micro-reboot"``
    downtime_seconds: float
    component: Optional[str] = None
    reason: str = ""
    #: Resource channel whose trend triggered the action.
    resource: str = "heap"
    reclaimed_objects: int = 0
    reclaimed_bytes: int = 0
    reclaimed_threads: int = 0
    reclaimed_connections: int = 0

    @property
    def ends_at(self) -> float:
        """When the action's outage window closes."""
        return self.time + self.downtime_seconds


@dataclass
class RejuvenationReport:
    """Summary of a controller's activity over one run."""

    policy: str
    actions: int
    total_downtime_seconds: float
    reclaimed_bytes: int
    #: Requests refused while an outage window was in effect.
    refused_requests: int
    reclaimed_threads: int = 0
    reclaimed_connections: int = 0
    events: List[RejuvenationEvent] = field(default_factory=list)


class RejuvenationController:
    """Watches the monitored resource trends and rejuvenates mid-run.

    Parameters
    ----------
    deployment:
        The TPC-W deployment to act on (server outages, resource recycling).
    manager:
        The JMX Manager Agent whose map supplies the monitored series and
        the root-cause suspect.
    engine:
        Simulation engine used to schedule periodic checks.
    policy:
        Decides *when* to act and *what* to do.
    clear_sessions:
        Whether a full restart also invalidates every HTTP session (a real
        Tomcat restart does; disable for session-preserving redeploys).
    trend_metric:
        Back-compat shorthand: the heap channel's metric (see
        :class:`HeapChannel`).  Ignored when ``channels`` is given.
    channels:
        The resource channels to watch, consulted in order each check
        (defaults to the heap channel alone, the pre-multi-resource
        behaviour).
    """

    def __init__(
        self,
        deployment: TpcwDeployment,
        manager: ManagerAgent,
        engine: SimulationEngine,
        policy: RejuvenationPolicy,
        clear_sessions: bool = True,
        trend_metric: str = "heap_live",
        channels: Optional[List[ResourceChannel]] = None,
    ) -> None:
        self.deployment = deployment
        self.manager = manager
        self.engine = engine
        self.policy = policy
        self.clear_sessions = clear_sessions
        self.channels: List[ResourceChannel] = (
            list(channels) if channels is not None else [HeapChannel(metric=trend_metric)]
        )
        if not self.channels:
            raise ValueError("a rejuvenation controller needs at least one channel")
        # Snapshots only pay the live-bytes reference-graph walk when a
        # channel actually extrapolates the resulting series.
        if any(channel.wants_live_heap for channel in self.channels):
            manager.poll_live_heap = True
        self.events: List[RejuvenationEvent] = []
        self._start_time = engine.now
        self._last_action_end: Optional[float] = None
        #: Per-channel start of the fresh observation window (reset by the
        #: actions that recycle that channel's resource).
        self._window_start: Dict[str, float] = {
            channel.name: self._start_time for channel in self.channels
        }
        self._alert_check_pending = False
        self._checks_run = 0

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def schedule_checks(
        self, duration: float, interval: float, start: Optional[float] = None
    ) -> int:
        """Schedule periodic policy checks; returns how many were scheduled."""
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        begin = start if start is not None else self.engine.now
        count = 0
        t = begin + interval
        while t <= begin + duration + 1e-9:
            self.engine.schedule_at(
                t,
                lambda when=t: self.check(when),
                priority=CHECK_PRIORITY,
                name="rejuvenation.check",
            )
            count += 1
            t += interval
        return count

    def install_alert_trigger(self) -> None:
        """Re-check immediately when the manager flags an aging suspect.

        The manager raises the alert in the middle of request processing
        (inside an Aspect-Component advice), so the check is deferred to its
        own event at the same simulated time rather than executed inline.
        """

        def _on_suspect(component: Optional[str], notification) -> None:
            if self._alert_check_pending:
                return
            self._alert_check_pending = True

            def _deferred_check() -> None:
                self._alert_check_pending = False
                self.check()

            self.engine.schedule_at(
                self.engine.now,
                _deferred_check,
                priority=ALERT_CHECK_PRIORITY,
                name="rejuvenation.alert-check",
            )

        self.manager.add_rejuvenation_trigger(_on_suspect)

    # ------------------------------------------------------------------ #
    # Decision + execution
    # ------------------------------------------------------------------ #
    def observe(self, channel: ResourceChannel, now: float) -> PolicyObservation:
        """Build the policy observation for one channel at ``now``."""
        series = channel.series(self.manager)
        window_start = self._window_start.get(channel.name, self._start_time)
        return PolicyObservation(
            now=now,
            heap_series=series.window(window_start, now),
            heap_capacity=channel.capacity(self.deployment),
            start_time=self._start_time,
            last_action_end=self._last_action_end,
            suspect_component=(
                channel.suspect(self) if self.policy.needs_root_cause else None
            ),
            resource=channel.name,
        )

    def check(self, timestamp: Optional[float] = None) -> Optional[RejuvenationEvent]:
        """Consult the policy once per channel; execute and return the last action."""
        now = timestamp if timestamp is not None else self.engine.now
        self._checks_run += 1
        executed: Optional[RejuvenationEvent] = None
        for channel in self.channels:
            if self._last_action_end is not None and now < self._last_action_end:
                break  # an action's downtime is still running
            observation = self.observe(channel, now)
            action = self.policy.decide(observation)
            if action is None:
                continue
            executed = self.execute(action, now, observation=observation)
            if action.kind == FULL_RESTART:
                break  # the restart recycled every channel's resource
        return executed

    def execute(
        self,
        action: RejuvenationAction,
        at_time: float,
        observation: Optional[PolicyObservation] = None,
    ) -> RejuvenationEvent:
        """Carry out ``action`` at ``at_time`` and record the event."""
        # The consulted channel names the resource being recycled; policies
        # written before multi-resource channels leave ``action.resource`` at
        # its ``"heap"`` default, so the observation wins when available.
        resource = observation.resource if observation is not None else action.resource
        if action.kind == FULL_RESTART:
            event = self._full_restart(at_time, action, resource)
            for name in self._window_start:
                self._window_start[name] = event.ends_at
        elif action.kind == MICRO_REBOOT:
            if action.component is None:
                raise ValueError("micro-reboot actions must name a component")
            event = self._micro_reboot(at_time, action, resource)
            self._window_start[resource] = event.ends_at
        else:  # pragma: no cover - RejuvenationAction validates kinds
            raise ValueError(f"unknown action kind {action.kind!r}")
        self.events.append(event)
        self._last_action_end = event.ends_at
        if observation is not None:
            # Feedback for self-tuning policies: the prediction that caused
            # this action can now be settled against the realized trend.
            self.policy.on_action_executed(observation, event)
        return event

    def _recycle_extension_resources(self, component: str) -> Tuple[int, int, int]:
        """Terminate a component's threads and force-close its connections.

        Returns ``(threads, stack_bytes, connections)``.
        """
        threads, stack_bytes = self.deployment.runtime.threads.terminate_owned(component)
        connections = self.deployment.datasource.release_owned(component)
        return threads, stack_bytes, connections

    def _full_restart(
        self, at_time: float, action: RejuvenationAction, resource: str
    ) -> RejuvenationEvent:
        deployment = self.deployment
        server = deployment.server
        heap = deployment.runtime.heap
        if action.downtime_seconds > 0:
            server.begin_outage(at_time, at_time + action.downtime_seconds, component=None)
        used_before = heap.used_bytes
        objects_before = heap.live_object_count
        # Drop every component's retained state (a restart forgets static
        # fields and caches), its leaked threads and held connections, and,
        # like a real redeploy, the session store.
        threads_total = 0
        connections_total = 0
        for component in deployment.interaction_names():
            deployment.servlet(component).instance_root.clear_references()
            threads, _, connections = self._recycle_extension_resources(component)
            threads_total += threads
            connections_total += connections
        if self.clear_sessions:
            server.sessions.invalidate_all()
        # Sweep the freed state.  The collector is invoked directly: the
        # outage window already models the restart's cost, so no GC pause is
        # charged to the first post-restart request.
        deployment.runtime.collector.collect()
        return RejuvenationEvent(
            time=at_time,
            kind=FULL_RESTART,
            downtime_seconds=action.downtime_seconds,
            reason=action.reason,
            resource=resource,
            reclaimed_objects=objects_before - heap.live_object_count,
            reclaimed_bytes=used_before - heap.used_bytes,
            reclaimed_threads=threads_total,
            reclaimed_connections=connections_total,
        )

    def _micro_reboot(
        self, at_time: float, action: RejuvenationAction, resource: str
    ) -> RejuvenationEvent:
        deployment = self.deployment
        component = action.component
        if action.downtime_seconds > 0:
            deployment.server.begin_outage(
                at_time, at_time + action.downtime_seconds, component=component
            )
        # Recycle only the guilty component: drop its retained references,
        # free its accumulated objects, kill its runaway threads, return its
        # held connections; every other component keeps serving.
        deployment.servlet(component).instance_root.clear_references()
        objects, reclaimed = deployment.runtime.reclaim_owned(component)
        threads, stack_bytes, connections = self._recycle_extension_resources(component)
        return RejuvenationEvent(
            time=at_time,
            kind=MICRO_REBOOT,
            downtime_seconds=action.downtime_seconds,
            component=component,
            reason=action.reason,
            resource=resource,
            reclaimed_objects=objects,
            reclaimed_bytes=reclaimed + stack_bytes,
            reclaimed_threads=threads,
            reclaimed_connections=connections,
        )

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    @property
    def action_count(self) -> int:
        """Number of executed rejuvenation actions."""
        return len(self.events)

    @property
    def total_downtime_seconds(self) -> float:
        """Accumulated downtime across all executed actions."""
        return sum(event.downtime_seconds for event in self.events)

    @property
    def checks_run(self) -> int:
        """How many times the policy was consulted."""
        return self._checks_run

    def report(self) -> RejuvenationReport:
        """Summarise the controller's activity."""
        return RejuvenationReport(
            policy=self.policy.name,
            actions=self.action_count,
            total_downtime_seconds=self.total_downtime_seconds,
            reclaimed_bytes=sum(event.reclaimed_bytes for event in self.events),
            refused_requests=self.deployment.server.refused_during_outage,
            reclaimed_threads=sum(event.reclaimed_threads for event in self.events),
            reclaimed_connections=sum(event.reclaimed_connections for event in self.events),
            events=list(self.events),
        )
