"""JMX Monitoring Agents.

The probe level of the architecture: each agent is an MBean that knows how
to read one class of resource from the simulated JVM / container and report
it *per component* when the Aspect Component asks.  Agents are completely
decoupled from the ACs — ACs discover them through MBeanServer queries under
the ``repro.agents`` domain, so agents can be added, replaced or removed at
runtime without touching any AC (the flexibility argument of the paper).

Agents implemented here:

================  =============================================================
Agent             Metrics returned by ``sample(component)``
================  =============================================================
ObjectSizeAgent   ``object_size`` — one-level "real size" of the component's
                  long-lived objects (the paper's case-study metric).
HeapAgent         ``heap_used``, ``heap_free`` — whole-JVM heap occupancy.
CpuAgent          ``cpu_seconds`` — CPU time attributed to the component.
ThreadAgent       ``threads`` (component-owned), ``threads_total``.
ConnectionPoolAgent ``connections_active``, ``connections_available``.
================  =============================================================

The last three cover the paper's future-work aging causes (CPU, thread and
connection leaks) and are exercised by the extension benchmarks.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.db.jdbc import DataSource
from repro.core.sizing import ComponentSizeCache
from repro.jmx.mbean import MBean, attribute, operation
from repro.jmx.object_name import ObjectName
from repro.jvm.objects import JavaObject
from repro.jvm.runtime import JvmRuntime

#: JMX domain under which all monitoring agents register.
AGENT_DOMAIN = "repro.agents"


def agent_object_name(agent_type: str) -> ObjectName:
    """Canonical ObjectName for an agent of the given type."""
    return ObjectName.of(AGENT_DOMAIN, type=agent_type)


class MonitoringAgent(MBean):
    """Base class of all monitoring agents."""

    #: Short type string used in the agent's ObjectName (subclasses override).
    agent_type = "abstract"
    description = "Base monitoring agent"

    def __init__(self) -> None:
        self._enabled = True
        self._sample_count = 0

    # -- management surface ------------------------------------------------ #
    @attribute
    def AgentType(self) -> str:
        """The agent's type string."""
        return self.agent_type

    @attribute
    def Enabled(self) -> bool:
        """Whether the agent currently answers samples."""
        return self._enabled

    @attribute
    def SampleCount(self) -> int:
        """Number of samples served so far."""
        return self._sample_count

    @operation
    def enable(self) -> None:
        """Enable sampling."""
        self._enabled = True

    @operation
    def disable(self) -> None:
        """Disable sampling (samples return an empty mapping)."""
        self._enabled = False

    @operation
    def sample(self, component: str) -> Dict[str, float]:
        """Measure the agent's resource for ``component``.

        Returns an empty mapping when the agent is disabled.
        """
        if not self._enabled:
            return {}
        self._sample_count += 1
        return self._measure(component)

    # -- to be provided by subclasses -------------------------------------- #
    def _measure(self, component: str) -> Dict[str, float]:
        raise NotImplementedError

    def object_name(self) -> ObjectName:
        """The ObjectName this agent should be registered under."""
        return agent_object_name(self.agent_type)


class ObjectSizeAgent(MonitoringAgent):
    """Reports the one-level "real size" of a component's long-lived objects.

    This is the agent the paper builds for its case study: it knows, for each
    application component, which heap objects belong to it (the servlet's
    instance state) and measures their size including directly referenced
    objects only.
    """

    agent_type = "object-size"
    description = "One-level deep object size per application component"

    def __init__(self, runtime: JvmRuntime) -> None:
        super().__init__()
        self._runtime = runtime
        self._roots: Dict[str, List[JavaObject]] = {}
        self._size_cache = ComponentSizeCache(heap=runtime.heap)

    @operation
    def register_component(self, component: str, root: JavaObject) -> None:
        """Associate a long-lived object with a component (idempotent append)."""
        self._roots.setdefault(component, [])
        if root not in self._roots[component]:
            self._roots[component].append(root)
            self._size_cache.invalidate(component)

    @operation
    def unregister_component(self, component: str) -> None:
        """Forget a component's objects."""
        self._roots.pop(component, None)
        self._size_cache.invalidate(component)

    @attribute
    def ComponentCount(self) -> int:
        """Number of components with registered objects."""
        return len(self._roots)

    @operation
    def components(self) -> List[str]:
        """Sorted names of registered components."""
        return sorted(self._roots)

    def _measure(self, component: str) -> Dict[str, float]:
        roots = self._roots.get(component)
        if not roots:
            return {"object_size": 0.0}
        return {"object_size": float(self._size_cache.component_size(component, roots))}


class HeapAgent(MonitoringAgent):
    """Reports whole-JVM heap occupancy (``Runtime.totalMemory/freeMemory``)."""

    agent_type = "heap"
    description = "JVM heap usage"

    def __init__(self, runtime: JvmRuntime) -> None:
        super().__init__()
        self._runtime = runtime

    @attribute
    def HeapCapacity(self) -> int:
        """Configured maximum heap size in bytes."""
        return self._runtime.total_memory()

    @operation
    def live_bytes(self) -> float:
        """Reachable (post-GC floor) heap bytes.

        A separate operation rather than part of :meth:`sample`: it walks the
        reference graph, which is far too expensive for the per-request AC
        sampling path.  The manager polls it once per periodic snapshot; the
        rejuvenation controller extrapolates this series, because exhaustion
        is driven by unreclaimable growth, not the garbage sawtooth that
        ``heap_used`` rides between collections.
        """
        return float(self._runtime.heap.live_reachable_bytes())

    def _measure(self, component: str) -> Dict[str, float]:
        return {
            "heap_used": float(self._runtime.used_memory()),
            "heap_free": float(self._runtime.free_memory()),
        }


class CpuAgent(MonitoringAgent):
    """Reports CPU seconds attributed to a component (ThreadMXBean analogue)."""

    agent_type = "cpu"
    description = "Per-component CPU time"

    def __init__(self, runtime: JvmRuntime) -> None:
        super().__init__()
        self._runtime = runtime

    @attribute
    def TotalCpuSeconds(self) -> float:
        """CPU seconds consumed by the whole JVM."""
        return self._runtime.cpu_time()

    def _measure(self, component: str) -> Dict[str, float]:
        return {"cpu_seconds": float(self._runtime.cpu_time(component))}


class ThreadAgent(MonitoringAgent):
    """Reports live thread counts, per component and JVM-wide."""

    agent_type = "threads"
    description = "Thread counts"

    def __init__(self, runtime: JvmRuntime) -> None:
        super().__init__()
        self._runtime = runtime

    @attribute
    def LiveThreadCount(self) -> int:
        """Live threads in the JVM."""
        return self._runtime.thread_count()

    @attribute
    def PeakThreadCount(self) -> int:
        """Peak live-thread count observed."""
        return self._runtime.threads.peak_count

    def _measure(self, component: str) -> Dict[str, float]:
        return {
            "threads": float(self._runtime.threads.count_by_owner(component)),
            "threads_total": float(self._runtime.thread_count()),
        }


class ConnectionPoolAgent(MonitoringAgent):
    """Reports JDBC connection-pool state (for connection-leak detection)."""

    agent_type = "connections"
    description = "JDBC connection pool usage"

    def __init__(self, datasource: DataSource) -> None:
        super().__init__()
        self._datasource = datasource

    @attribute
    def PoolSize(self) -> int:
        """Configured pool bound."""
        return self._datasource.pool_size

    @attribute
    def ExhaustionEvents(self) -> int:
        """How many times the pool refused a borrow."""
        return self._datasource.exhaustion_events

    def _measure(self, component: str) -> Dict[str, float]:
        return {
            "connections_active": float(self._datasource.active_connections),
            "connections_available": float(self._datasource.available_connections),
        }


def default_agents(
    runtime: JvmRuntime, datasource: Optional[DataSource] = None
) -> List[MonitoringAgent]:
    """The agent set the framework installs by default.

    The paper's prototype ships "a limited number of monitors"; ours mirrors
    that with the object-size and heap agents always on, plus the CPU,
    thread and connection agents when the extension resources are monitored.
    """
    agents: List[MonitoringAgent] = [ObjectSizeAgent(runtime), HeapAgent(runtime)]
    if datasource is not None:
        agents.append(ConnectionPoolAgent(datasource))
    agents.append(CpuAgent(runtime))
    agents.append(ThreadAgent(runtime))
    return agents
