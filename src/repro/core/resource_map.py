"""The resource-consumption vs. usage-frequency map.

The JMX Manager Agent builds this map (Fig. 2 is the theory, Fig. 6 the map
built from measurements): for every application component it tracks how
often the component is used and how much of each resource it has accumulated
over time.  Components that are *both* heavily used and heavy consumers fall
into the most-suspicious quadrant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.metrics import TimeSeries

#: The metric the paper's case study tracks.
DEFAULT_METRIC = "object_size"

#: Quadrant labels (usage, consumption).
QUADRANT_LABELS = {
    (False, False): "low-usage / low-consumption",
    (False, True): "low-usage / high-consumption",
    (True, False): "high-usage / low-consumption",
    (True, True): "high-usage / high-consumption (most suspicious)",
}


@dataclass
class ComponentSample:
    """One before/after measurement produced by an Aspect Component."""

    component: str
    timestamp: float
    #: metric -> (after - before) for this execution.
    deltas: Dict[str, float] = field(default_factory=dict)
    #: metric -> absolute value observed *after* the execution.
    values: Dict[str, float] = field(default_factory=dict)


@dataclass
class ComponentStats:
    """Accumulated state of one component inside the map."""

    name: str
    invocations: int = 0
    cumulative_deltas: Dict[str, float] = field(default_factory=dict)
    last_values: Dict[str, float] = field(default_factory=dict)
    first_values: Dict[str, float] = field(default_factory=dict)
    series: Dict[str, TimeSeries] = field(default_factory=dict)

    def series_for(self, metric: str) -> TimeSeries:
        """Get or create the time series for ``metric``."""
        if metric not in self.series:
            self.series[metric] = TimeSeries(f"{self.name}.{metric}")
        return self.series[metric]

    def observe(self, metric: str, timestamp: float, value: float) -> None:
        """Record an absolute observation of ``metric``."""
        self.first_values.setdefault(metric, value)
        self.last_values[metric] = value
        self.series_for(metric).record(timestamp, value)

    def add_delta(self, metric: str, delta: float) -> None:
        """Accumulate one execution's delta of ``metric``."""
        self.cumulative_deltas[metric] = self.cumulative_deltas.get(metric, 0.0) + delta

    def consumption(self, metric: str = DEFAULT_METRIC) -> float:
        """Accumulated consumption of ``metric``.

        Two estimators are available and the larger is reported: growth
        between the first and last absolute observation (robust when periodic
        snapshots exist) and the sum of per-execution deltas measured by the
        Aspect Component (available from the very first execution).  Both
        measure the same accumulation, so taking the maximum simply uses
        whichever view has seen more of it.
        """
        growth = 0.0
        if metric in self.first_values and metric in self.last_values:
            growth = self.last_values[metric] - self.first_values[metric]
        delta_sum = self.cumulative_deltas.get(metric, 0.0)
        return max(0.0, growth, delta_sum)


class ResourceComponentMap:
    """Per-component resource accounting built by the Manager Agent."""

    def __init__(self) -> None:
        self._stats: Dict[str, ComponentStats] = {}
        self._sample_count = 0
        self._first_timestamp: Optional[float] = None
        self._last_timestamp: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Updating
    # ------------------------------------------------------------------ #
    def stats(self, component: str) -> ComponentStats:
        """Get or create the stats record for ``component``."""
        if component not in self._stats:
            self._stats[component] = ComponentStats(name=component)
        return self._stats[component]

    def register_component(self, component: str) -> None:
        """Make a component visible in the map even before any sample."""
        self.stats(component)

    def _note_time(self, timestamp: float) -> None:
        if self._first_timestamp is None or timestamp < self._first_timestamp:
            self._first_timestamp = timestamp
        if self._last_timestamp is None or timestamp > self._last_timestamp:
            self._last_timestamp = timestamp

    def add_sample(self, sample: ComponentSample) -> None:
        """Fold one Aspect-Component sample into the map."""
        stats = self.stats(sample.component)
        stats.invocations += 1
        for metric, delta in sample.deltas.items():
            stats.add_delta(metric, delta)
        for metric, value in sample.values.items():
            stats.observe(metric, sample.timestamp, value)
        self._sample_count += 1
        self._note_time(sample.timestamp)

    def add_samples(self, samples: Sequence[ComponentSample]) -> None:
        """Fold a batch of samples at once (the manager's buffered intake).

        Equivalent to calling :meth:`add_sample` per element — per-component
        sample order, and therefore every accumulation, is preserved — but
        series appends happen as one bulk extend per (component, metric)
        instead of one list append + cache invalidation per observation.
        """
        if not samples:
            return
        by_component: Dict[str, List[ComponentSample]] = {}
        for sample in samples:
            group = by_component.get(sample.component)
            if group is None:
                group = by_component[sample.component] = []
            group.append(sample)
        for component, group in by_component.items():
            stats = self.stats(component)
            stats.invocations += len(group)
            delta_totals = stats.cumulative_deltas
            delta_metrics = set().union(*(sample.deltas.keys() for sample in group))
            for metric in sorted(delta_metrics):
                try:
                    # C-level comprehension; AC samples of one component
                    # virtually always carry the same metric keys.
                    total = sum([sample.deltas[metric] for sample in group])
                except KeyError:
                    total = sum(sample.deltas.get(metric, 0.0) for sample in group)
                delta_totals[metric] = delta_totals.get(metric, 0.0) + total
            value_metrics = set().union(*(sample.values.keys() for sample in group))
            if value_metrics:
                metric_times = None
                for metric in sorted(value_metrics):
                    try:
                        metric_values = [sample.values[metric] for sample in group]
                        if metric_times is None:
                            metric_times = [sample.timestamp for sample in group]
                        times = metric_times
                    except KeyError:
                        pairs = [
                            (sample.timestamp, sample.values[metric])
                            for sample in group
                            if metric in sample.values
                        ]
                        times = [pair[0] for pair in pairs]
                        metric_values = [pair[1] for pair in pairs]
                    stats.first_values.setdefault(metric, metric_values[0])
                    stats.last_values[metric] = metric_values[-1]
                    stats.series_for(metric).record_many(times, metric_values)
        self._sample_count += len(samples)
        self._note_time(min(sample.timestamp for sample in samples))
        self._note_time(max(sample.timestamp for sample in samples))

    def record_observation(self, component: str, metric: str, timestamp: float, value: float) -> None:
        """Record a polled (snapshot) observation for a component."""
        self.stats(component).observe(metric, timestamp, value)
        self._note_time(timestamp)

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    @property
    def sample_count(self) -> int:
        """Number of AC samples folded in."""
        return self._sample_count

    def components(self) -> List[str]:
        """Sorted component names present in the map."""
        return sorted(self._stats)

    def application_components(self) -> List[str]:
        """Component names excluding pseudo entries such as ``"<jvm>"``.

        Pseudo components record whole-system series (heap usage) for the
        reports, but they are not candidates for root-cause attribution.
        """
        return [name for name in sorted(self._stats) if not name.startswith("<")]

    def observation_window(self) -> float:
        """Seconds between the first and last observation."""
        if self._first_timestamp is None or self._last_timestamp is None:
            return 0.0
        return self._last_timestamp - self._first_timestamp

    def usage_frequency(self, component: str) -> float:
        """Invocations per second over the observation window."""
        window = self.observation_window()
        stats = self.stats(component)
        if window <= 0:
            return float(stats.invocations)
        return stats.invocations / window

    def consumption(self, component: str, metric: str = DEFAULT_METRIC) -> float:
        """Accumulated consumption of ``metric`` by ``component``."""
        return self.stats(component).consumption(metric)

    def series(self, component: str, metric: str = DEFAULT_METRIC) -> TimeSeries:
        """The recorded time series of ``metric`` for ``component``."""
        return self.stats(component).series_for(metric)

    # ------------------------------------------------------------------ #
    # The quadrant map (Figs. 2 and 6)
    # ------------------------------------------------------------------ #
    def quadrants(
        self,
        metric: str = DEFAULT_METRIC,
        usage_threshold: Optional[float] = None,
        consumption_threshold: Optional[float] = None,
    ) -> Dict[str, str]:
        """Classify every component into one of the four quadrants.

        Thresholds default to the mean usage frequency and mean consumption
        across components (a simple, paper-faithful split between "high" and
        "low").
        """
        names = self.components()
        if not names:
            return {}
        usages = {name: self.stats(name).invocations for name in names}
        consumptions = {name: self.consumption(name, metric) for name in names}
        if usage_threshold is None:
            usage_threshold = sum(usages.values()) / len(names)
        if consumption_threshold is None:
            consumption_threshold = sum(consumptions.values()) / len(names)
        out: Dict[str, str] = {}
        for name in names:
            high_usage = usages[name] >= usage_threshold and usages[name] > 0
            high_consumption = (
                consumptions[name] >= consumption_threshold and consumptions[name] > 0
            )
            out[name] = QUADRANT_LABELS[(high_usage, high_consumption)]
        return out

    def to_rows(self, metric: str = DEFAULT_METRIC) -> List[Dict[str, float]]:
        """The map as printable rows (one per component)."""
        quadrant_map = self.quadrants(metric)
        rows = []
        for name in self.components():
            stats = self.stats(name)
            rows.append(
                {
                    "component": name,
                    "invocations": stats.invocations,
                    "usage_per_second": round(self.usage_frequency(name), 4),
                    f"{metric}_consumed": round(self.consumption(name, metric), 1),
                    f"{metric}_last": round(stats.last_values.get(metric, 0.0), 1),
                    "quadrant": quadrant_map.get(name, ""),
                }
            )
        return rows
