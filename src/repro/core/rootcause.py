"""Root-cause determination strategies.

The paper's strategy (Section III-C) is deliberately simple: a component is
more likely to be the aging root cause the more resources it has accumulated
and the more frequently it is used.  :class:`PaperMapStrategy` implements it
verbatim over the resource-component map.  The paper also calls for "more
intelligent decision makers" as future work; :class:`TrendStrategy`
(Mann-Kendall significance + robust slope) and
:class:`WeightedCompositeStrategy` are the refinements exercised by the
ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.analysis.statistics import normalize_scores
from repro.analysis.trend import mann_kendall, theil_sen_slope
from repro.core.resource_map import DEFAULT_METRIC, ResourceComponentMap


@dataclass
class Suspicion:
    """One component's entry in a root-cause report."""

    component: str
    score: float
    rank: int
    responsibility: float = 0.0
    details: Dict[str, float] = field(default_factory=dict)


@dataclass
class RootCauseReport:
    """The outcome of one analysis run."""

    strategy: str
    metric: str
    suspicions: List[Suspicion] = field(default_factory=list)

    def ranked(self) -> List[Suspicion]:
        """Suspicions sorted by rank (1 = most suspicious)."""
        return sorted(self.suspicions, key=lambda suspicion: suspicion.rank)

    def ranking(self) -> List[str]:
        """Component names in rank order."""
        return [suspicion.component for suspicion in self.ranked()]

    def top(self) -> Optional[Suspicion]:
        """The most suspicious component (``None`` for an empty report)."""
        ranked = self.ranked()
        return ranked[0] if ranked else None

    def responsibility(self, component: str) -> float:
        """The normalised share of responsibility assigned to ``component``."""
        for suspicion in self.suspicions:
            if suspicion.component == component:
                return suspicion.responsibility
        return 0.0

    def to_rows(self) -> List[Dict[str, float]]:
        """Printable rows, rank order."""
        return [
            {
                "rank": suspicion.rank,
                "component": suspicion.component,
                "score": round(suspicion.score, 3),
                "responsibility": round(suspicion.responsibility, 4),
            }
            for suspicion in self.ranked()
        ]


def _build_report(
    strategy_name: str,
    metric: str,
    scores: Dict[str, float],
    details: Optional[Dict[str, Dict[str, float]]] = None,
    usage_tiebreak: Optional[Dict[str, float]] = None,
) -> RootCauseReport:
    """Assemble a report from raw scores (shared by all strategies)."""
    responsibilities = normalize_scores(scores)
    tiebreak = usage_tiebreak or {}
    ordered = sorted(
        scores,
        key=lambda name: (-scores[name], -tiebreak.get(name, 0.0), name),
    )
    suspicions = []
    for rank, name in enumerate(ordered, start=1):
        suspicions.append(
            Suspicion(
                component=name,
                score=float(scores[name]),
                rank=rank,
                responsibility=responsibilities.get(name, 0.0),
                details=(details or {}).get(name, {}),
            )
        )
    return RootCauseReport(strategy=strategy_name, metric=metric, suspicions=suspicions)


class RootCauseStrategy:
    """Interface implemented by all strategies."""

    name = "abstract"

    def analyze(
        self, resource_map: ResourceComponentMap, metric: str = DEFAULT_METRIC
    ) -> RootCauseReport:
        """Produce a ranked report from the resource-component map."""
        raise NotImplementedError


class PaperMapStrategy(RootCauseStrategy):
    """The paper's consumption × usage map strategy.

    A component's suspicion score is its accumulated consumption of the
    metric (how much the component's "real size" has grown over the
    observation window); usage frequency breaks ties — exactly the reading
    of Fig. 2: among equal consumers the more-used component is more
    suspicious, and a component that consumed nothing is not suspicious at
    all regardless of usage.
    """

    name = "paper-map"

    def analyze(
        self, resource_map: ResourceComponentMap, metric: str = DEFAULT_METRIC
    ) -> RootCauseReport:
        scores: Dict[str, float] = {}
        details: Dict[str, Dict[str, float]] = {}
        usage: Dict[str, float] = {}
        for component in resource_map.application_components():
            consumption = max(0.0, resource_map.consumption(component, metric))
            frequency = resource_map.usage_frequency(component)
            scores[component] = consumption
            usage[component] = frequency
            details[component] = {
                "consumption": consumption,
                "usage_per_second": frequency,
                "invocations": float(resource_map.stats(component).invocations),
            }
        return _build_report(self.name, metric, scores, details, usage)


class TrendStrategy(RootCauseStrategy):
    """Trend-aware refinement.

    A component only receives a score when the Mann-Kendall test finds a
    statistically significant upward trend in its metric series; the score is
    the robust (Theil-Sen) slope extrapolated over the observation window,
    i.e. "how many bytes will this component have accumulated by the end of
    the window if it keeps going".  This suppresses components whose size
    merely fluctuates.
    """

    name = "trend"

    def __init__(self, alpha: float = 0.05, min_points: int = 5) -> None:
        if not 0 < alpha < 1:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        if min_points < 3:
            raise ValueError(f"min_points must be >= 3, got {min_points}")
        self.alpha = alpha
        self.min_points = min_points

    def analyze(
        self, resource_map: ResourceComponentMap, metric: str = DEFAULT_METRIC
    ) -> RootCauseReport:
        window = max(resource_map.observation_window(), 1.0)
        scores: Dict[str, float] = {}
        details: Dict[str, Dict[str, float]] = {}
        usage: Dict[str, float] = {}
        for component in resource_map.application_components():
            series = resource_map.series(component, metric)
            usage[component] = resource_map.usage_frequency(component)
            if len(series) < self.min_points:
                scores[component] = 0.0
                details[component] = {"points": float(len(series)), "slope": 0.0, "p_value": 1.0}
                continue
            trend = mann_kendall(series.values, alpha=self.alpha)
            slope = theil_sen_slope(series.times, series.values)
            score = slope * window if trend.trending_up and slope > 0 else 0.0
            scores[component] = score
            details[component] = {
                "points": float(len(series)),
                "slope": slope,
                "p_value": trend.p_value,
                "significant": 1.0 if trend.significant else 0.0,
            }
        return _build_report(self.name, metric, scores, details, usage)


#: A provider of per-component latency series: either a ready mapping
#: ``{component: TimeSeries}`` or a zero-argument callable returning one
#: (e.g. ``server.component_latency_series``).
LatencySeriesProvider = Union[Mapping[str, object], Callable[[], Mapping[str, object]]]


def _bucket_series(
    times: np.ndarray, values: np.ndarray, max_points: int
) -> tuple:
    """Downsample a (times, values) series to per-bucket means.

    Mann-Kendall and Theil-Sen are O(n²) in the number of points, so a
    per-request latency series (thousands of samples) must be reduced to a
    small, fixed number of time buckets before trend analysis.
    """
    if len(times) <= max_points:
        return times, values
    edges = np.linspace(times[0], times[-1], max_points + 1)
    # Right-inclusive last bucket; indices in [0, max_points - 1].
    indices = np.clip(np.searchsorted(edges, times, side="right") - 1, 0, max_points - 1)
    bucket_times = []
    bucket_values = []
    for bucket in range(max_points):
        mask = indices == bucket
        if not mask.any():
            continue
        bucket_times.append(float(times[mask].mean()))
        bucket_values.append(float(values[mask].mean()))
    return np.asarray(bucket_times), np.asarray(bucket_values)


class LatencyTrendStrategy(RootCauseStrategy):
    """Latency-mode fault detection: trending response times, not resources.

    The map strategies only see *resource* consumption (heap, threads,
    connections), so latency-mode faults — lock convoys, slow downstream
    calls, cache stampedes — are invisible to them.  This strategy scores a
    component by the significant upward trend of its response-time series
    (Mann-Kendall significance gate, Theil-Sen slope extrapolated over the
    window), exactly parallel to :class:`TrendStrategy` on resources.

    The per-request series is bucketed to at most ``max_points`` time
    buckets (per-bucket means) before analysis: the trend statistics are
    O(n²) and the raw series has one point per completed request.
    """

    name = "latency-trend"

    def __init__(
        self,
        latency_series: LatencySeriesProvider,
        alpha: float = 0.05,
        min_points: int = 5,
        max_points: int = 60,
    ) -> None:
        if not 0 < alpha < 1:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        if min_points < 3:
            raise ValueError(f"min_points must be >= 3, got {min_points}")
        if max_points < min_points:
            raise ValueError(
                f"max_points ({max_points}) must be >= min_points ({min_points})"
            )
        self._latency_series = latency_series
        self.alpha = alpha
        self.min_points = min_points
        self.max_points = max_points

    def _resolve_series(self) -> Mapping[str, object]:
        provider = self._latency_series
        return provider() if callable(provider) else provider

    def analyze(
        self, resource_map: ResourceComponentMap, metric: str = DEFAULT_METRIC
    ) -> RootCauseReport:
        series_by_component = self._resolve_series()
        components = set(resource_map.application_components()) | set(series_by_component)
        scores: Dict[str, float] = {}
        details: Dict[str, Dict[str, float]] = {}
        usage: Dict[str, float] = {}
        for component in sorted(components):
            usage[component] = (
                resource_map.usage_frequency(component)
                if component in resource_map.application_components()
                else 0.0
            )
            series = series_by_component.get(component)
            length = len(series) if series is not None else 0
            if series is None or length < self.min_points:
                scores[component] = 0.0
                details[component] = {"points": float(length), "slope": 0.0, "p_value": 1.0}
                continue
            times, values = _bucket_series(
                np.asarray(series.times, dtype=float),
                np.asarray(series.values, dtype=float),
                self.max_points,
            )
            if len(times) < self.min_points:
                scores[component] = 0.0
                details[component] = {"points": float(len(times)), "slope": 0.0, "p_value": 1.0}
                continue
            window = max(float(times[-1] - times[0]), 1.0)
            trend = mann_kendall(values, alpha=self.alpha)
            slope = theil_sen_slope(times, values)
            score = slope * window if trend.trending_up and slope > 0 else 0.0
            scores[component] = score
            details[component] = {
                "points": float(len(times)),
                "raw_points": float(length),
                "slope": slope,
                "p_value": trend.p_value,
                "significant": 1.0 if trend.significant else 0.0,
            }
        return _build_report(self.name, "response_time", scores, details, usage)


class CascadeAwareStrategy(RootCauseStrategy):
    """Attribution under correlated cascades: blame the grower, not the slow.

    In the cascade fault, component A leaks (resource growth **and**,
    indirectly, latency growth at B); component B only gets slower.  A pure
    latency strategy blames B; a pure resource strategy sees A but ignores
    latency-mode faults entirely.  This strategy weights *resource*
    responsibility above *latency* responsibility, so a component with a
    genuine resource trend (the true root cause) outranks a component that
    is merely collateral damage — while pure latency faults (no resource
    trend anywhere) still rank by latency alone.
    """

    name = "cascade-aware"

    def __init__(
        self,
        latency_series: LatencySeriesProvider,
        resource_weight: float = 2.0,
        latency_weight: float = 1.0,
        alpha: float = 0.05,
    ) -> None:
        if resource_weight < 0 or latency_weight < 0:
            raise ValueError("weights must be non-negative")
        if resource_weight + latency_weight <= 0:
            raise ValueError("at least one weight must be positive")
        self.resource_weight = float(resource_weight)
        self.latency_weight = float(latency_weight)
        self._resource_strategy = TrendStrategy(alpha=alpha)
        self._latency_strategy = LatencyTrendStrategy(latency_series, alpha=alpha)

    def analyze(
        self, resource_map: ResourceComponentMap, metric: str = DEFAULT_METRIC
    ) -> RootCauseReport:
        resource_report = self._resource_strategy.analyze(resource_map, metric)
        latency_report = self._latency_strategy.analyze(resource_map, metric)
        combined: Dict[str, float] = {}
        details: Dict[str, Dict[str, float]] = {}
        usage = {
            name: resource_map.usage_frequency(name)
            for name in resource_map.application_components()
        }
        for report, weight, label in (
            (resource_report, self.resource_weight, "resource"),
            (latency_report, self.latency_weight, "latency"),
        ):
            for suspicion in report.suspicions:
                combined[suspicion.component] = (
                    combined.get(suspicion.component, 0.0)
                    + weight * suspicion.responsibility
                )
                details.setdefault(suspicion.component, {})[
                    f"{label}_responsibility"
                ] = suspicion.responsibility
        return _build_report(self.name, metric, combined, details, usage)


class WeightedCompositeStrategy(RootCauseStrategy):
    """Combines several strategies with weights (normalised per strategy).

    The default combination (paper map + trend, equal weight) keeps the paper
    strategy's sensitivity while adding the trend strategy's robustness to
    noisy, non-monotonic series.
    """

    name = "composite"

    def __init__(
        self,
        strategies: Optional[Sequence[RootCauseStrategy]] = None,
        weights: Optional[Sequence[float]] = None,
    ) -> None:
        self.strategies = list(strategies) if strategies is not None else [
            PaperMapStrategy(),
            TrendStrategy(),
        ]
        if weights is None:
            weights = [1.0] * len(self.strategies)
        if len(weights) != len(self.strategies):
            raise ValueError(
                f"{len(self.strategies)} strategies but {len(weights)} weights"
            )
        if any(weight < 0 for weight in weights):
            raise ValueError("weights must be non-negative")
        if sum(weights) <= 0:
            raise ValueError("at least one weight must be positive")
        self.weights = list(weights)

    def analyze(
        self, resource_map: ResourceComponentMap, metric: str = DEFAULT_METRIC
    ) -> RootCauseReport:
        combined: Dict[str, float] = {name: 0.0 for name in resource_map.application_components()}
        details: Dict[str, Dict[str, float]] = {name: {} for name in combined}
        usage = {name: resource_map.usage_frequency(name) for name in combined}
        for strategy, weight in zip(self.strategies, self.weights):
            report = strategy.analyze(resource_map, metric)
            for suspicion in report.suspicions:
                combined[suspicion.component] = (
                    combined.get(suspicion.component, 0.0)
                    + weight * suspicion.responsibility
                )
                details.setdefault(suspicion.component, {})[
                    f"{strategy.name}_responsibility"
                ] = suspicion.responsibility
        return _build_report(self.name, metric, combined, details, usage)
