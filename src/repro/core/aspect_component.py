"""The Aspect Component (AC) and its AC Proxy.

One AC is associated with every application component (Section III-B.1 of
the paper).  The AC contributes two advices — *before* and *after* the
component's execution — which sample every registered JMX Monitoring Agent,
attribute the measured deltas to the component, and forward the sample to
the JMX Manager Agent through the MBeanServer (the AC never holds a direct
reference to the manager, so either side can be replaced at runtime).

The AC Proxy is the MBean face of the AC: through it the Manager Agent (and
the External Front-end) can ask how many requests the component has served,
and can activate or deactivate the AC on demand — the knob used to trade
monitoring coverage for overhead.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.aop.advice import Advice, AdviceKind
from repro.aop.aspect import Aspect
from repro.aop.joinpoint import JoinPoint
from repro.aop.pointcut import ExecutionPointcut
from repro.core.monitoring_agents import AGENT_DOMAIN
from repro.core.overhead import OverheadAccount
from repro.core.resource_map import ComponentSample
from repro.jmx.mbean import MBean, attribute, operation
from repro.jmx.mbean_server import MBeanServer
from repro.jmx.object_name import ObjectName

#: JMX domain under which AC proxies register.
ASPECT_DOMAIN = "repro.aspects"
#: JMX domain/type of the manager agent the AC reports to.
MANAGER_PATTERN = "repro.core:type=ManagerAgent,*"


def aspect_object_name(component: str) -> ObjectName:
    """Canonical ObjectName of the AC proxy for ``component``."""
    return ObjectName.of(ASPECT_DOMAIN, type="AspectComponent", component=component)


class AspectComponent(Aspect):
    """The aspect woven around one application component.

    Parameters
    ----------
    component_name:
        Logical component name (the servlet's interaction name).
    java_class_name:
        Fully qualified class name of the component; the AC's pointcut is
        built from it so the aspect only intercepts its own component.
    mbean_server:
        The MBeanServer used to discover monitoring agents and the manager.
    overhead:
        Overhead account charged for every agent sample (optional).
    clock:
        Clock-like object (``now`` attribute) used to timestamp samples.
    method_pattern:
        Which methods of the component to intercept (default ``service`` —
        the single entry point of a servlet).
    agent_pattern:
        ObjectName pattern used to discover monitoring agents.
    """

    def __init__(
        self,
        component_name: str,
        java_class_name: str,
        mbean_server: MBeanServer,
        overhead: Optional[OverheadAccount] = None,
        clock: Optional[Any] = None,
        method_pattern: str = "service",
        agent_pattern: str = f"{AGENT_DOMAIN}:*",
    ) -> None:
        super().__init__()
        self.aspect_name = f"AC[{component_name}]"
        self.component_name = component_name
        self.java_class_name = java_class_name
        self._server = mbean_server
        self._overhead = overhead
        self._clock = clock
        self.method_pattern = method_pattern
        self.agent_pattern = agent_pattern
        self._manager_name: Optional[ObjectName] = None
        self._invocations = 0
        self._samples_sent = 0
        self._last_deltas: Dict[str, float] = {}
        self._last_values: Dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # Aspect plumbing
    # ------------------------------------------------------------------ #
    def advices(self) -> List[Advice]:
        """Before/after advices bound to this component's own pointcut."""
        pointcut = ExecutionPointcut(self.java_class_name, self.method_pattern)
        return [
            Advice(
                kind=AdviceKind.BEFORE,
                pointcut=pointcut,
                body=self.before_component_execution,
                name=f"{self.name}.before",
            ),
            Advice(
                kind=AdviceKind.AFTER,
                pointcut=pointcut,
                body=self.after_component_execution,
                name=f"{self.name}.after",
            ),
        ]

    # ------------------------------------------------------------------ #
    # Agent access
    # ------------------------------------------------------------------ #
    def _now(self) -> float:
        return float(getattr(self._clock, "now", 0.0)) if self._clock is not None else 0.0

    def _sample_agents(self) -> Dict[str, float]:
        """Query every registered monitoring agent for this component."""
        measurements: Dict[str, float] = {}
        agent_names = self._server.query_names(self.agent_pattern)
        for agent_name in agent_names:
            values = self._server.invoke(agent_name, "sample", self.component_name)
            if not values:
                continue
            measurements.update({metric: float(value) for metric, value in values.items()})
            if self._overhead is not None:
                self._overhead.charge_sample(self.component_name)
        return measurements

    def _find_manager(self) -> Optional[ObjectName]:
        if self._manager_name is not None and self._server.is_registered(self._manager_name):
            return self._manager_name
        names = self._server.query_names(MANAGER_PATTERN)
        self._manager_name = names[0] if names else None
        return self._manager_name

    # ------------------------------------------------------------------ #
    # Advices
    # ------------------------------------------------------------------ #
    def before_component_execution(self, join_point: JoinPoint) -> None:
        """Snapshot every monitored resource before the component runs."""
        join_point.context["ac.before"] = self._sample_agents()

    def after_component_execution(self, join_point: JoinPoint) -> None:
        """Re-sample, attribute the deltas and report to the manager."""
        before_values = join_point.context.get("ac.before", {})
        after_values = self._sample_agents()
        deltas = {
            metric: after_values[metric] - before_values.get(metric, after_values[metric])
            for metric in after_values
        }
        self._invocations += 1
        self._last_deltas = deltas
        self._last_values = after_values

        sample = ComponentSample(
            component=self.component_name,
            timestamp=self._now() or join_point.timestamp,
            deltas=deltas,
            values=after_values,
        )
        manager = self._find_manager()
        if manager is not None:
            self._server.invoke(manager, "record_sample", sample)
            self._samples_sent += 1

    # ------------------------------------------------------------------ #
    # Introspection used by the proxy
    # ------------------------------------------------------------------ #
    @property
    def invocation_count(self) -> int:
        """Executions of the component observed by this AC."""
        return self._invocations

    @property
    def samples_sent(self) -> int:
        """Samples successfully delivered to the manager."""
        return self._samples_sent

    @property
    def last_deltas(self) -> Dict[str, float]:
        """Deltas of the most recent execution."""
        return dict(self._last_deltas)

    @property
    def last_values(self) -> Dict[str, float]:
        """Absolute values observed after the most recent execution."""
        return dict(self._last_values)

    def reset_counters(self) -> None:
        """Zero the invocation/sample counters (keeps enable state)."""
        self._invocations = 0
        self._samples_sent = 0
        self._last_deltas = {}
        self._last_values = {}


class AspectComponentProxy(MBean):
    """MBean face of one Aspect Component (the paper's "AC Proxy")."""

    description = "Management proxy of an Aspect Component"

    def __init__(self, aspect_component: AspectComponent) -> None:
        self._ac = aspect_component

    # -- attributes --------------------------------------------------------- #
    @attribute
    def ComponentName(self) -> str:
        """The monitored component's name."""
        return self._ac.component_name

    @attribute
    def JavaClassName(self) -> str:
        """The monitored component's class name."""
        return self._ac.java_class_name

    @attribute(writable=True)
    def Enabled(self) -> bool:
        """Whether the AC's advices currently run."""
        return self._ac.enabled

    def set_Enabled(self, value: bool) -> None:
        """Setter backing the writable ``Enabled`` attribute."""
        if value:
            self._ac.enable()
        else:
            self._ac.disable()

    @attribute
    def InvocationCount(self) -> int:
        """Component executions observed."""
        return self._ac.invocation_count

    @attribute
    def SamplesSent(self) -> int:
        """Samples delivered to the manager agent."""
        return self._ac.samples_sent

    # -- operations ---------------------------------------------------------- #
    @operation
    def activate(self) -> None:
        """Turn monitoring of this component on."""
        self._ac.enable()

    @operation
    def deactivate(self) -> None:
        """Turn monitoring of this component off (advices become no-ops)."""
        self._ac.disable()

    @operation
    def reset(self) -> None:
        """Reset the AC's counters."""
        self._ac.reset_counters()

    @operation
    def last_sample(self) -> Dict[str, Dict[str, float]]:
        """The most recent deltas and absolute values."""
        return {"deltas": self._ac.last_deltas, "values": self._ac.last_values}

    def object_name(self) -> ObjectName:
        """The ObjectName this proxy should be registered under."""
        return aspect_object_name(self._ac.component_name)
