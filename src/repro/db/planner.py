"""Compiled SELECT plans: hash-index joins, top-k ORDER BY + LIMIT, tuple rows.

The executor in :mod:`repro.db.engine` used to interpret the SELECT AST
afresh on every call: name resolution per statement, a ``{qualifier: row}``
wrapper dict allocated per joined row, full projection of every surviving
row and a full sort before LIMIT.  The servlets issue a fixed repertoire of
parameterised statements, so all of that interpretive work is loop-invariant
across executions.  This module compiles each SELECT **once** into a
:class:`CompiledSelect` — name resolution, join sides, filters, projection
and order keys all resolved against the table schemas at compile time and
emitted as specialised closures — and the engine caches the plan per
statement (keyed like the ``parse_sql`` statement cache, invalidated by
table/schema versioning).

Operator highlights:

* **Tuple intermediate rows** — joined rows travel as plain tuples of the
  underlying table row dicts; merged wrapper dicts are only materialised for
  rows that survive ORDER BY/LIMIT.
* **Top-k ORDER BY + LIMIT** — when every ORDER BY key runs in the same
  direction, ``heapq.nsmallest``/``nlargest`` select the LIMIT rows without
  sorting (or projecting) the full candidate set.  Both are stable in the
  ``sorted(...)[:n]`` sense, so ties order exactly like the full sort.
* **Lazy hash-index joins** — join/WHERE equality columns without a declared
  index get an auto-maintained hash index built on first demand
  (:meth:`repro.db.table.Table.ensure_hash_index`).
* **Compiled row functions** — projections, group keys, filters and order
  keys are generated as tiny lambdas over the execution rows, so the
  per-row inner loops carry no interpretive dispatch.

**Cost-model neutrality.**  The engine's simulated latency model charges the
*declared* access plan (what the paper-era MySQL would have done with the
schema's indexes), and experiment trajectories depend on those simulated
costs.  Lazy planner indexes therefore never change the accounting: where
the interpreter would have scanned, the plan still charges a full scan
(``scanned += len(table)`` per probe) while physically probing the hash
index — and it emits rows in ascending row-id order, which is exactly the
interpreter's scan order.  Declared-index paths reproduce the interpreter's
set-intersection lookups verbatim.  As a result every query returns
bit-identical rows, row order, ``rows_scanned``/``index_lookups`` counters
and simulated cost — asserted by the planner equivalence suite.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.db.sql import Aggregate, ColumnRef, Condition, SelectStatement
from repro.db.table import Table, _SecondaryIndex

#: Evaluate GROUP BY aggregates by streaming folds (one pass, per-group
#: accumulators) instead of materialising per-group member lists.  Both
#: paths produce identical rows, order and errors; the flag exists for the
#: ``group_by`` A/B benchmark and as an escape hatch.
STREAMING_AGGREGATES = True

#: Cached ``repro.db.engine.SqlExecutionError`` (imported lazily: the engine
#: imports this module, so a top-level import would be circular).
_SQL_ERROR_CLASS = None


def _sql_error(message: str) -> Exception:
    global _SQL_ERROR_CLASS
    if _SQL_ERROR_CLASS is None:
        from repro.db.engine import SqlExecutionError

        _SQL_ERROR_CLASS = SqlExecutionError
    return _SQL_ERROR_CLASS(message)


class _JoinStep:
    """One compiled join: where the probe value comes from and how to match."""

    __slots__ = ("table", "new_name", "old_pos", "old_name", "use_index", "lazy_index")

    def __init__(
        self,
        table: Table,
        new_name: str,
        old_pos: int,
        old_name: str,
        use_index: bool,
        lazy_index: Optional[_SecondaryIndex],
    ) -> None:
        self.table = table
        self.new_name = new_name
        self.old_pos = old_pos
        self.old_name = old_name
        #: Declared index on the join key: probe via ``lookup_ids`` and charge
        #: index lookups, exactly like the interpreter.
        self.use_index = use_index
        #: Planner-built hash index replacing the interpreter's full scan
        #: (``None`` when the join column does not exist — then the
        #: interpreter's ``row.get`` scan semantics are reproduced literally).
        self.lazy_index = lazy_index


class CompiledSelect:
    """A SELECT statement compiled against one database's current schema."""

    def __init__(self, database, statement: SelectStatement) -> None:
        self.statement = statement
        self._bind = database._bind
        self._compare = database._compare
        self._order_key_name = database._order_key_name
        self._compile(database, statement)
        # Validity stamp: any schema change (table created/dropped, index
        # declared) recompiles the plan.
        self.schema_epoch = database._schema_epoch
        self.table_versions = tuple(
            (table, table.schema_version) for table in self._tables
        )

    # ------------------------------------------------------------------ #
    # Compilation
    # ------------------------------------------------------------------ #
    def _accessor(self, pos: int, name: str) -> str:
        """Source expression reading one column off an execution row."""
        if self._joined_layout:
            return f"row[{pos}][{name!r}]"
        return f"row[{name!r}]"

    @staticmethod
    def _make_fn(source: str, namespace: Optional[Dict[str, Any]] = None) -> Callable:
        return eval(source, namespace if namespace is not None else {})

    def _compile(self, database, statement: SelectStatement) -> None:
        base_table = database.table(statement.table)
        base_qualifier = statement.alias or statement.table
        self.base_table = base_table
        self._tables: List[Table] = [base_table]

        # Qualifier bookkeeping mirrors the interpreter's execution-row dict:
        # a duplicate join qualifier overwrites in place (keeps its original
        # iteration slot, points at the latest tuple position).
        tables_by_qualifier: Dict[str, Table] = {base_qualifier: base_table}
        positions: Dict[str, int] = {base_qualifier: 0}

        def resolve_qualifier(ref: ColumnRef) -> str:
            if ref.table is not None:
                if ref.table not in tables_by_qualifier:
                    raise _sql_error(f"unknown table qualifier {ref.table!r}")
                if not tables_by_qualifier[ref.table].has_column(ref.name):
                    raise _sql_error(f"unknown column {ref}")
                return ref.table
            for qualifier, table in tables_by_qualifier.items():
                if table.has_column(ref.name):
                    return qualifier
            raise _sql_error(f"unknown column {ref.name!r}")

        def refers_to_base(ref: ColumnRef) -> bool:
            if ref.table is not None:
                return ref.table == base_qualifier or ref.table == statement.table
            return base_table.has_column(ref.name)

        # WHERE split: declared-index equality pruning vs. residual, exactly
        # like the interpreter.
        self.index_conditions: List[Tuple[str, Any]] = []
        residual: List[Condition] = []
        for condition in statement.where:
            usable = (
                condition.op == "="
                and not isinstance(condition.rhs, ColumnRef)
                and refers_to_base(condition.lhs)
                and base_table.has_index(condition.lhs.name)
            )
            if usable:
                self.index_conditions.append((condition.lhs.name, condition.rhs))
            else:
                residual.append(condition)

        # Joins.
        self.join_steps: List[_JoinStep] = []
        for join in statement.joins:
            join_table = database.table(join.table)
            join_qualifier = join.alias or join.table

            def side_is_new(ref: ColumnRef) -> bool:
                if ref.table is not None:
                    return ref.table == join_qualifier or ref.table == join.table
                return join_table.has_column(ref.name)

            if side_is_new(join.left) and not side_is_new(join.right):
                new_ref, old_ref = join.left, join.right
            elif side_is_new(join.right) and not side_is_new(join.left):
                new_ref, old_ref = join.right, join.left
            else:
                raise _sql_error(
                    f"cannot determine join sides for ON {join.left} = {join.right}"
                )
            use_index = join_table.has_index(new_ref.name)
            old_qualifier = resolve_qualifier(old_ref)
            lazy_index: Optional[_SecondaryIndex] = None
            if not use_index and join_table.has_column(new_ref.name):
                lazy_index = join_table.ensure_hash_index(new_ref.name)
            self.join_steps.append(
                _JoinStep(
                    table=join_table,
                    new_name=new_ref.name,
                    old_pos=positions[old_qualifier],
                    old_name=old_ref.name,
                    use_index=use_index,
                    lazy_index=lazy_index,
                )
            )
            tables_by_qualifier[join_qualifier] = join_table
            positions[join_qualifier] = len(self.join_steps)
            self._tables.append(join_table)

        self.joined = bool(self.join_steps)
        self._joined_layout = self.joined  # row tuples vs. plain row dicts

        # Residual filters -> one compiled predicate.  Parameters/literals
        # are bound per execution into the ``bound`` tuple.  SQL three-valued
        # ``=``/``!=`` collapse exactly to Python ``==``/``!=`` over the
        # engine's value universe (NULL compares equal only to NULL);
        # inequalities and LIKE keep the interpreter's helpers for the
        # NULL-guard and pattern semantics.
        self._residual_nodes: List[Any] = []  # rhs nodes bound per execution
        predicate_terms: List[str] = []
        lazy_candidates: List[Tuple[str, Any, int]] = []
        for condition in residual:
            lhs_qualifier = resolve_qualifier(condition.lhs)
            lhs_expr = self._accessor(positions[lhs_qualifier], condition.lhs.name)
            if isinstance(condition.rhs, ColumnRef):
                rhs_qualifier = resolve_qualifier(condition.rhs)
                rhs_expr = self._accessor(positions[rhs_qualifier], condition.rhs.name)
                bound_index = None
            else:
                bound_index = len(self._residual_nodes)
                self._residual_nodes.append(condition.rhs)
                rhs_expr = f"bound[{bound_index}]"
            if condition.op == "=":
                predicate_terms.append(f"({lhs_expr} == {rhs_expr})")
                if bound_index is not None and base_table.has_column(condition.lhs.name):
                    lazy_candidates.append(
                        (condition.lhs.name, condition.rhs, len(predicate_terms) - 1)
                    )
            elif condition.op == "!=":
                predicate_terms.append(f"({lhs_expr} != {rhs_expr})")
            elif condition.op == "LIKE":
                predicate_terms.append(f"_like({lhs_expr}, {rhs_expr})")
            else:
                predicate_terms.append(f"_cmp({condition.op!r}, {lhs_expr}, {rhs_expr})")

        # Lazy single-table acceleration: equality residuals on an unindexed
        # column probe a planner hash index instead of scanning — but only
        # when there are no joins (pre-filtering the outer side would change
        # the interpreter's join scan accounting) and no declared-index
        # conditions (those dictate the interpreter's candidate iteration
        # order, which the residual predicate preserves more cheaply).
        self.lazy_base_lookups: List[Tuple[_SecondaryIndex, Any]] = []
        remaining_terms = predicate_terms
        if not self.joined and not self.index_conditions and lazy_candidates:
            consumed = set()
            for column_name, rhs_node, term_index in lazy_candidates:
                self.lazy_base_lookups.append(
                    (base_table.ensure_hash_index(column_name), rhs_node)
                )
                consumed.add(term_index)
            remaining_terms = [
                term for index, term in enumerate(predicate_terms) if index not in consumed
            ]

        def make_predicate(terms: List[str]) -> Optional[Callable]:
            if not terms:
                return None
            namespace = {"_cmp": self._compare, "_like": database._like_match}
            return self._make_fn(f"lambda row, bound: {' and '.join(terms)}", namespace)

        #: Full residual predicate (used on declared-index / scan bases).
        self._predicate = make_predicate(predicate_terms)
        #: Residual predicate minus the index-consumed equalities (used when
        #: the base row set came from the lazy hash-index lookups).
        self._lazy_predicate = (
            make_predicate(remaining_terms) if self.lazy_base_lookups else None
        )

        # Projection.
        self.has_aggregates = (
            statement.has_aggregates
            if statement.has_aggregates is not None
            else any(isinstance(item.expression, Aggregate) for item in statement.items)
        )
        self.is_aggregate = self.has_aggregates or bool(statement.group_by)
        self.star = statement.star

        projection: List[Tuple[str, int, str]] = []
        projected_by_name: Dict[str, Tuple[int, str]] = {}
        if self.star:
            if self.has_aggregates:
                raise _sql_error("SELECT * cannot be combined with aggregates")
            # ``merged.update(row)`` semantics: first-seen name keeps its slot,
            # the last qualifier supplies the value.
            slot_by_name: Dict[str, int] = {}
            for qualifier, table in tables_by_qualifier.items():
                pos = positions[qualifier]
                for column in table.column_names():
                    if column in slot_by_name:
                        projection[slot_by_name[column]] = (column, pos, column)
                    else:
                        slot_by_name[column] = len(projection)
                        projection.append((column, pos, column))
            projected_by_name = {name: (pos, col) for name, pos, col in projection}
        elif not self.is_aggregate:
            for item in statement.items:
                name = item.alias or item.expression.name
                qualifier = resolve_qualifier(item.expression)
                entry = (name, positions[qualifier], item.expression.name)
                projection.append(entry)
                projected_by_name[name] = (entry[1], entry[2])

        #: Compiled row -> result-dict projection (``None`` on aggregates).
        self._project: Optional[Callable] = None
        if projection:
            body = ", ".join(
                f"{name!r}: {self._accessor(pos, column)}"
                for name, pos, column in projection
            )
            self._project = self._make_fn(f"lambda row: {{{body}}}")

        # Aggregation.
        self._group_key: Optional[Callable] = None
        self._aggregate_items: List[Tuple[str, str, Any]] = []
        stream_specs: List[Tuple[str, Optional[str]]] = []
        if self.is_aggregate:
            if self.star:
                raise _sql_error("SELECT * cannot be combined with aggregates")
            group_names = [ref.name for ref in statement.group_by]
            if statement.group_by:
                exprs = [
                    self._accessor(positions[resolve_qualifier(ref)], ref.name)
                    for ref in statement.group_by
                ]
                tuple_body = ", ".join(exprs) + ("," if len(exprs) == 1 else "")
                self._group_key = self._make_fn(f"lambda row: ({tuple_body})")
            for item in statement.items:
                expression = item.expression
                if isinstance(expression, ColumnRef):
                    name = item.alias or expression.name
                    source = self._accessor(
                        positions[resolve_qualifier(expression)], expression.name
                    )
                    extractor = self._make_fn("lambda row: " + source)
                    valid = not statement.group_by or expression.name in group_names
                    self._aggregate_items.append(
                        ("column", name, (extractor, valid, expression.name))
                    )
                    stream_specs.append(("column", source))
                else:
                    name = item.alias or expression.default_name()
                    if expression.argument is None:
                        if expression.function != "COUNT":
                            raise _sql_error(
                                f"{expression.function} requires a column argument"
                            )
                        extractor = None
                        stream_specs.append(("count_star", None))
                    else:
                        source = self._accessor(
                            positions[resolve_qualifier(expression.argument)],
                            expression.argument.name,
                        )
                        extractor = self._make_fn("lambda row: " + source)
                        stream_specs.append((expression.function.lower(), source))
                    self._aggregate_items.append(
                        ("aggregate", name, (expression.function, extractor))
                    )
        # Streaming-fold companions of ``_aggregate_items``: per-item
        # accumulator modes for the finalise pass, the first invalid plain
        # column (raised at execution, matching the interpreter), and the
        # code-generated first-row/fold functions with the accessors inlined
        # — a per-row interpretive dispatch loop loses to the materialised
        # path's builtin passes, inlining wins it back.
        self._stream_modes: List[str] = [mode for mode, _ in stream_specs]
        self._invalid_group_column: Optional[str] = None
        for kind, _name, spec in self._aggregate_items:
            if kind == "column":
                _extractor, valid, column_name = spec
                if not valid and self._invalid_group_column is None:
                    self._invalid_group_column = column_name
        self._new_state_fn, self._fold_fn = self._compile_stream_fold(stream_specs)

        # ORDER BY keys (non-aggregate path; aggregate ordering runs over the
        # small result dicts exactly like the interpreter).
        self._order_key_fns: List[Tuple[Callable, bool]] = []
        directions = set()
        if not self.is_aggregate:
            for order in statement.order_by:
                key_name = self._order_key_name(order, statement, [])
                expr: Optional[str] = None
                if key_name in projected_by_name:
                    pos, column = projected_by_name[key_name]
                    expr = self._accessor(pos, column)
                elif isinstance(order.expression, ColumnRef):
                    try:
                        qualifier = resolve_qualifier(order.expression)
                        expr = self._accessor(positions[qualifier], order.expression.name)
                    except Exception:
                        expr = None  # interpreter: unresolvable key -> NULL key
                if expr is None:
                    key_fn = self._make_fn("lambda row: (True, None)")
                else:
                    key_fn = self._make_fn(f"lambda row: ((_v := {expr}) is None, _v)")
                self._order_key_fns.append((key_fn, order.descending))
                directions.add(order.descending)
        self.topk_eligible = (
            not self.is_aggregate
            and bool(self._order_key_fns)
            and statement.limit is not None
            and len(directions) == 1
        )
        self._topk_key: Optional[Callable] = None
        if self.topk_eligible:
            if len(self._order_key_fns) == 1:
                self._topk_key = self._order_key_fns[0][0]
            else:
                fns = {f"_k{i}": fn for i, (fn, _) in enumerate(self._order_key_fns)}
                body = ", ".join(f"{name}(row)" for name in fns)
                self._topk_key = self._make_fn(f"lambda row: ({body})", dict(fns))

    # ------------------------------------------------------------------ #
    # Validity
    # ------------------------------------------------------------------ #
    def is_valid(self, database) -> bool:
        """Whether the compiled plan still matches the database schema."""
        if database._schema_epoch != self.schema_epoch:
            return False
        for table, version in self.table_versions:
            if table.schema_version != version:
                return False
        return True

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def execute(self, params: Sequence[Any]) -> Tuple[List[Dict[str, Any]], int, int]:
        """Run the plan; returns ``(result_rows, rows_scanned, index_lookups)``."""
        statement = self.statement
        bind = self._bind
        base_table = self.base_table
        scanned = 0
        index_lookups = 0

        # ---- base rows ------------------------------------------------ #
        use_lazy_base = False
        if self.index_conditions:
            # Declared-index pruning, verbatim interpreter semantics (set
            # copies + set.intersection keep the exact candidate order).
            row_id_sets = []
            for column_name, rhs_node in self.index_conditions:
                row_id_sets.append(base_table.lookup_ids(column_name, bind(rhs_node, params)))
                index_lookups += 1
            row_ids = set.intersection(*row_id_sets)
            stored = base_table._rows
            rows: List[Any] = [stored[rid] for rid in row_ids]
            scanned += len(rows)
        elif self.lazy_base_lookups:
            # Physically probe the lazy hash index; charge the scan the
            # interpreter would have paid and keep its row order (ascending
            # row id == insertion order == scan order).
            use_lazy_base = True
            ids: Optional[Set[int]] = None
            for index, rhs_node in self.lazy_base_lookups:
                value = bind(rhs_node, params)
                if value != value:  # NaN probe: a scan's ``==`` matches nothing
                    ids = set()
                    break
                bucket = index.lookup(value)
                ids = bucket if ids is None else (ids & bucket)
            stored = base_table._rows
            rows = [stored[rid] for rid in sorted(ids or ())]
            scanned += len(base_table)
        else:
            rows = list(base_table._rows.values())
            scanned += len(rows)

        # ---- joins (tuple rows) --------------------------------------- #
        if self.joined:
            rows = [(row,) for row in rows]
            for step in self.join_steps:
                out: List[Tuple[Dict[str, Any], ...]] = []
                old_pos = step.old_pos
                old_name = step.old_name
                stored = step.table._rows
                if step.use_index and step.new_name == step.table.primary_key:
                    # PK probe: at most one match, so the interpreter's
                    # one-element set copy (and its iteration order) is
                    # reproduced without allocating it.
                    pk_get = step.table._pk_index.get
                    append = out.append
                    for current in rows:
                        rid = pk_get(current[old_pos][old_name])
                        index_lookups += 1
                        if rid is not None:
                            scanned += 1
                            append(current + (stored[rid],))
                elif step.use_index:
                    lookup = step.table.lookup_ids
                    new_name = step.new_name
                    for current in rows:
                        ids = lookup(new_name, current[old_pos][old_name])
                        index_lookups += 1
                        scanned += len(ids)
                        for rid in ids:
                            out.append(current + (stored[rid],))
                elif step.lazy_index is not None:
                    table_size = len(step.table)
                    lookup = step.lazy_index.lookup
                    for current in rows:
                        value = current[old_pos][old_name]
                        scanned += table_size
                        if value != value:  # NaN: scan semantics match nothing
                            continue
                        ids = lookup(value)
                        if ids:
                            for rid in sorted(ids):
                                out.append(current + (stored[rid],))
                else:
                    # Join column missing from the table: reproduce the
                    # interpreter's ``row.get`` scan literally.
                    new_name = step.new_name
                    join_rows = list(step.table._rows.values())
                    for current in rows:
                        value = current[old_pos][old_name]
                        scanned += len(join_rows)
                        for row in join_rows:
                            if row.get(new_name) == value:
                                out.append(current + (row,))
                rows = out

        # ---- residual filter ------------------------------------------ #
        predicate = self._lazy_predicate if use_lazy_base else self._predicate
        if predicate is not None:
            # Binding covers every residual rhs node (missing-parameter
            # errors surface exactly like the interpreter's, even for
            # conditions the lazy index lookups already consumed).
            bound = tuple(bind(node, params) for node in self._residual_nodes)
            filtered = [row for row in rows if predicate(row, bound)]
        else:
            # No residual predicate left; any node-bearing equalities were
            # consumed — and therefore bound — by the lazy base lookups.
            filtered = rows

        # ---- aggregate pipeline --------------------------------------- #
        if self.is_aggregate:
            result_rows = self._aggregate_rows(filtered)
            for order in reversed(statement.order_by):
                key_name = self._order_key_name(order, statement, result_rows)
                result_rows.sort(
                    key=lambda row: (row.get(key_name) is None, row.get(key_name)),
                    reverse=order.descending,
                )
            if statement.limit is not None:
                result_rows = result_rows[: statement.limit]
            return result_rows, scanned, index_lookups

        # ---- ORDER BY / LIMIT ----------------------------------------- #
        if self._topk_key is not None:
            select = heapq.nlargest if self._order_key_fns[0][1] else heapq.nsmallest
            selected = select(statement.limit, filtered, key=self._topk_key)
        elif self._order_key_fns:
            # Interpreter-faithful multi-pass stable sort (handles mixed
            # ASC/DESC).
            selected = list(filtered)
            for key_fn, descending in reversed(self._order_key_fns):
                selected.sort(key=key_fn, reverse=descending)
            if statement.limit is not None:
                selected = selected[: statement.limit]
        elif statement.limit is not None:
            selected = filtered[: statement.limit]
        else:
            selected = filtered

        # ---- projection (only surviving rows) ------------------------- #
        project = self._project
        return [project(row) for row in selected], scanned, index_lookups

    # ------------------------------------------------------------------ #
    def _aggregate_rows(self, filtered: List[Any]) -> List[Dict[str, Any]]:
        """GROUP BY + aggregate evaluation over the filtered rows.

        Streams by default (:data:`STREAMING_AGGREGATES`): one fold pass
        maintaining per-group accumulators instead of materialising a member
        list per group.  Result rows, their order (first-seen group order)
        and every error are identical to the materialised evaluation, which
        is preserved for A/B benchmarking.
        """
        if STREAMING_AGGREGATES:
            return self._aggregate_rows_streaming(filtered)
        return self._aggregate_rows_materialized(filtered)

    def _aggregate_rows_streaming(self, filtered: List[Any]) -> List[Dict[str, Any]]:
        group_key = self._group_key
        # The materialised path raises for a non-grouped plain column while
        # building the first group's result row — i.e. whenever at least one
        # group exists (always, without GROUP BY: the implicit ``()`` group).
        if self._invalid_group_column is not None and (group_key is None or filtered):
            raise _sql_error(
                f"column {self._invalid_group_column!r} must appear in GROUP BY"
            )
        new_state = self._new_state_fn
        fold = self._fold_fn
        states: Dict[Tuple, List[Any]] = {}
        if group_key is not None:
            get = states.get
            for row in filtered:
                key = group_key(row)
                state = get(key)
                if state is None:
                    states[key] = new_state(row)
                else:
                    fold(state, row)
        else:
            state = None
            for row in filtered:
                if state is None:
                    state = new_state(row)
                else:
                    fold(state, row)
            states[()] = state if state is not None else self._empty_group_state()

        result: List[Dict[str, Any]] = []
        names = [name for _, name, _ in self._aggregate_items]
        for state in states.values():
            out: Dict[str, Any] = {}
            for index, mode in enumerate(self._stream_modes):
                value = state[index]
                if mode == "sum":
                    out[names[index]] = value[0] if value[1] else None
                elif mode == "avg":
                    out[names[index]] = value[0] / value[1] if value[1] else None
                else:  # column / count_star / count / min / max
                    out[names[index]] = value
            result.append(out)
        return result

    @staticmethod
    def _compile_stream_fold(
        specs: List[Tuple[str, Optional[str]]]
    ) -> Tuple[Callable, Callable]:
        """Code-generate the streaming accumulators for one statement.

        ``_new_state`` builds a group's accumulator list from its first row,
        ``_fold`` folds one more member row in place.  Each item's column
        accessor is inlined into the generated source (the same technique as
        the compiled projection/filter lambdas), so the per-row cost is a
        single function call rather than a dispatch loop over item modes.
        """
        new_lines = ["def _new_state(row):", "    state = []"]
        fold_lines = ["def _fold(state, row):"]
        for index, (mode, source) in enumerate(specs):
            if mode == "column":
                # Captured from the first row only; never folded again.
                new_lines.append(f"    state.append({source})")
            elif mode == "count_star":
                new_lines.append("    state.append(1)")
                fold_lines.append(f"    state[{index}] += 1")
            elif mode == "count":
                new_lines.append(f"    state.append(1 if {source} is not None else 0)")
                fold_lines.append(f"    if {source} is not None:")
                fold_lines.append(f"        state[{index}] += 1")
            elif mode in ("sum", "avg"):
                # ``0 + value`` reproduces ``sum([value])`` exactly (the
                # int-0 start matters for mixed numeric types).
                new_lines.append(f"    v{index} = {source}")
                new_lines.append(
                    f"    state.append([0 + v{index}, 1] if v{index} is not None"
                    " else [0, 0])"
                )
                fold_lines.append(f"    v{index} = {source}")
                fold_lines.append(f"    if v{index} is not None:")
                fold_lines.append(f"        s{index} = state[{index}]")
                fold_lines.append(f"        s{index}[0] = s{index}[0] + v{index}")
                fold_lines.append(f"        s{index}[1] += 1")
            elif mode in ("min", "max"):
                # ``value < current`` mirrors ``min()``'s comparison order.
                operator = "<" if mode == "min" else ">"
                new_lines.append(f"    state.append({source})")
                fold_lines.append(f"    v{index} = {source}")
                fold_lines.append(f"    if v{index} is not None:")
                fold_lines.append(f"        c{index} = state[{index}]")
                fold_lines.append(
                    f"        if c{index} is None or v{index} {operator} c{index}:"
                )
                fold_lines.append(f"            state[{index}] = v{index}")
            else:  # pragma: no cover - parser admits only the modes above
                raise _sql_error(f"unsupported aggregate {mode.upper()!r}")
        new_lines.append("    return state")
        if len(fold_lines) == 1:
            fold_lines.append("    pass")
        namespace: Dict[str, Any] = {}
        exec("\n".join(new_lines + fold_lines), namespace)
        return namespace["_new_state"], namespace["_fold"]

    def _empty_group_state(self) -> List[Any]:
        """Accumulator slots of the implicit empty group (no GROUP BY)."""
        state: List[Any] = []
        for mode in self._stream_modes:
            if mode in ("count_star", "count"):
                state.append(0)
            elif mode in ("sum", "avg"):
                state.append([0, 0])
            else:  # column / min / max over no rows
                state.append(None)
        return state

    def _aggregate_rows_materialized(self, filtered: List[Any]) -> List[Dict[str, Any]]:
        group_key = self._group_key
        groups: Dict[Tuple, List[Any]] = {}
        if group_key is not None:
            setdefault = groups.setdefault
            for row in filtered:
                setdefault(group_key(row), []).append(row)
        else:
            # No GROUP BY: one global group (the interpreter's implicit
            # ``groups[()] = []`` for the empty case included).
            groups[()] = filtered

        result: List[Dict[str, Any]] = []
        for members in groups.values():
            out: Dict[str, Any] = {}
            for kind, name, spec in self._aggregate_items:
                if kind == "column":
                    extractor, valid, column_name = spec
                    if not valid:
                        raise _sql_error(
                            f"column {column_name!r} must appear in GROUP BY"
                        )
                    out[name] = extractor(members[0]) if members else None
                else:
                    function, extractor = spec
                    out[name] = self._evaluate_aggregate(function, extractor, members)
            result.append(out)
        return result

    def _evaluate_aggregate(
        self, function: str, extractor: Optional[Callable], members: List[Any]
    ) -> Any:
        if extractor is None:  # COUNT(*)
            return len(members)
        if function == "COUNT":
            return sum(1 for member in members if extractor(member) is not None)
        values = [
            value for value in (extractor(member) for member in members) if value is not None
        ]
        if not values:
            return None
        if function == "SUM":
            return sum(values)
        if function == "AVG":
            return sum(values) / len(values)
        if function == "MIN":
            return min(values)
        if function == "MAX":
            return max(values)
        raise _sql_error(f"unsupported aggregate {function!r}")  # pragma: no cover


def compile_select(database, statement: SelectStatement) -> CompiledSelect:
    """Compile ``statement`` against ``database``'s current schema."""
    return CompiledSelect(database, statement)
