"""Database engine: DDL, query execution and a latency cost model.

The executor interprets the AST produced by :mod:`repro.db.sql` against the
in-memory tables.  Besides result rows it reports a *simulated execution
cost* derived from the work performed (rows scanned, index hits, rows
returned); the JDBC layer hands that cost to the servlet container, which
adds it to the request's simulated service time — this is how database load
shows up in TPC-W response times without any real I/O.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.db.sql import (
    Aggregate,
    ColumnRef,
    Condition,
    DeleteStatement,
    InsertStatement,
    Literal,
    Parameter,
    SelectStatement,
    SqlSyntaxError,
    Statement,
    UpdateStatement,
    parse_sql,
)
from repro.db.table import Column, Table


class SqlExecutionError(RuntimeError):
    """Raised when a parsed statement cannot be executed (unknown table, ...)."""


@dataclass
class QueryStats:
    """Cumulative execution statistics for one :class:`Database`."""

    queries_executed: int = 0
    rows_scanned: int = 0
    rows_returned: int = 0
    index_lookups: int = 0
    total_cost_seconds: float = 0.0
    by_statement_kind: Dict[str, int] = field(default_factory=dict)

    def record(self, kind: str, scanned: int, returned: int, cost: float, index_lookups: int) -> None:
        """Fold one query's counters into the totals."""
        self.queries_executed += 1
        self.rows_scanned += scanned
        self.rows_returned += returned
        self.index_lookups += index_lookups
        self.total_cost_seconds += cost
        self.by_statement_kind[kind] = self.by_statement_kind.get(kind, 0) + 1


@dataclass
class QueryResult:
    """The outcome of executing one statement."""

    rows: List[Dict[str, Any]]
    rowcount: int
    cost_seconds: float
    rows_scanned: int


@dataclass
class CostModel:
    """Simulated latency model for query execution.

    The constants are calibrated so a primary-key lookup costs ~0.5 ms and a
    full scan of a 10 k-row table costs ~10 ms — the right order of magnitude
    for the paper's era of hardware (Table I) and enough to make the database
    a visible part of TPC-W response time.
    """

    base_seconds: float = 4e-4
    per_row_scanned: float = 1e-6
    per_row_returned: float = 5e-6
    per_index_lookup: float = 5e-5
    per_insert: float = 3e-4

    def cost(self, scanned: int, returned: int, index_lookups: int, inserts: int = 0) -> float:
        """Total simulated seconds for one statement."""
        return (
            self.base_seconds
            + self.per_row_scanned * scanned
            + self.per_row_returned * returned
            + self.per_index_lookup * index_lookups
            + self.per_insert * inserts
        )


class Database:
    """An in-memory SQL database.

    Parameters
    ----------
    name:
        Database name (informational).
    cost_model:
        Latency model used to compute simulated per-query cost.
    """

    #: Plan-cache size guard (the servlet repertoire is a few dozen distinct
    #: statements; overflow means ad-hoc statement churn, so just start over).
    _PLAN_CACHE_LIMIT = 512

    def __init__(self, name: str = "tpcw", cost_model: Optional[CostModel] = None) -> None:
        self.name = name
        self.cost_model = cost_model or CostModel()
        self._tables: Dict[str, Table] = {}
        self.stats = QueryStats()
        #: Bumped on DDL (create/drop table); compiled plans validate against
        #: it (plus each referenced table's ``schema_version``).
        self._schema_epoch = 0
        #: ``id(statement) -> (statement, CompiledSelect)``.  The statement is
        #: pinned so a recycled ``id`` can never alias a different statement;
        #: keyed like the ``parse_sql`` cache, one plan per shared AST.
        self._plan_cache: Dict[int, tuple] = {}

    # ------------------------------------------------------------------ #
    # DDL
    # ------------------------------------------------------------------ #
    def create_table(self, name: str, columns: List[Column]) -> Table:
        """Create a table; raises if the name is taken."""
        if name in self._tables:
            raise SqlExecutionError(f"table {name!r} already exists")
        table = Table(name, columns)
        self._tables[name] = table
        self._schema_epoch += 1
        self._plan_cache.clear()
        return table

    def drop_table(self, name: str) -> None:
        """Drop a table; raises if missing."""
        if name not in self._tables:
            raise SqlExecutionError(f"no such table: {name!r}")
        del self._tables[name]
        self._schema_epoch += 1
        self._plan_cache.clear()

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        table = self._tables.get(name)
        if table is None:
            raise SqlExecutionError(f"no such table: {name!r}")
        return table

    def table_names(self) -> List[str]:
        """Sorted table names."""
        return sorted(self._tables)

    def has_table(self, name: str) -> bool:
        """Whether the named table exists."""
        return name in self._tables

    # ------------------------------------------------------------------ #
    # Execution entry point
    # ------------------------------------------------------------------ #
    def execute(self, sql: "str | Statement", params: Sequence[Any] = ()) -> QueryResult:
        """Parse (if needed) and execute one statement."""
        statement = parse_sql(sql) if isinstance(sql, str) else sql
        if isinstance(statement, SelectStatement):
            return self._execute_select(statement, params)
        if isinstance(statement, InsertStatement):
            return self._execute_insert(statement, params)
        if isinstance(statement, UpdateStatement):
            return self._execute_update(statement, params)
        if isinstance(statement, DeleteStatement):
            return self._execute_delete(statement, params)
        raise SqlExecutionError(f"unsupported statement type: {type(statement).__name__}")

    # ------------------------------------------------------------------ #
    # Helpers shared by executors
    # ------------------------------------------------------------------ #
    @staticmethod
    def _bind(value: Union[Literal, Parameter, ColumnRef], params: Sequence[Any]) -> Any:
        if isinstance(value, Literal):
            return value.value
        if isinstance(value, Parameter):
            if value.index >= len(params):
                raise SqlExecutionError(
                    f"statement expects at least {value.index + 1} parameters, got {len(params)}"
                )
            return params[value.index]
        raise SqlExecutionError("column references are not valid here")

    @staticmethod
    def _like_match(value: Any, pattern: Any) -> bool:
        if value is None or pattern is None:
            return False
        import fnmatch

        translated = str(pattern).replace("%", "*").replace("_", "?")
        return fnmatch.fnmatchcase(str(value), translated)

    @classmethod
    def _compare(cls, op: str, left: Any, right: Any) -> bool:
        if op == "LIKE":
            return cls._like_match(left, right)
        if left is None or right is None:
            # SQL three-valued logic collapsed to: NULL compares equal only
            # under '=' against NULL, everything else is false.
            if op == "=":
                return left is None and right is None
            if op == "!=":
                return (left is None) != (right is None)
            return False
        if op == "=":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right
        if op == ">":
            return left > right
        if op == "<=":
            return left <= right
        if op == ">=":
            return left >= right
        raise SqlExecutionError(f"unsupported operator {op!r}")

    # ------------------------------------------------------------------ #
    # SELECT
    # ------------------------------------------------------------------ #
    #: Legacy knob kept for the preserved seed-reference subclass and older
    #: tests: PR 3's hand-rolled single-table fast path dispatched on it.
    #: The compiled planner now covers every SELECT shape through one path
    #: (with identical rows and accounting — the fast-path equivalence tests
    #: assert it), so the flag no longer selects anything.
    select_fastpath_enabled = True

    def _execute_select(self, statement: SelectStatement, params: Sequence[Any]) -> QueryResult:
        return self._execute_select_generic(statement, params)

    def _execute_select_generic(
        self, statement: SelectStatement, params: Sequence[Any]
    ) -> QueryResult:
        """Execute a SELECT through the compiled-plan cache.

        Each distinct statement AST is compiled once (:mod:`repro.db.planner`)
        into a pipeline of specialised operators — declared-index lookups,
        lazy hash-index joins, tuple intermediate rows and a top-k ORDER
        BY + LIMIT selector — and re-run directly on subsequent executions.
        Plans are invalidated by DDL (``_schema_epoch``) and per-table schema
        changes (``Table.schema_version``); data mutations never invalidate
        because the hash indexes are maintained incrementally.  Rows, row
        order and the scanned/lookup accounting are bit-identical to the
        interpreting executor this replaced (see the planner's equivalence
        suite).
        """
        entry = self._plan_cache.get(id(statement))
        if entry is not None and entry[0] is statement and entry[1].is_valid(self):
            plan = entry[1]
        else:
            from repro.db.planner import compile_select

            plan = compile_select(self, statement)
            if len(self._plan_cache) >= self._PLAN_CACHE_LIMIT:
                self._plan_cache.clear()
            self._plan_cache[id(statement)] = (statement, plan)
        result_rows, scanned, index_lookups = plan.execute(params)
        cost = self.cost_model.cost(scanned, len(result_rows), index_lookups)
        self.stats.record("SELECT", scanned, len(result_rows), cost, index_lookups)
        return QueryResult(
            rows=result_rows, rowcount=len(result_rows), cost_seconds=cost, rows_scanned=scanned
        )

    @staticmethod
    def _order_key_name(order, statement: SelectStatement, result_rows: List[Dict[str, Any]]) -> str:
        if isinstance(order.expression, str):
            return order.expression
        ref: ColumnRef = order.expression
        # Prefer a select-list alias matching the bare column name.
        for item in statement.items:
            if item.alias and isinstance(item.expression, ColumnRef) and item.expression.name == ref.name:
                return item.alias
            if item.alias == ref.name:
                return item.alias
        return ref.name

    def _resolve(self, ref: ColumnRef, exec_row: Dict[str, Dict[str, Any]]) -> Any:
        if ref.table is not None:
            row = exec_row.get(ref.table)
            if row is None:
                raise SqlExecutionError(f"unknown table qualifier {ref.table!r}")
            if ref.name not in row:
                raise SqlExecutionError(f"unknown column {ref}")
            return row[ref.name]
        matches = [row for row in exec_row.values() if ref.name in row]
        if not matches:
            raise SqlExecutionError(f"unknown column {ref.name!r}")
        return matches[0][ref.name]

    def _project_row(
        self, statement: SelectStatement, exec_row: Dict[str, Dict[str, Any]]
    ) -> Dict[str, Any]:
        if statement.star:
            merged: Dict[str, Any] = {}
            for row in exec_row.values():
                merged.update(row)
            return merged
        out: Dict[str, Any] = {}
        for item in statement.items:
            if isinstance(item.expression, Aggregate):  # pragma: no cover - guarded by caller
                raise SqlExecutionError("aggregate outside aggregation context")
            name = item.alias or item.expression.name
            out[name] = self._resolve(item.expression, exec_row)
        return out

    def _project_aggregates(
        self, statement: SelectStatement, exec_rows: List[Dict[str, Dict[str, Any]]]
    ) -> List[Dict[str, Any]]:
        if statement.star:
            raise SqlExecutionError("SELECT * cannot be combined with aggregates")

        def group_key(exec_row: Dict[str, Dict[str, Any]]) -> Tuple:
            return tuple(self._resolve(ref, exec_row) for ref in statement.group_by)

        groups: Dict[Tuple, List[Dict[str, Dict[str, Any]]]] = {}
        for exec_row in exec_rows:
            groups.setdefault(group_key(exec_row), []).append(exec_row)
        if not statement.group_by and not groups:
            groups[()] = []

        result: List[Dict[str, Any]] = []
        for key, members in groups.items():
            out: Dict[str, Any] = {}
            for item in statement.items:
                expression = item.expression
                if isinstance(expression, ColumnRef):
                    name = item.alias or expression.name
                    out[name] = self._resolve(expression, members[0]) if members else None
                    # Plain columns in an aggregate query must be group keys.
                    if statement.group_by and expression.name not in [
                        ref.name for ref in statement.group_by
                    ]:
                        raise SqlExecutionError(
                            f"column {expression.name!r} must appear in GROUP BY"
                        )
                else:
                    name = item.alias or expression.default_name()
                    out[name] = self._evaluate_aggregate(expression, members)
            result.append(out)
        return result

    def _evaluate_aggregate(
        self, aggregate: Aggregate, members: List[Dict[str, Dict[str, Any]]]
    ) -> Any:
        if aggregate.function == "COUNT":
            if aggregate.argument is None:
                return len(members)
            return sum(
                1 for m in members if self._resolve(aggregate.argument, m) is not None
            )
        if aggregate.argument is None:
            raise SqlExecutionError(f"{aggregate.function} requires a column argument")
        values = [
            value
            for value in (self._resolve(aggregate.argument, m) for m in members)
            if value is not None
        ]
        if not values:
            return None
        if aggregate.function == "SUM":
            return sum(values)
        if aggregate.function == "AVG":
            return sum(values) / len(values)
        if aggregate.function == "MIN":
            return min(values)
        if aggregate.function == "MAX":
            return max(values)
        raise SqlExecutionError(f"unsupported aggregate {aggregate.function!r}")

    # ------------------------------------------------------------------ #
    # INSERT / UPDATE / DELETE
    # ------------------------------------------------------------------ #
    def _execute_insert(self, statement: InsertStatement, params: Sequence[Any]) -> QueryResult:
        table = self.table(statement.table)
        values = {
            column: self._bind(value, params)
            for column, value in zip(statement.columns, statement.values)
        }
        table.insert(values)
        cost = self.cost_model.cost(0, 0, 0, inserts=1)
        self.stats.record("INSERT", 0, 0, cost, 0)
        return QueryResult(rows=[], rowcount=1, cost_seconds=cost, rows_scanned=0)

    def _matching_row_ids(
        self, table: Table, where: List[Condition], params: Sequence[Any]
    ) -> Tuple[List[int], int, int]:
        """Row ids matching a WHERE conjunction, with (scanned, index_lookups)."""
        scanned = 0
        index_lookups = 0
        candidate_ids: Optional[set] = None
        residual: List[Condition] = []
        for condition in where:
            if (
                condition.op == "="
                and not isinstance(condition.rhs, ColumnRef)
                and table.has_column(condition.lhs.name)
                and table.has_index(condition.lhs.name)
            ):
                ids = table.lookup_ids(condition.lhs.name, self._bind(condition.rhs, params))
                index_lookups += 1
                candidate_ids = ids if candidate_ids is None else (candidate_ids & ids)
            else:
                residual.append(condition)
        if candidate_ids is None:
            candidate_ids = {row_id for row_id, _ in table.rows_with_ids()}
        matched: List[int] = []
        for row_id in candidate_ids:
            row = table.row_by_id(row_id)
            scanned += 1
            keep = True
            for condition in residual:
                left = row.get(condition.lhs.name)
                right = (
                    row.get(condition.rhs.name)
                    if isinstance(condition.rhs, ColumnRef)
                    else self._bind(condition.rhs, params)
                )
                if not self._compare(condition.op, left, right):
                    keep = False
                    break
            if keep:
                matched.append(row_id)
        return matched, scanned, index_lookups

    def _execute_update(self, statement: UpdateStatement, params: Sequence[Any]) -> QueryResult:
        table = self.table(statement.table)
        row_ids, scanned, index_lookups = self._matching_row_ids(table, statement.where, params)
        changes = {
            column: self._bind(value, params) for column, value in statement.assignments
        }
        updated = table.update_rows(row_ids, changes)
        cost = self.cost_model.cost(scanned, 0, index_lookups)
        self.stats.record("UPDATE", scanned, 0, cost, index_lookups)
        return QueryResult(rows=[], rowcount=updated, cost_seconds=cost, rows_scanned=scanned)

    def _execute_delete(self, statement: DeleteStatement, params: Sequence[Any]) -> QueryResult:
        table = self.table(statement.table)
        row_ids, scanned, index_lookups = self._matching_row_ids(table, statement.where, params)
        deleted = table.delete_rows(row_ids)
        cost = self.cost_model.cost(scanned, 0, index_lookups)
        self.stats.record("DELETE", scanned, 0, cost, index_lookups)
        return QueryResult(rows=[], rowcount=deleted, cost_seconds=cost, rows_scanned=scanned)
