"""Tables, columns and secondary indexes."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Set


class ColumnType(enum.Enum):
    """Supported column types (a pragmatic subset of MySQL's)."""

    INTEGER = "INTEGER"
    FLOAT = "FLOAT"
    VARCHAR = "VARCHAR"
    DATE = "DATE"      # stored as float (simulated epoch seconds)
    BOOLEAN = "BOOLEAN"

    def validate(self, value: Any) -> bool:
        """Whether ``value`` is acceptable for this column type (NULL always is)."""
        if value is None:
            return True
        if self is ColumnType.INTEGER:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is ColumnType.FLOAT:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self is ColumnType.VARCHAR:
            return isinstance(value, str)
        if self is ColumnType.DATE:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self is ColumnType.BOOLEAN:
            return isinstance(value, bool)
        return False  # pragma: no cover - exhaustive enum


@dataclass(frozen=True)
class Column:
    """A table column definition."""

    name: str
    type: ColumnType
    primary_key: bool = False
    nullable: bool = True


class UniqueViolationError(ValueError):
    """Raised when inserting a duplicate primary-key value."""


class _SecondaryIndex:
    """Equality index: column value -> set of row ids."""

    def __init__(self, column: str) -> None:
        self.column = column
        self._buckets: Dict[Any, Set[int]] = {}

    def add(self, value: Any, row_id: int) -> None:
        self._buckets.setdefault(value, set()).add(row_id)

    def remove(self, value: Any, row_id: int) -> None:
        bucket = self._buckets.get(value)
        if bucket is not None:
            bucket.discard(row_id)
            if not bucket:
                del self._buckets[value]

    def lookup(self, value: Any) -> Set[int]:
        return set(self._buckets.get(value, set()))

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())


class Table:
    """An in-memory table with a primary key and optional secondary indexes.

    Rows are dictionaries keyed by column name; each row gets an internal
    integer ``row id`` used by indexes.  All mutation goes through
    :meth:`insert`, :meth:`update_rows` and :meth:`delete_rows` so that index
    maintenance and validation stay in one place.
    """

    def __init__(self, name: str, columns: List[Column]) -> None:
        if not columns:
            raise ValueError(f"table {name!r} must have at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names in table {name!r}: {names}")
        primary = [c for c in columns if c.primary_key]
        if len(primary) > 1:
            raise ValueError(f"table {name!r} has multiple primary key columns")
        self.name = name
        self.columns = list(columns)
        self._columns_by_name = {c.name: c for c in columns}
        self.primary_key: Optional[str] = primary[0].name if primary else None
        self._rows: Dict[int, Dict[str, Any]] = {}
        self._next_row_id = 1
        self._pk_index: Dict[Any, int] = {}
        self._secondary: Dict[str, _SecondaryIndex] = {}
        #: Planner-built hash indexes.  Unlike :attr:`_secondary` they are an
        #: invisible physical acceleration: :meth:`has_index` does not report
        #: them, so the engine's simulated cost model still charges the
        #: declared-index plan (see ``repro.db.planner``).
        self._lazy: Dict[str, _SecondaryIndex] = {}
        #: Bumped whenever the *schema* changes (currently: index creation);
        #: cached query plans validate against it.
        self.schema_version = 0

    # ------------------------------------------------------------------ #
    # Schema
    # ------------------------------------------------------------------ #
    def column(self, name: str) -> Column:
        """The column definition for ``name``."""
        column = self._columns_by_name.get(name)
        if column is None:
            raise KeyError(f"table {self.name!r} has no column {name!r}")
        return column

    def has_column(self, name: str) -> bool:
        """Whether the table defines a column named ``name``."""
        return name in self._columns_by_name

    def column_names(self) -> List[str]:
        """Column names in declaration order."""
        return [c.name for c in self.columns]

    def create_index(self, column_name: str) -> None:
        """Create an equality index over ``column_name`` (idempotent)."""
        self.column(column_name)
        if column_name in self._secondary:
            return
        # A previously built lazy index is promoted instead of rebuilt.
        index = self._lazy.pop(column_name, None)
        if index is None:
            index = _SecondaryIndex(column_name)
            for row_id, row in self._rows.items():
                index.add(row.get(column_name), row_id)
        self._secondary[column_name] = index
        self.schema_version += 1

    def has_index(self, column_name: str) -> bool:
        """Whether a *declared* equality index exists on the column.

        Planner-built lazy indexes are deliberately excluded: they are a
        physical optimisation that must not change the simulated cost model.
        """
        return column_name in self._secondary or column_name == self.primary_key

    def has_hash_index(self, column_name: str) -> bool:
        """Whether any hash index (declared or lazy) covers the column."""
        return column_name in self._lazy or self.has_index(column_name)

    def ensure_hash_index(self, column_name: str) -> _SecondaryIndex:
        """Get-or-build a lazily maintained hash index over ``column_name``.

        Built once (O(rows)) on first demand by the query planner, then kept
        up to date by the normal mutation paths like a declared index.  The
        column must exist; declared indexes are returned as-is.
        """
        index = self._secondary.get(column_name)
        if index is not None:
            return index
        index = self._lazy.get(column_name)
        if index is None:
            self.column(column_name)
            index = _SecondaryIndex(column_name)
            for row_id, row in self._rows.items():
                index.add(row.get(column_name), row_id)
            self._lazy[column_name] = index
        return index

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def _validate_row(self, values: Dict[str, Any]) -> Dict[str, Any]:
        row: Dict[str, Any] = {}
        for column in self.columns:
            value = values.get(column.name)
            if value is None and not column.nullable and not column.primary_key:
                raise ValueError(
                    f"column {column.name!r} of table {self.name!r} is not nullable"
                )
            if not column.type.validate(value):
                raise TypeError(
                    f"value {value!r} is not valid for column {column.name!r} "
                    f"({column.type.value}) of table {self.name!r}"
                )
            row[column.name] = value
        unknown = set(values) - set(self._columns_by_name)
        if unknown:
            raise KeyError(f"unknown columns {sorted(unknown)} for table {self.name!r}")
        return row

    def insert(self, values: Dict[str, Any]) -> int:
        """Insert a row; returns the internal row id."""
        row = self._validate_row(values)
        if self.primary_key is not None:
            pk_value = row.get(self.primary_key)
            if pk_value is None:
                raise ValueError(f"primary key {self.primary_key!r} must not be NULL")
            if pk_value in self._pk_index:
                raise UniqueViolationError(
                    f"duplicate primary key {pk_value!r} in table {self.name!r}"
                )
        row_id = self._next_row_id
        self._next_row_id += 1
        self._rows[row_id] = row
        if self.primary_key is not None:
            self._pk_index[row[self.primary_key]] = row_id
        for column_name, index in self._secondary.items():
            index.add(row.get(column_name), row_id)
        for column_name, index in self._lazy.items():
            index.add(row.get(column_name), row_id)
        return row_id

    def update_rows(self, row_ids: Iterable[int], changes: Dict[str, Any]) -> int:
        """Apply ``changes`` to the given rows; returns the number updated."""
        for column_name, value in changes.items():
            column = self.column(column_name)
            if not column.type.validate(value):
                raise TypeError(
                    f"value {value!r} is not valid for column {column_name!r} "
                    f"({column.type.value})"
                )
            if column.primary_key:
                raise ValueError("updating primary key columns is not supported")
        count = 0
        for row_id in row_ids:
            row = self._rows.get(row_id)
            if row is None:
                continue
            for column_name, value in changes.items():
                for indexes in (self._secondary, self._lazy):
                    index = indexes.get(column_name)
                    if index is not None:
                        index.remove(row.get(column_name), row_id)
                        index.add(value, row_id)
                row[column_name] = value
            count += 1
        return count

    def delete_rows(self, row_ids: Iterable[int]) -> int:
        """Delete the given rows; returns the number deleted."""
        count = 0
        for row_id in list(row_ids):
            row = self._rows.pop(row_id, None)
            if row is None:
                continue
            if self.primary_key is not None:
                self._pk_index.pop(row.get(self.primary_key), None)
            for column_name, index in self._secondary.items():
                index.remove(row.get(column_name), row_id)
            for column_name, index in self._lazy.items():
                index.remove(row.get(column_name), row_id)
            count += 1
        return count

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._rows)

    def rows(self) -> Iterator[Dict[str, Any]]:
        """Iterate over row dicts (copies are not made; do not mutate)."""
        return iter(self._rows.values())

    def rows_with_ids(self) -> Iterator[tuple]:
        """Iterate over ``(row_id, row)`` pairs."""
        return iter(self._rows.items())

    def get_by_pk(self, value: Any) -> Optional[Dict[str, Any]]:
        """The row whose primary key equals ``value``, or ``None``."""
        if self.primary_key is None:
            raise ValueError(f"table {self.name!r} has no primary key")
        row_id = self._pk_index.get(value)
        if row_id is None:
            return None
        return self._rows[row_id]

    def lookup_ids(self, column_name: str, value: Any) -> Set[int]:
        """Row ids whose ``column_name`` equals ``value`` (uses indexes when possible)."""
        if column_name == self.primary_key:
            row_id = self._pk_index.get(value)
            return {row_id} if row_id is not None else set()
        index = self._secondary.get(column_name)
        if index is not None:
            return index.lookup(value)
        return {
            row_id for row_id, row in self._rows.items() if row.get(column_name) == value
        }

    def row_by_id(self, row_id: int) -> Dict[str, Any]:
        """The row stored under the internal ``row_id``."""
        return self._rows[row_id]
