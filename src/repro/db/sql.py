"""SQL subset parser.

The TPC-W servlets speak SQL to the data tier, so the engine accepts a
pragmatic subset of MySQL's dialect — enough for every query TPC-W issues:

* ``SELECT`` with column lists or ``*``, aggregates (``COUNT(*)``, ``SUM``,
  ``AVG``, ``MIN``, ``MAX``), ``JOIN ... ON a.x = b.y`` chains, ``WHERE``
  conjunctions, ``GROUP BY``, ``ORDER BY ... [ASC|DESC]`` and ``LIMIT``.
* ``INSERT INTO t (cols) VALUES (...)``
* ``UPDATE t SET col = expr [, ...] [WHERE ...]``
* ``DELETE FROM t [WHERE ...]``

Literals are integers, floats, single-quoted strings, ``NULL``, ``TRUE`` /
``FALSE``; ``?`` marks a positional parameter bound at execution time.

The parser produces small AST dataclasses consumed by
:mod:`repro.db.engine`; it performs no name resolution (the executor does).
"""

from __future__ import annotations

import functools
import re
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple, Union


class SqlSyntaxError(ValueError):
    """Raised when a statement cannot be parsed."""


# --------------------------------------------------------------------------- #
# AST
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ColumnRef:
    """A possibly table-qualified column reference."""

    name: str
    table: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Literal:
    """A literal value."""

    value: Any


@dataclass(frozen=True)
class Parameter:
    """A positional ``?`` parameter; ``index`` is its 0-based position."""

    index: int


@dataclass(frozen=True)
class Aggregate:
    """An aggregate call such as ``SUM(qty)`` or ``COUNT(*)``."""

    function: str                      # COUNT, SUM, AVG, MIN, MAX
    argument: Optional[ColumnRef]      # None means '*'
    alias: Optional[str] = None

    def default_name(self) -> str:
        arg = str(self.argument) if self.argument is not None else "*"
        return f"{self.function}({arg})"


@dataclass(frozen=True)
class SelectItem:
    """One item of the select list."""

    expression: Union[ColumnRef, Aggregate]
    alias: Optional[str] = None


@dataclass(frozen=True)
class Condition:
    """A simple comparison ``lhs op rhs``."""

    lhs: ColumnRef
    op: str                            # =, !=, <, >, <=, >=, LIKE
    rhs: Union[Literal, Parameter, ColumnRef]


@dataclass(frozen=True)
class Join:
    """An inner join clause."""

    table: str
    alias: Optional[str]
    left: ColumnRef
    right: ColumnRef


@dataclass(frozen=True)
class OrderBy:
    """An ORDER BY key."""

    expression: Union[ColumnRef, str]  # str refers to a select-list alias
    descending: bool = False


@dataclass
class SelectStatement:
    """Parsed SELECT statement."""

    items: List[SelectItem]
    star: bool
    table: str
    alias: Optional[str]
    joins: List[Join] = field(default_factory=list)
    where: List[Condition] = field(default_factory=list)
    group_by: List[ColumnRef] = field(default_factory=list)
    order_by: List[OrderBy] = field(default_factory=list)
    limit: Optional[int] = None
    #: Parse-time shape hint: whether the select list contains an aggregate.
    #: The executor's fast-path dispatch consults it on every execution, so
    #: the parser computes it once; ``None`` (hand-built statements) falls
    #: back to a per-call scan.
    has_aggregates: Optional[bool] = field(default=None, compare=False)


@dataclass
class InsertStatement:
    """Parsed INSERT statement."""

    table: str
    columns: List[str]
    values: List[Union[Literal, Parameter]]


@dataclass
class UpdateStatement:
    """Parsed UPDATE statement."""

    table: str
    assignments: List[Tuple[str, Union[Literal, Parameter]]]
    where: List[Condition] = field(default_factory=list)


@dataclass
class DeleteStatement:
    """Parsed DELETE statement."""

    table: str
    where: List[Condition] = field(default_factory=list)


Statement = Union[SelectStatement, InsertStatement, UpdateStatement, DeleteStatement]


# --------------------------------------------------------------------------- #
# Tokenizer
# --------------------------------------------------------------------------- #
_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<string>'(?:[^']|'')*')
      | (?P<float>\d+\.\d+)
      | (?P<int>\d+)
      | (?P<op><>|<=|>=|!=|=|<|>)
      | (?P<punct>[(),*?])
      | (?P<ident>[A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)?)
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "SELECT", "FROM", "WHERE", "AND", "JOIN", "INNER", "ON", "GROUP", "ORDER",
    "BY", "ASC", "DESC", "LIMIT", "INSERT", "INTO", "VALUES", "UPDATE", "SET",
    "DELETE", "AS", "LIKE", "NULL", "TRUE", "FALSE", "COUNT", "SUM", "AVG",
    "MIN", "MAX",
}


@dataclass
class _Token:
    kind: str      # STRING, FLOAT, INT, OP, PUNCT, IDENT, KEYWORD
    text: str
    value: Any = None


def _tokenize(sql: str) -> List[_Token]:
    tokens: List[_Token] = []
    index = 0
    text = sql.strip().rstrip(";")
    while index < len(text):
        match = _TOKEN_RE.match(text, index)
        if match is None or match.end() == index:
            raise SqlSyntaxError(f"cannot tokenize SQL near {text[index:index + 20]!r}")
        index = match.end()
        if match.group("string") is not None:
            raw = match.group("string")[1:-1].replace("''", "'")
            tokens.append(_Token("STRING", match.group("string"), raw))
        elif match.group("float") is not None:
            tokens.append(_Token("FLOAT", match.group("float"), float(match.group("float"))))
        elif match.group("int") is not None:
            tokens.append(_Token("INT", match.group("int"), int(match.group("int"))))
        elif match.group("op") is not None:
            op = match.group("op")
            tokens.append(_Token("OP", "!=" if op == "<>" else op))
        elif match.group("punct") is not None:
            tokens.append(_Token("PUNCT", match.group("punct")))
        elif match.group("ident") is not None:
            ident = match.group("ident")
            if ident.upper() in _KEYWORDS and "." not in ident:
                tokens.append(_Token("KEYWORD", ident.upper()))
            else:
                tokens.append(_Token("IDENT", ident))
    return tokens


# --------------------------------------------------------------------------- #
# Parser
# --------------------------------------------------------------------------- #
class _SqlParser:
    def __init__(self, sql: str) -> None:
        self.sql = sql
        self.tokens = _tokenize(sql)
        self.position = 0
        self.parameter_count = 0

    # -- token helpers -------------------------------------------------- #
    def _peek(self) -> Optional[_Token]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def _pop(self) -> _Token:
        token = self._peek()
        if token is None:
            raise SqlSyntaxError(f"unexpected end of statement: {self.sql!r}")
        self.position += 1
        return token

    def _expect_keyword(self, keyword: str) -> None:
        token = self._pop()
        if token.kind != "KEYWORD" or token.text != keyword:
            raise SqlSyntaxError(f"expected {keyword}, got {token.text!r} in {self.sql!r}")

    def _expect_punct(self, punct: str) -> None:
        token = self._pop()
        if token.kind != "PUNCT" or token.text != punct:
            raise SqlSyntaxError(f"expected {punct!r}, got {token.text!r} in {self.sql!r}")

    def _match_keyword(self, *keywords: str) -> Optional[str]:
        token = self._peek()
        if token is not None and token.kind == "KEYWORD" and token.text in keywords:
            self.position += 1
            return token.text
        return None

    def _match_punct(self, punct: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == "PUNCT" and token.text == punct:
            self.position += 1
            return True
        return False

    def _expect_ident(self) -> str:
        token = self._pop()
        if token.kind != "IDENT":
            raise SqlSyntaxError(f"expected identifier, got {token.text!r} in {self.sql!r}")
        return token.text

    # -- expression helpers --------------------------------------------- #
    @staticmethod
    def _column_ref(ident: str) -> ColumnRef:
        if "." in ident:
            table, _, name = ident.partition(".")
            return ColumnRef(name=name, table=table)
        return ColumnRef(name=ident)

    def _parse_value(self) -> Union[Literal, Parameter, ColumnRef]:
        token = self._pop()
        if token.kind in ("STRING", "FLOAT", "INT"):
            return Literal(token.value)
        if token.kind == "PUNCT" and token.text == "?":
            parameter = Parameter(self.parameter_count)
            self.parameter_count += 1
            return parameter
        if token.kind == "KEYWORD" and token.text == "NULL":
            return Literal(None)
        if token.kind == "KEYWORD" and token.text in ("TRUE", "FALSE"):
            return Literal(token.text == "TRUE")
        if token.kind == "IDENT":
            return self._column_ref(token.text)
        raise SqlSyntaxError(f"expected a value, got {token.text!r} in {self.sql!r}")

    def _parse_conditions(self) -> List[Condition]:
        conditions: List[Condition] = []
        while True:
            lhs_token = self._pop()
            if lhs_token.kind != "IDENT":
                raise SqlSyntaxError(
                    f"expected column in WHERE clause, got {lhs_token.text!r}"
                )
            lhs = self._column_ref(lhs_token.text)
            op_token = self._pop()
            if op_token.kind == "OP":
                op = op_token.text
            elif op_token.kind == "KEYWORD" and op_token.text == "LIKE":
                op = "LIKE"
            else:
                raise SqlSyntaxError(
                    f"expected comparison operator, got {op_token.text!r} in {self.sql!r}"
                )
            rhs = self._parse_value()
            conditions.append(Condition(lhs=lhs, op=op, rhs=rhs))
            if self._match_keyword("AND") is None:
                break
        return conditions

    # -- statements ------------------------------------------------------ #
    def parse(self) -> Statement:
        keyword = self._match_keyword("SELECT", "INSERT", "UPDATE", "DELETE")
        if keyword == "SELECT":
            statement = self._parse_select()
        elif keyword == "INSERT":
            statement = self._parse_insert()
        elif keyword == "UPDATE":
            statement = self._parse_update()
        elif keyword == "DELETE":
            statement = self._parse_delete()
        else:
            token = self._peek()
            raise SqlSyntaxError(
                f"statement must start with SELECT/INSERT/UPDATE/DELETE, "
                f"got {(token.text if token else '<empty>')!r}"
            )
        if self._peek() is not None:
            raise SqlSyntaxError(f"trailing tokens after statement: {self.sql!r}")
        return statement

    def _parse_select(self) -> SelectStatement:
        items: List[SelectItem] = []
        star = False
        if self._match_punct("*"):
            star = True
        else:
            while True:
                items.append(self._parse_select_item())
                if not self._match_punct(","):
                    break
        self._expect_keyword("FROM")
        table = self._expect_ident()
        alias = self._parse_optional_alias()

        joins: List[Join] = []
        while True:
            if self._match_keyword("INNER"):
                self._expect_keyword("JOIN")
            elif self._match_keyword("JOIN") is None:
                break
            join_table = self._expect_ident()
            join_alias = self._parse_optional_alias()
            self._expect_keyword("ON")
            left_ident = self._expect_ident()
            op = self._pop()
            if op.kind != "OP" or op.text != "=":
                raise SqlSyntaxError("JOIN ... ON only supports equality conditions")
            right_ident = self._expect_ident()
            joins.append(
                Join(
                    table=join_table,
                    alias=join_alias,
                    left=self._column_ref(left_ident),
                    right=self._column_ref(right_ident),
                )
            )

        where: List[Condition] = []
        if self._match_keyword("WHERE"):
            where = self._parse_conditions()

        group_by: List[ColumnRef] = []
        if self._match_keyword("GROUP"):
            self._expect_keyword("BY")
            while True:
                group_by.append(self._column_ref(self._expect_ident()))
                if not self._match_punct(","):
                    break

        order_by: List[OrderBy] = []
        if self._match_keyword("ORDER"):
            self._expect_keyword("BY")
            while True:
                token = self._pop()
                expression: Union[ColumnRef, str]
                if token.kind == "IDENT":
                    expression = self._column_ref(token.text)
                elif token.kind == "KEYWORD" and token.text in ("COUNT", "SUM", "AVG", "MIN", "MAX"):
                    # ORDER BY SUM(col) style: re-parse as aggregate and refer
                    # to its default name.
                    aggregate = self._parse_aggregate(token.text)
                    expression = aggregate.default_name()
                else:
                    raise SqlSyntaxError(f"invalid ORDER BY expression near {token.text!r}")
                descending = False
                direction = self._match_keyword("ASC", "DESC")
                if direction == "DESC":
                    descending = True
                order_by.append(OrderBy(expression=expression, descending=descending))
                if not self._match_punct(","):
                    break

        limit: Optional[int] = None
        if self._match_keyword("LIMIT"):
            token = self._pop()
            if token.kind != "INT":
                raise SqlSyntaxError(f"LIMIT expects an integer, got {token.text!r}")
            limit = int(token.value)

        return SelectStatement(
            items=items,
            star=star,
            table=table,
            alias=alias,
            joins=joins,
            where=where,
            group_by=group_by,
            order_by=order_by,
            limit=limit,
            has_aggregates=any(isinstance(item.expression, Aggregate) for item in items),
        )

    def _parse_optional_alias(self) -> Optional[str]:
        if self._match_keyword("AS"):
            return self._expect_ident()
        token = self._peek()
        if token is not None and token.kind == "IDENT":
            self.position += 1
            return token.text
        return None

    def _parse_aggregate(self, function: str) -> Aggregate:
        self._expect_punct("(")
        if self._match_punct("*"):
            argument: Optional[ColumnRef] = None
        else:
            argument = self._column_ref(self._expect_ident())
        self._expect_punct(")")
        return Aggregate(function=function, argument=argument)

    def _parse_select_item(self) -> SelectItem:
        token = self._pop()
        expression: Union[ColumnRef, Aggregate]
        if token.kind == "KEYWORD" and token.text in ("COUNT", "SUM", "AVG", "MIN", "MAX"):
            expression = self._parse_aggregate(token.text)
        elif token.kind == "IDENT":
            expression = self._column_ref(token.text)
        else:
            raise SqlSyntaxError(f"invalid select item near {token.text!r} in {self.sql!r}")
        alias: Optional[str] = None
        if self._match_keyword("AS"):
            alias = self._expect_ident()
        return SelectItem(expression=expression, alias=alias)

    def _parse_insert(self) -> InsertStatement:
        self._expect_keyword("INTO")
        table = self._expect_ident()
        self._expect_punct("(")
        columns: List[str] = []
        while True:
            columns.append(self._expect_ident())
            if not self._match_punct(","):
                break
        self._expect_punct(")")
        self._expect_keyword("VALUES")
        self._expect_punct("(")
        values: List[Union[Literal, Parameter]] = []
        while True:
            value = self._parse_value()
            if isinstance(value, ColumnRef):
                raise SqlSyntaxError("INSERT values must be literals or parameters")
            values.append(value)
            if not self._match_punct(","):
                break
        self._expect_punct(")")
        if len(columns) != len(values):
            raise SqlSyntaxError(
                f"INSERT column count {len(columns)} != value count {len(values)}"
            )
        return InsertStatement(table=table, columns=columns, values=values)

    def _parse_update(self) -> UpdateStatement:
        table = self._expect_ident()
        self._expect_keyword("SET")
        assignments: List[Tuple[str, Union[Literal, Parameter]]] = []
        while True:
            column = self._expect_ident()
            op = self._pop()
            if op.kind != "OP" or op.text != "=":
                raise SqlSyntaxError(f"expected '=' in UPDATE SET, got {op.text!r}")
            value = self._parse_value()
            if isinstance(value, ColumnRef):
                raise SqlSyntaxError("UPDATE SET values must be literals or parameters")
            assignments.append((column, value))
            if not self._match_punct(","):
                break
        where: List[Condition] = []
        if self._match_keyword("WHERE"):
            where = self._parse_conditions()
        return UpdateStatement(table=table, assignments=assignments, where=where)

    def _parse_delete(self) -> DeleteStatement:
        self._expect_keyword("FROM")
        table = self._expect_ident()
        where: List[Condition] = []
        if self._match_keyword("WHERE"):
            where = self._parse_conditions()
        return DeleteStatement(table=table, where=where)


@functools.lru_cache(maxsize=1024)
def parse_sql(sql: str) -> Statement:
    """Parse a SQL statement into an AST node (cached per SQL string).

    The servlets issue a fixed repertoire of parameterised statements
    (values travel via ``?`` parameters, never via the SQL text), so the
    same strings are parsed millions of times per experiment; re-tokenising
    them was the single largest interpreter cost of a simulated request.
    Statement ASTs are treated as immutable by the executors, so sharing one
    tree per SQL string is safe.  (Syntax errors are not cached.)

    Raises
    ------
    SqlSyntaxError
        If the statement is outside the supported subset.
    """
    if not sql or not sql.strip():
        raise SqlSyntaxError("empty SQL statement")
    return _SqlParser(sql).parse()
