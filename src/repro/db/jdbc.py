"""JDBC-like access layer with a bounded connection pool.

The TPC-W servlets obtain connections from a :class:`DataSource`, prepare
statements, execute them and iterate :class:`ResultSet`s — mirroring the
structure of the original TPC-W Java servlet code.  Two behaviours matter
for the reproduction:

* every executed statement reports the engine's *simulated cost*, which the
  servlet accumulates into its request service time; and
* the pool is bounded (Tomcat's DBCP default-ish size), so a connection-leak
  fault (a servlet that "forgets" to call :meth:`Connection.close`)
  eventually exhausts it — one of the future-work aging causes the extension
  benchmarks explore.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Union

from repro.db.engine import Database, QueryResult
from repro.db.sql import Statement, parse_sql


class SQLError(RuntimeError):
    """Generic JDBC-level error (closed connection, bad statement, ...)."""


class ConnectionPoolExhaustedError(SQLError):
    """Raised when no pooled connection is available."""


class ResultSet:
    """Forward-only cursor over a query result."""

    def __init__(self, result: QueryResult) -> None:
        self._rows = result.rows
        self._index = -1
        self.cost_seconds = result.cost_seconds

    def next(self) -> bool:
        """Advance to the next row; returns ``False`` past the end."""
        if self._index + 1 >= len(self._rows):
            return False
        self._index += 1
        return True

    def _current(self) -> Dict[str, Any]:
        if self._index < 0:
            raise SQLError("ResultSet.next() has not been called")
        if self._index >= len(self._rows):
            raise SQLError("ResultSet is exhausted")
        return self._rows[self._index]

    def get(self, column: str) -> Any:
        """Value of ``column`` in the current row."""
        row = self._current()
        if column not in row:
            raise SQLError(f"result has no column {column!r} (columns: {sorted(row)})")
        return row[column]

    def get_int(self, column: str) -> int:
        """Integer value of ``column`` (NULL maps to 0, JDBC-style)."""
        value = self.get(column)
        return int(value) if value is not None else 0

    def get_float(self, column: str) -> float:
        """Float value of ``column`` (NULL maps to 0.0)."""
        value = self.get(column)
        return float(value) if value is not None else 0.0

    def get_string(self, column: str) -> Optional[str]:
        """String value of ``column`` (may be ``None``)."""
        value = self.get(column)
        return None if value is None else str(value)

    def all_rows(self) -> List[Dict[str, Any]]:
        """Remaining implementation detail: the full row list (test helper)."""
        return list(self._rows)

    def __len__(self) -> int:
        return len(self._rows)


class PreparedStatement:
    """A parameterised statement bound to a connection."""

    def __init__(self, connection: "Connection", sql: str) -> None:
        self._connection = connection
        self.sql = sql
        self._params: Dict[int, Any] = {}
        #: Parsed AST, resolved on first execution and reused afterwards so
        #: re-executing a prepared statement skips even the parse-cache
        #: lookup (and hits the engine's per-statement plan cache directly).
        self._statement: Optional[Statement] = None

    def set(self, index: int, value: Any) -> None:
        """Bind the 1-based parameter ``index`` (JDBC convention) to ``value``."""
        if index < 1:
            raise SQLError(f"parameter indexes are 1-based, got {index}")
        self._params[index - 1] = value

    def _ordered_params(self) -> Sequence[Any]:
        if not self._params:
            return ()
        size = max(self._params) + 1
        return tuple(self._params.get(i) for i in range(size))

    def _parsed(self) -> Statement:
        statement = self._statement
        if statement is None:
            statement = self._statement = parse_sql(self.sql)
        return statement

    def execute_query(self) -> ResultSet:
        """Execute a SELECT and return a :class:`ResultSet`."""
        return self._connection.execute_query(self._parsed(), self._ordered_params())

    def execute_update(self) -> int:
        """Execute an INSERT/UPDATE/DELETE and return the affected row count."""
        return self._connection.execute_update(self._parsed(), self._ordered_params())


class Connection:
    """A pooled database connection."""

    def __init__(
        self, datasource: "DataSource", connection_id: int, owner: Optional[str] = None
    ) -> None:
        self._datasource = datasource
        self.connection_id = connection_id
        #: Component that borrowed the connection (``None``: untagged).
        self.owner = owner
        self._closed = False
        self.query_count = 0
        self.accumulated_cost_seconds = 0.0

    # ------------------------------------------------------------------ #
    def _check_open(self) -> None:
        if self._closed:
            raise SQLError(f"connection {self.connection_id} is closed")

    def prepare_statement(self, sql: str) -> PreparedStatement:
        """Create a prepared statement on this connection."""
        self._check_open()
        return PreparedStatement(self, sql)

    def execute_query(self, sql: Union[str, Statement], params: Sequence[Any] = ()) -> ResultSet:
        """Execute a SELECT directly (SQL text or a pre-parsed statement)."""
        self._check_open()
        result = self._datasource.database.execute(sql, params)
        self.query_count += 1
        self.accumulated_cost_seconds += result.cost_seconds
        self._datasource.record_cost(result.cost_seconds)
        return ResultSet(result)

    def execute_update(self, sql: Union[str, Statement], params: Sequence[Any] = ()) -> int:
        """Execute an INSERT/UPDATE/DELETE directly (SQL text or pre-parsed)."""
        self._check_open()
        result = self._datasource.database.execute(sql, params)
        self.query_count += 1
        self.accumulated_cost_seconds += result.cost_seconds
        self._datasource.record_cost(result.cost_seconds)
        return result.rowcount

    def close(self) -> None:
        """Return the connection to the pool (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._datasource._release(self)

    @property
    def is_closed(self) -> bool:
        """Whether the connection has been returned to the pool."""
        return self._closed

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class DataSource:
    """A bounded connection pool over a :class:`~repro.db.engine.Database`.

    Parameters
    ----------
    database:
        The backing database engine.
    pool_size:
        Maximum simultaneously open connections (Tomcat DBCP-style bound).
    """

    def __init__(self, database: Database, pool_size: int = 32) -> None:
        if pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {pool_size}")
        self.database = database
        self.pool_size = int(pool_size)
        self._next_id = 1
        self._in_use: Dict[int, Connection] = {}
        self.total_borrowed = 0
        self.total_cost_seconds = 0.0
        self.exhaustion_events = 0
        #: Multiplier applied to every recorded query cost (1.0 = healthy).
        #: Slow-downstream faults age this upward (bloated indexes, stale
        #: statistics); every component's jdbc calls get slower together.
        self.latency_multiplier = 1.0
        #: Flat extra seconds added to every recorded query cost.
        self.extra_latency_seconds = 0.0
        #: Cross-client contention charge: extra seconds added per query for
        #: every *other* connection concurrently borrowed from this pool.
        #: Zero (free) by default; ``build_cluster`` sets it on a shared
        #: primary mounted by multiple shards, where lock and buffer-pool
        #: contention is otherwise unmodelled.
        self.contention_seconds_per_connection = 0.0
        #: Connections the hybrid fluid bulk population would be holding
        #: right now (fractional; maintained by the fluid process so the
        #: discrete tracers pay contention for the bulk load too).
        self.fluid_active_connections = 0.0
        #: Datasources whose connections contend with this one (all pools
        #: mounted on the same shared primary, this one included).  ``None``
        #: means only this pool's own connections contend.
        self.contention_pool_group: Optional[List["DataSource"]] = None

    # ------------------------------------------------------------------ #
    def get_connection(self, owner: Optional[str] = None) -> Connection:
        """Borrow a connection, optionally tagged with the borrowing component.

        The tag is what makes connection leaks *attributable*: the pool can
        report how many connections each component holds, and a component
        micro-reboot can force-close exactly its share.

        Raises
        ------
        ConnectionPoolExhaustedError
            If ``pool_size`` connections are already in use (leaked
            connections count — that is the point of the leak fault).
        """
        if len(self._in_use) >= self.pool_size:
            self.exhaustion_events += 1
            raise ConnectionPoolExhaustedError(
                f"connection pool exhausted ({self.pool_size} in use)"
            )
        connection = Connection(self, self._next_id, owner=owner)
        self._next_id += 1
        self._in_use[connection.connection_id] = connection
        self.total_borrowed += 1
        return connection

    def _release(self, connection: Connection) -> None:
        self._in_use.pop(connection.connection_id, None)

    def release_owned(self, owner: str) -> int:
        """Force-close every in-use connection tagged with ``owner``.

        The connection half of a component micro-reboot (Tomcat's
        removed-abandoned semantics on redeploy): whatever the recycled
        component still held goes back to the pool.  Returns how many
        connections were reclaimed.
        """
        victims = [c for c in self._in_use.values() if c.owner == owner]
        for connection in victims:
            connection.close()
        return len(victims)

    def active_by_owner(self) -> Dict[str, int]:
        """In-use connection counts grouped by borrowing component."""
        counts: Dict[str, int] = {}
        for connection in self._in_use.values():
            key = connection.owner or "<untagged>"
            counts[key] = counts.get(key, 0) + 1
        return counts

    def inflate_latency(
        self,
        multiplier_increment: float = 0.0,
        extra_seconds_increment: float = 0.0,
        max_multiplier: Optional[float] = None,
    ) -> float:
        """Age the downstream database: permanently inflate query latency.

        Returns the multiplier now in effect.  ``max_multiplier`` caps the
        aging so scenarios stay bounded.
        """
        if multiplier_increment < 0 or extra_seconds_increment < 0:
            raise ValueError("latency inflation increments must be non-negative")
        self.latency_multiplier += float(multiplier_increment)
        if max_multiplier is not None:
            self.latency_multiplier = min(self.latency_multiplier, float(max_multiplier))
        self.extra_latency_seconds += float(extra_seconds_increment)
        return self.latency_multiplier

    def record_cost(self, cost_seconds: float) -> None:
        """Accumulate simulated query cost (read by the container/agents)."""
        self.total_cost_seconds += cost_seconds * self.latency_multiplier + self.extra_latency_seconds
        if self.contention_seconds_per_connection:
            # Charge queueing delay for the other clients of the shared
            # storage engine (discrete connections across every pool in the
            # contention group plus the fluid bulk's fractional share).
            group = self.contention_pool_group
            if group is not None:
                active = sum(
                    len(ds._in_use) + ds.fluid_active_connections for ds in group
                )
            else:
                active = len(self._in_use) + self.fluid_active_connections
            others = active - 1.0
            if others > 0.0:
                self.total_cost_seconds += self.contention_seconds_per_connection * others

    @property
    def active_connections(self) -> int:
        """Connections currently borrowed and not yet closed."""
        return len(self._in_use)

    @property
    def available_connections(self) -> int:
        """Connections that could still be borrowed."""
        return self.pool_size - len(self._in_use)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DataSource(db={self.database.name!r}, active={self.active_connections}/"
            f"{self.pool_size})"
        )
