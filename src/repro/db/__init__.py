"""In-memory relational database substrate (the "MySQL" of the testbed).

TPC-W is a database-backed workload: every interaction issues one or more
SQL queries over the bookstore schema.  This package provides the data tier
the TPC-W servlets run against:

* :mod:`repro.db.table`   -- tables, columns, rows, secondary indexes.
* :mod:`repro.db.engine`  -- the database engine (DDL, transactions-lite,
  cost accounting for simulated query latency).
* :mod:`repro.db.sql`     -- a SQL subset parser/executor (SELECT with joins,
  aggregates, GROUP BY / ORDER BY / LIMIT, INSERT, UPDATE, DELETE,
  positional ``?`` parameters).
* :mod:`repro.db.jdbc`    -- a JDBC-like API (DataSource, Connection,
  PreparedStatement, ResultSet) with a bounded connection pool; the pool is
  a leakable resource used by the connection-leak extension fault.
"""

from __future__ import annotations

from repro.db.engine import Database, QueryStats
from repro.db.jdbc import (
    Connection,
    ConnectionPoolExhaustedError,
    DataSource,
    PreparedStatement,
    ResultSet,
    SQLError,
)
from repro.db.sql import SqlSyntaxError, parse_sql
from repro.db.table import Column, ColumnType, Table, UniqueViolationError

__all__ = [
    "Database",
    "QueryStats",
    "Table",
    "Column",
    "ColumnType",
    "UniqueViolationError",
    "parse_sql",
    "SqlSyntaxError",
    "DataSource",
    "Connection",
    "PreparedStatement",
    "ResultSet",
    "SQLError",
    "ConnectionPoolExhaustedError",
]
