"""Small descriptive-statistics helpers shared by strategies and reports."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np


def normalize_scores(scores: Dict[str, float]) -> Dict[str, float]:
    """Scale non-negative scores so they sum to 1 (all-zero stays all-zero).

    Negative scores are clipped to zero first: a shrinking component cannot
    carry negative responsibility for resource exhaustion.
    """
    clipped = {key: max(0.0, float(value)) for key, value in scores.items()}
    total = sum(clipped.values())
    if total <= 0:
        return {key: 0.0 for key in clipped}
    return {key: value / total for key, value in clipped.items()}


def summary(values: Sequence[float]) -> Dict[str, float]:
    """Mean / median / min / max / std / count of a sequence."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return {"count": 0, "mean": 0.0, "median": 0.0, "min": 0.0, "max": 0.0, "std": 0.0}
    return {
        "count": int(data.size),
        "mean": float(data.mean()),
        "median": float(np.median(data)),
        "min": float(data.min()),
        "max": float(data.max()),
        "std": float(data.std()),
    }


def relative_difference(measured: float, reference: float) -> float:
    """``(measured - reference) / reference`` guarded against zero reference."""
    if reference == 0:
        return 0.0 if measured == 0 else float("inf")
    return (measured - reference) / reference
