"""Helpers over :class:`~repro.sim.metrics.TimeSeries` objects."""

from __future__ import annotations

import numpy as np

from repro.analysis.trend import linear_slope
from repro.sim.metrics import TimeSeries


def growth_of(series: TimeSeries) -> float:
    """Last value minus first value (0 for series with fewer than 2 points)."""
    if len(series) < 2:
        return 0.0
    values = series.values
    return float(values[-1] - values[0])


def series_slope(series: TimeSeries) -> float:
    """Least-squares slope of a time series (value units per second)."""
    if len(series) < 2:
        return 0.0
    return linear_slope(series.times, series.values)


def moving_average(series: TimeSeries, window_points: int = 5) -> TimeSeries:
    """Centred moving average over a fixed number of points."""
    if window_points < 1:
        raise ValueError(f"window_points must be >= 1, got {window_points}")
    out = TimeSeries(f"{series.name}.ma{window_points}")
    if len(series) == 0:
        return out
    values = series.values
    times = series.times
    half = window_points // 2
    for index in range(len(values)):
        lo = max(0, index - half)
        hi = min(len(values), index + half + 1)
        out.record(times[index], float(np.mean(values[lo:hi])))
    return out


def final_fraction_mean(series: TimeSeries, fraction: float = 0.25) -> float:
    """Mean of the last ``fraction`` of the series (steady-state estimate)."""
    if not 0 < fraction <= 1:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    if len(series) == 0:
        return 0.0
    values = series.values
    start = int(np.floor(len(values) * (1.0 - fraction)))
    start = min(start, len(values) - 1)
    return float(values[start:].mean())
