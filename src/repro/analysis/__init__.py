"""Statistical utilities used by the root-cause strategies and the harness.

* :mod:`repro.analysis.trend`      -- linear / Theil-Sen slopes and the
  Mann-Kendall trend test (is a component's size *really* growing?).
* :mod:`repro.analysis.timeseries` -- growth, smoothing and resampling
  helpers over :class:`~repro.sim.metrics.TimeSeries`.
* :mod:`repro.analysis.statistics` -- small descriptive-statistics helpers.
"""

from __future__ import annotations

from repro.analysis.statistics import normalize_scores, summary
from repro.analysis.timeseries import growth_of, moving_average, series_slope
from repro.analysis.trend import TrendResult, linear_slope, mann_kendall, theil_sen_slope

__all__ = [
    "TrendResult",
    "mann_kendall",
    "linear_slope",
    "theil_sen_slope",
    "growth_of",
    "moving_average",
    "series_slope",
    "normalize_scores",
    "summary",
]
