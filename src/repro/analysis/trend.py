"""Trend estimation: Mann-Kendall test, least-squares and Theil-Sen slopes.

Software aging manifests as a *monotonic trend* in a resource metric (heap,
component size, thread count).  The refined root-cause strategies use the
non-parametric Mann-Kendall test to decide whether a component's size series
is genuinely trending and a robust slope estimate to quantify how fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as scipy_stats


@dataclass
class TrendResult:
    """Outcome of a Mann-Kendall trend test."""

    statistic: float          #: the S statistic
    z_score: float            #: normal-approximation z score
    p_value: float            #: two-sided p-value
    increasing: bool          #: whether the detected trend is upward
    significant: bool         #: p_value < alpha

    @property
    def trending_up(self) -> bool:
        """Significant *and* increasing."""
        return self.significant and self.increasing


def mann_kendall(values: Sequence[float], alpha: float = 0.05) -> TrendResult:
    """Mann-Kendall trend test (normal approximation with tie correction).

    Parameters
    ----------
    values:
        The observations, ordered in time.
    alpha:
        Significance level.
    """
    data = np.asarray(list(values), dtype=float)
    n = data.shape[0]
    if n < 3:
        return TrendResult(statistic=0.0, z_score=0.0, p_value=1.0, increasing=False, significant=False)

    _, tie_counts = np.unique(data, return_counts=True)

    # S = sum of signs of all pairwise forward differences.  Rather than the
    # former O(n^2) per-row loop, recover the exact integer S from Kendall's
    # tau-b (scipy's C implementation, O(n log n)):
    #     tau_b = S / sqrt((P - T_time) * (P - T_values))
    # with P = n(n-1)/2 total pairs and T the tied-pair counts; time indices
    # are strictly increasing, so T_time = 0.  |S| <= P stays far below the
    # float53 rounding horizon, so round() reproduces the loop bit for bit.
    n_pairs = n * (n - 1) / 2.0
    tie_pairs = float((tie_counts * (tie_counts - 1) / 2.0).sum())
    tau = scipy_stats.kendalltau(np.arange(n, dtype=float), data).correlation
    if np.isnan(tau):  # all observations tied: every pairwise sign is zero
        s = 0.0
    else:
        s = float(round(tau * np.sqrt(n_pairs * (n_pairs - tie_pairs))))

    # Variance with tie correction.
    tie_term = (tie_counts * (tie_counts - 1) * (2 * tie_counts + 5)).sum()
    variance = (n * (n - 1) * (2 * n + 5) - tie_term) / 18.0
    if variance <= 0:
        return TrendResult(statistic=float(s), z_score=0.0, p_value=1.0, increasing=s > 0, significant=False)

    if s > 0:
        z = (s - 1) / np.sqrt(variance)
    elif s < 0:
        z = (s + 1) / np.sqrt(variance)
    else:
        z = 0.0
    p_value = 2.0 * (1.0 - scipy_stats.norm.cdf(abs(z)))
    return TrendResult(
        statistic=float(s),
        z_score=float(z),
        p_value=float(p_value),
        increasing=bool(s > 0),
        significant=bool(p_value < alpha),
    )


def linear_slope(times: Sequence[float], values: Sequence[float]) -> float:
    """Ordinary least-squares slope of ``values`` against ``times``."""
    t = np.asarray(list(times), dtype=float)
    y = np.asarray(list(values), dtype=float)
    if t.shape[0] != y.shape[0]:
        raise ValueError(f"times and values must have equal length ({t.shape[0]} vs {y.shape[0]})")
    if t.shape[0] < 2:
        return 0.0
    t_centered = t - t.mean()
    denominator = float((t_centered ** 2).sum())
    if denominator == 0.0:
        return 0.0
    return float((t_centered * (y - y.mean())).sum() / denominator)


def theil_sen_slope(times: Sequence[float], values: Sequence[float], max_pairs: int = 250_000) -> float:
    """Theil-Sen (median-of-pairwise-slopes) estimator, robust to outliers.

    For long series the number of pairs is capped by striding through the
    observations, keeping the estimator O(``max_pairs``).
    """
    t = np.asarray(list(times), dtype=float)
    y = np.asarray(list(values), dtype=float)
    if t.shape[0] != y.shape[0]:
        raise ValueError(f"times and values must have equal length ({t.shape[0]} vs {y.shape[0]})")
    n = t.shape[0]
    if n < 2:
        return 0.0
    total_pairs = n * (n - 1) // 2
    if total_pairs > max_pairs:
        stride = int(np.ceil(np.sqrt(total_pairs / max_pairs)))
        t = t[::stride]
        y = y[::stride]
        n = t.shape[0]
        if n < 2:
            return 0.0
    # All pairwise forward differences at once: after the stride cap the
    # series holds at most ~sqrt(2 * max_pairs) points, so the n x n
    # difference matrices stay small.  The upper-triangle indices enumerate
    # pairs in the same row-major (i ascending, then j) order as the former
    # per-row loop, and the median sorts anyway, so results are identical.
    row, col = np.triu_indices(n, k=1)
    dt = t[col] - t[row]
    dy = y[col] - y[row]
    valid = dt != 0
    if not valid.any():
        return 0.0
    return float(np.median(dy[valid] / dt[valid]))
