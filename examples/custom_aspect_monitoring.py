#!/usr/bin/env python
"""Using the AOP / JMX substrates directly: write your own aspect and agent.

The monitoring framework is built from reusable pieces.  This example shows
how a user extends it without touching framework code:

* a custom **aspect** that measures per-interaction response time with an
  ``around`` advice bound to an AspectJ-style pointcut;
* a custom **monitoring agent** (an MBean) exposing those measurements
  through the MBeanServer, discovered by ObjectName query exactly like the
  built-in agents;
* a JMX **connector + proxy** used as the "remote" management client.

Run with::

    python examples/custom_aspect_monitoring.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.aop import Aspect, Weaver, around
from repro.jmx import JmxConnector, MBean, MBeanServer, ObjectName, attribute, operation
from repro.sim.engine import SimulationEngine
from repro.tpcw import PopulationScale, WorkloadGenerator, WorkloadPhase, build_deployment


class ResponseTimeAspect(Aspect):
    """Measures the simulated duration of every servlet execution."""

    def __init__(self, clock) -> None:
        super().__init__()
        self._clock = clock
        self.samples: dict[str, list[float]] = {}

    @around("execution(org.tpcw.servlet.TPCW_*.service)")
    def time_component(self, join_point, proceed):
        start = self._clock.now
        try:
            return proceed()
        finally:
            elapsed = self._clock.now - start
            self.samples.setdefault(join_point.component, []).append(elapsed)


class ResponseTimeAgent(MBean):
    """Exposes the aspect's measurements as a management interface."""

    description = "Per-component servlet execution counts from a user-defined aspect"

    def __init__(self, aspect: ResponseTimeAspect) -> None:
        self._aspect = aspect

    @attribute
    def ComponentCount(self) -> int:
        return len(self._aspect.samples)

    @operation
    def execution_counts(self) -> dict:
        return {name: len(values) for name, values in sorted(self._aspect.samples.items())}

    @operation
    def sample(self, component: str) -> dict:
        values = self._aspect.samples.get(component, [])
        return {"executions": float(len(values))}


def main() -> None:
    engine = SimulationEngine()
    deployment = build_deployment(scale=PopulationScale.tiny(), seed=99, clock=engine.clock)

    # Weave the custom aspect into every TPC-W servlet — no code modified.
    aspect = ResponseTimeAspect(deployment.clock)
    weaver = Weaver(clock=deployment.clock)
    weaver.register_aspect(aspect)
    woven = 0
    for name in deployment.interaction_names():
        woven += len(weaver.weave_object(deployment.servlet(name), method_names=["service"]))
    print(f"custom aspect woven into {woven} components")

    # Publish the measurements through a JMX-style agent.
    server = MBeanServer()
    agent_name = ObjectName.of("examples.agents", type="response-time")
    server.register(agent_name, ResponseTimeAgent(aspect))

    # Generate some load.
    generator = WorkloadGenerator(engine, deployment)
    generator.schedule_phases([WorkloadPhase(0.0, 20)])
    generator.run(240.0)

    # A management client discovers the agent by pattern and reads it remotely.
    connector = JmxConnector(server)
    discovered = connector.query_names("examples.agents:*")
    print(f"agents discovered by the management client: {[str(n) for n in discovered]}")
    proxy = connector.proxy(agent_name)
    counts = proxy.call("execution_counts")

    print("\nper-component executions observed by the custom aspect:")
    for component, count in sorted(counts.items(), key=lambda item: -item[1]):
        print(f"  {component:<24} {count:>6}")

    # Runtime deactivation works for user aspects exactly as for the ACs.
    aspect.disable()
    before = sum(counts.values())
    generator2 = WorkloadGenerator(engine, deployment)
    generator2.schedule_phases([WorkloadPhase(engine.now, 20)])
    generator2.run(60.0)
    after = sum(proxy.call("execution_counts").values())
    print(f"\nafter disabling the aspect: {after - before} new samples (expected 0)")


if __name__ == "__main__":
    main()
