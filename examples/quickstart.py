#!/usr/bin/env python
"""Quickstart: monitor a TPC-W deployment and find an injected memory leak.

This is the smallest end-to-end tour of the library:

1. build a TPC-W deployment (database + servlet container + 14 components);
2. install the monitoring framework (Aspect Components woven at runtime,
   JMX monitoring agents, the Manager Agent and the front-end);
3. inject the paper's memory-leak fault into one component;
4. drive the store with Emulated Browsers for a few simulated minutes;
5. ask the Manager Agent which component is the root cause of the aging.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import FrameworkConfig, MonitoringFramework
from repro.faults import FaultInjector, MemoryLeakFault
from repro.sim.engine import SimulationEngine
from repro.tpcw import PopulationScale, WorkloadGenerator, WorkloadPhase, build_deployment


def main() -> None:
    # 1. A TPC-W deployment sharing the simulation clock.
    engine = SimulationEngine()
    deployment = build_deployment(
        scale=PopulationScale.tiny(), seed=2024, clock=engine.clock
    )
    print(f"deployed TPC-W with components: {', '.join(deployment.interaction_names())}")

    # 2. Install the monitoring framework (no servlet code is modified).
    framework = MonitoringFramework(
        deployment, engine=engine, config=FrameworkConfig(snapshot_interval=30.0)
    )
    framework.install()
    print(f"woven Aspect Components: {framework.weaver.woven_count}")

    # 3. Inject the paper's aging error: 100 KB leaked on average every 20
    #    visits of the 'home' component.
    FaultInjector(deployment).inject(
        "home", MemoryLeakFault(leak_bytes=100 * 1024, period_n=20, streams=deployment.streams)
    )

    # 4. Drive the store with 25 Emulated Browsers for 10 simulated minutes.
    generator = WorkloadGenerator(engine, deployment)
    generator.schedule_phases([WorkloadPhase(start_time=0.0, eb_count=25)])
    framework.schedule_snapshots(duration=600.0, interval=30.0)
    generator.run(600.0)
    print(
        f"workload done: {generator.completed_requests} requests, "
        f"{generator.mean_throughput():.2f} req/s, "
        f"mean response time {generator.mean_response_time() * 1000:.1f} ms"
    )

    # 5. Ask the framework who is to blame.
    print()
    print(framework.frontend.map_report())
    print()
    print(framework.frontend.root_cause_report())

    top = framework.root_cause().top()
    print()
    print(
        f"==> root cause: {top.component!r} with "
        f"{top.responsibility * 100:.0f}% of the responsibility "
        f"({top.score / 1024:.0f} KB accumulated)"
    )


if __name__ == "__main__":
    main()
