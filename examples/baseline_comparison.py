#!/usr/bin/env python
"""Why component-level attribution matters: framework vs. Pinpoint vs. black-box.

Reproduces the argument of the paper's related-work section as a runnable
experiment.  A memory leak is injected into one TPC-W component and three
observers watch the same run:

* the paper's AOP/JMX framework (per-component resource attribution),
* a Pinpoint-style analyser (correlates components with *failed* requests),
* a Ganglia/Nagios-style black-box host monitor (system metrics only).

Run with::

    python examples/baseline_comparison.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.faults.injector import FaultSpec
from repro.tpcw.population import PopulationScale


def main() -> None:
    config = ExperimentConfig(
        name="baseline-comparison",
        seed=5,
        scale=PopulationScale.tiny(),
        constant_ebs=25,
        duration=480.0,
        monitored=True,
        collect_pinpoint_traces=True,
        snapshot_interval=30.0,
        faults=[FaultSpec("product_detail", "memory-leak",
                          {"leak_bytes": 100 * 1024, "period_n": 10})],
    )
    result = run_experiment(config)

    print(f"run finished: {result.completed_requests} requests, "
          f"{result.error_count} errors, "
          f"heap grew to {result.heap_series.values[-1] / 1e6:.1f} MB\n")

    # 1. The paper's framework.
    top = result.root_cause.top()
    print("AOP/JMX framework     :",
          f"root cause = {top.component!r} "
          f"({top.responsibility * 100:.0f}% responsibility, "
          f"{top.score / 1024:.0f} KB accumulated)")

    # 2. Pinpoint.
    pinpoint_report = result.pinpoint.analyze()
    print("Pinpoint baseline     :",
          f"root cause = {pinpoint_report.top()!r} "
          f"({pinpoint_report.failed_requests} failed requests out of "
          f"{pinpoint_report.total_requests})")

    # 3. Black-box monitor.
    blackbox_report = result.blackbox.analyze()
    eta = blackbox_report.time_to_exhaustion_seconds
    print("Black-box monitor     :",
          f"aging detected = {blackbox_report.aging_detected}, "
          f"root cause = {blackbox_report.root_cause_component!r}, "
          f"time to heap exhaustion ≈ "
          + (f"{eta / 3600:.1f} h" if eta else "n/a"))

    print("\nConclusion: only the per-component resource attribution names the "
          "guilty component before anything actually fails — which is what "
          "enables surgical (micro-reboot) rejuvenation.")


if __name__ == "__main__":
    main()
