#!/usr/bin/env python
"""Overhead study: what does runtime monitoring cost? (paper Fig. 3)

Runs the paper's dynamic-workload experiment twice — once without and once
with the monitoring framework installed — under the same seed, then prints
the two throughput curves, the per-phase means and the measured overhead.
Also demonstrates the runtime activation knob: a third run monitors only the
most-used half of the components.

Run with::

    python examples/overhead_study.py [duration_scale]
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments.reporting import fig3_report, format_table
from repro.experiments.scenarios import fig3_overhead, scope_overhead_ablation
from repro.tpcw.population import PopulationScale


def main() -> None:
    duration_scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.08
    scale = PopulationScale.tiny()

    print("### Monitored vs. unmonitored throughput (paper Fig. 3)\n")
    result = fig3_overhead(duration_scale=duration_scale, seed=11, scale=scale)
    print(fig3_report(result))

    print("\n\n### Runtime activation knob: overhead vs. monitoring scope\n")
    rows = scope_overhead_ablation(
        duration_scale=duration_scale, seed=11, scale=scale, ebs=100
    )
    print(format_table(rows))
    print(
        "\nThe Manager Agent deactivated half of the Aspect Components at runtime "
        "for the 0.5 row — no redeployment, no code change."
    )


if __name__ == "__main__":
    main()
