#!/usr/bin/env python
"""Leak hunt: reproduce the paper's multi-component experiments end to end.

Runs scaled-down versions of Fig. 5 (four identical leaks) and Fig. 7
(heterogeneous leak sizes), prints the per-component size trajectories, the
manager-composed consumption-vs-usage map (Fig. 6) and the root-cause
rankings — the same analysis an operator would run after a traditional
monitor raised an aging alarm.

Run with::

    python examples/leak_hunt_report.py [duration_scale]

where ``duration_scale`` scales the paper's one-hour experiments (default
0.1 → 6 simulated minutes, a few seconds of wall time).
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments.reporting import fig6_report, leak_scenario_report
from repro.experiments.scenarios import (
    COMPONENT_A,
    COMPONENT_B,
    COMPONENT_C,
    COMPONENT_D,
    fig5_multi_leak,
    fig6_manager_map,
    fig7_injection_sizes,
)
from repro.tpcw.population import PopulationScale


def main() -> None:
    duration_scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    scale = PopulationScale.tiny()
    focus = [COMPONENT_A, COMPONENT_B, COMPONENT_C, COMPONENT_D]

    print("### Experiment 1: identical 100 KB leaks in four components (paper Fig. 5/6)\n")
    fig5 = fig5_multi_leak(duration_scale=duration_scale, seed=7, scale=scale, ebs=60)
    print(
        leak_scenario_report(
            fig5,
            title="Fig. 5 reproduction",
            expectation="A and B grow fastest and similarly, C slower, D flat",
            components=focus,
        )
    )
    print()
    print(fig6_report(fig6_manager_map(fig5), focus=focus))
    print()
    print("injected faults:")
    for description in fig5.result.fault_descriptions:
        print(f"  - {description}")

    print("\n\n### Experiment 2: heterogeneous leak sizes (paper Fig. 7)\n")
    fig7 = fig7_injection_sizes(duration_scale=duration_scale, seed=7, scale=scale, ebs=60)
    print(
        leak_scenario_report(
            fig7,
            title="Fig. 7 reproduction",
            expectation="C (1 MB leak) overtakes A (100 KB); B (10 KB) third; D flat",
            components=focus,
        )
    )

    print("\n==> Fig. 5 ranking:", " > ".join(fig5.root_cause.ranking()[:4]))
    print("==> Fig. 7 ranking:", " > ".join(fig7.root_cause.ranking()[:4]))


if __name__ == "__main__":
    main()
