"""Repository-level pytest configuration.

Ensures ``src/`` is importable even when the package has not been installed
(the offline environment cannot always build editable installs), so that
``pytest tests/`` and ``pytest benchmarks/`` work straight from a checkout.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
