"""Repository-level pytest configuration.

The package is normally installed editable (``pip install -e .`` — see
``pyproject.toml``); when the importable ``repro`` does not resolve into
this checkout's ``src/`` (no install, a stale non-editable install, or an
unrelated distribution of the same name), put ``src/`` first on ``sys.path``
so the working tree is always what gets tested.
"""

import importlib.util
import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
_spec = importlib.util.find_spec("repro")
if _spec is None or not (_spec.origin or "").startswith(_SRC + os.sep):
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)
