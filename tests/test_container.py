"""Tests for the servlet container: API, sessions, dispatch, thread pool, server."""

from __future__ import annotations

import pytest

from repro.container.dispatcher import RequestDispatcher, ServletFilter
from repro.container.server import ApplicationServer, ServerConfig
from repro.container.servlet import (
    HttpServlet,
    HttpServletRequest,
    HttpServletResponse,
    ServletConfig,
    ServletContext,
    ServletException,
)
from repro.container.session import SessionManager
from repro.container.threadpool import WorkerThreadPool
from repro.container.webapp import WebApplication
from repro.db.engine import Database
from repro.db.jdbc import DataSource
from repro.db.table import Column, ColumnType
from repro.jvm.runtime import JvmRuntime


class _EchoServlet(HttpServlet):
    java_class_name = "org.example.EchoServlet"
    component_name = "echo"
    base_cpu_demand_seconds = 0.05

    def do_get(self, request, response):
        response.write(f"echo:{request.get_parameter('msg', '')}")

    def do_post(self, request, response):
        response.write("posted")


class _FailingServlet(HttpServlet):
    java_class_name = "org.example.FailingServlet"
    component_name = "failing"

    def do_get(self, request, response):
        raise ServletException("broken")


class TestServletApi:
    def test_request_parameters_and_attributes(self):
        request = HttpServletRequest("/x", parameters={"a": 1})
        assert request.get_parameter("a") == 1
        assert request.get_parameter("b", "d") == "d"
        request.set_parameter("b", 2)
        request.set_attribute("k", "v")
        assert request.get_attribute("k") == "v"
        assert request.parameter_names() == ["a", "b"]

    def test_invalid_method_rejected(self):
        with pytest.raises(ValueError):
            HttpServletRequest("/x", method="PUT")

    def test_response_body_and_status(self):
        response = HttpServletResponse()
        response.write("hello ")
        response.write("world")
        assert response.body == "hello world"
        assert response.content_length == 11
        assert not response.is_error
        response.set_status(500)
        assert response.is_error

    def test_servlet_lifecycle_and_dispatch_by_method(self):
        servlet = _EchoServlet()
        context = ServletContext(WebApplication("app"))
        servlet.init(ServletConfig("echo", context, {"p": "v"}))
        assert servlet.is_initialized
        assert servlet.servlet_config.get_init_parameter("p") == "v"

        response = HttpServletResponse()
        servlet.service(HttpServletRequest("/e", parameters={"msg": "hi"}), response)
        assert response.body == "echo:hi"
        post_response = HttpServletResponse()
        servlet.service(HttpServletRequest("/e", method="POST"), post_response)
        assert post_response.body == "posted"
        servlet.destroy()
        assert not servlet.is_initialized

    def test_uninitialised_servlet_rejects_requests(self):
        with pytest.raises(ServletException):
            _EchoServlet().service(HttpServletRequest("/e"), HttpServletResponse())


class TestSessionManager:
    def test_create_get_and_touch(self):
        manager = SessionManager(JvmRuntime())
        session = manager.new_session(10.0)
        assert manager.get_session(session.session_id, create=False, timestamp=20.0) is session
        assert session.last_accessed == 20.0
        assert manager.active_count == 1

    def test_missing_session_with_create(self):
        manager = SessionManager(JvmRuntime())
        assert manager.get_session("nope", create=False, timestamp=0.0) is None
        created = manager.get_session("nope", create=True, timestamp=0.0)
        assert created is not None

    def test_attributes_are_heap_accounted(self):
        runtime = JvmRuntime()
        manager = SessionManager(runtime)
        before = runtime.used_memory()
        session = manager.new_session(0.0)
        session.set_attribute("cart_id", 42)
        assert runtime.used_memory() > before
        assert session.get_attribute("cart_id") == 42

    def test_invalidate_frees_roots(self):
        runtime = JvmRuntime()
        manager = SessionManager(runtime)
        session = manager.new_session(0.0)
        session.invalidate()
        assert not session.is_valid
        with pytest.raises(RuntimeError):
            session.get_attribute("x")
        assert manager.active_count == 0

    def test_expire_idle_sessions(self):
        manager = SessionManager(JvmRuntime(), session_timeout=100.0)
        manager.new_session(0.0)
        keep = manager.new_session(50.0)
        expired = manager.expire_idle_sessions(now=140.0)
        assert expired == 1
        assert manager.active_count == 1
        assert keep.is_valid


class TestDispatcher:
    def _make_app(self):
        application = WebApplication("app", context_path="/app")
        application.deploy(_EchoServlet(), name="echo", url_pattern="/app/echo")
        application.deploy(_FailingServlet(), name="failing", url_pattern="/app/fail")
        runtime = JvmRuntime()
        return application, RequestDispatcher(application, SessionManager(runtime))

    def test_dispatch_to_servlet(self):
        _, dispatcher = self._make_app()
        response = dispatcher.dispatch(
            HttpServletRequest("/app/echo", parameters={"msg": "x"}), HttpServletResponse()
        )
        assert response.status == 200
        assert response.body == "echo:x"
        assert dispatcher.dispatched_count == 1

    def test_unknown_uri_is_404(self):
        _, dispatcher = self._make_app()
        response = dispatcher.dispatch(HttpServletRequest("/app/missing"), HttpServletResponse())
        assert response.status == 404
        assert dispatcher.not_found_count == 1

    def test_servlet_exception_becomes_500(self):
        _, dispatcher = self._make_app()
        response = dispatcher.dispatch(HttpServletRequest("/app/fail"), HttpServletResponse())
        assert response.status == 500
        assert dispatcher.error_count == 1

    def test_filters_run_in_order_and_can_short_circuit(self):
        application, dispatcher = self._make_app()
        order = []

        class Tagger(ServletFilter):
            def __init__(self, tag, block=False):
                self.tag = tag
                self.block = block

            def do_filter(self, request, response, chain):
                order.append(self.tag)
                if self.block:
                    response.set_status(503)
                    return
                chain.do_filter(request, response)

        application.add_filter(Tagger("first"))
        application.add_filter(Tagger("second"))
        response = dispatcher.dispatch(HttpServletRequest("/app/echo"), HttpServletResponse())
        assert order == ["first", "second"]
        assert response.status == 200

        application.add_filter(Tagger("blocker", block=True))
        blocked = dispatcher.dispatch(HttpServletRequest("/app/echo"), HttpServletResponse())
        assert blocked.status == 503

    def test_session_attached_to_request(self):
        _, dispatcher = self._make_app()
        request = HttpServletRequest("/app/echo")
        dispatcher.dispatch(request, HttpServletResponse(), timestamp=5.0)
        session = request.get_session()
        assert session is not None
        assert request.session_id == session.session_id


class TestWebApplication:
    def test_deploy_and_lookup(self):
        application = WebApplication("tpcw")
        registration = application.deploy(_EchoServlet(), name="echo")
        assert application.find_by_uri(registration.url_pattern).name == "echo"
        assert application.servlet_names() == ["echo"]
        assert application.registration("echo").servlet.is_initialized

    def test_duplicate_deployments_rejected(self):
        application = WebApplication("tpcw")
        application.deploy(_EchoServlet(), name="echo", url_pattern="/a")
        with pytest.raises(ValueError):
            application.deploy(_EchoServlet(), name="echo", url_pattern="/b")
        with pytest.raises(ValueError):
            application.deploy(_EchoServlet(), name="other", url_pattern="/a")

    def test_undeploy_calls_destroy(self):
        application = WebApplication("tpcw")
        servlet = _EchoServlet()
        application.deploy(servlet, name="echo")
        application.undeploy("echo")
        assert not servlet.is_initialized
        with pytest.raises(KeyError):
            application.undeploy("echo")


class TestWorkerThreadPoolAndServer:
    def _make_server(self, **config_kwargs) -> ApplicationServer:
        application = WebApplication("app", context_path="/app")
        application.deploy(_EchoServlet(), name="echo", url_pattern="/app/echo")
        database = Database("d")
        database.create_table("t", [Column("id", ColumnType.INTEGER, primary_key=True)])
        datasource = DataSource(database)
        return ApplicationServer(
            application, datasource, config=ServerConfig(**config_kwargs)
        )

    def test_thread_pool_registers_jvm_threads(self):
        runtime = JvmRuntime()
        pool = WorkerThreadPool(runtime, max_threads=8)
        assert runtime.thread_count() == 8
        start, finish = pool.book(0.0, 2.0)
        assert (start, finish) == (0.0, 2.0)
        assert pool.utilization(4.0) == pytest.approx(2.0 / (4.0 * 8))

    def test_server_handles_request_and_accounts_time(self):
        server = self._make_server()
        outcome = server.handle(HttpServletRequest("/app/echo", parameters={"msg": "x"}), 10.0)
        assert outcome.ok
        assert outcome.servlet_name == "echo"
        assert outcome.response_time > 0
        assert outcome.completion_time > 10.0
        assert outcome.cpu_seconds > 0
        assert server.completed_requests == 1

    def test_unknown_uri_is_not_ok(self):
        server = self._make_server()
        outcome = server.handle(HttpServletRequest("/app/none"), 0.0)
        assert not outcome.ok
        assert outcome.response.status == 404

    def test_external_cost_provider_inflates_response_time(self):
        plain = self._make_server(service_time_cv=0.0)
        slow = self._make_server(service_time_cv=0.0)
        slow.add_external_cost_provider(lambda: 0.5)
        fast = plain.handle(HttpServletRequest("/app/echo"), 0.0)
        delayed = slow.handle(HttpServletRequest("/app/echo"), 0.0)
        assert delayed.monitoring_overhead_seconds == pytest.approx(0.5)
        assert delayed.response_time > fast.response_time + 0.4

    def test_invalid_external_cost_provider(self):
        server = self._make_server()
        with pytest.raises(TypeError):
            server.add_external_cost_provider("not-callable")  # type: ignore[arg-type]
        server.add_external_cost_provider(lambda: -1.0)
        with pytest.raises(ValueError):
            server.handle(HttpServletRequest("/app/echo"), 0.0)

    def test_queue_overflow_rejects_with_503(self):
        server = self._make_server(max_threads=1, accept_queue=0, service_time_cv=0.0)
        server.handle(HttpServletRequest("/app/echo"), 0.0)
        second = server.handle(HttpServletRequest("/app/echo"), 0.0)
        assert second.rejected
        assert second.response.status == 503
        assert server.rejected_requests == 1

    def test_utilization_report_keys(self):
        server = self._make_server()
        server.handle(HttpServletRequest("/app/echo"), 0.0)
        report = server.utilization_report(10.0)
        assert set(report) == {"app_cpu", "db_cpu", "worker_threads"}
        assert all(0.0 <= value <= 1.0 for value in report.values())
