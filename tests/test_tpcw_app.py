"""Tests for the TPC-W application: schema, population, mixes, servlets, workload."""

from __future__ import annotations

import pytest

from repro.container.servlet import HttpServletRequest
from repro.db.engine import Database
from repro.sim.engine import SimulationEngine
from repro.sim.random import RandomStreams
from repro.tpcw.application import TpcwApplication, build_deployment
from repro.tpcw.mixes import INTERACTIONS, browsing_mix, mix_by_name, ordering_mix, shopping_mix
from repro.tpcw.population import PopulationScale, populate_database
from repro.tpcw.schema import SUBJECTS, TPCW_TABLES, create_tpcw_schema
from repro.tpcw.servlets import SERVLET_CLASSES
from repro.tpcw.workload import EmulatedBrowser, WorkloadGenerator, WorkloadPhase


class TestSchemaAndPopulation:
    def test_all_tables_created(self):
        database = Database("t")
        create_tpcw_schema(database)
        assert set(TPCW_TABLES) <= set(database.table_names())
        assert database.table("item").has_index("i_subject")
        assert database.table("order_line").has_index("ol_i_id")

    def test_population_sizes_follow_scale(self):
        database = Database("t")
        create_tpcw_schema(database)
        scale = PopulationScale.tiny()
        populate_database(database, scale, RandomStreams(1))
        assert len(database.table("item")) == scale.num_items
        assert len(database.table("customer")) == scale.num_customers
        assert len(database.table("orders")) == scale.num_orders
        assert len(database.table("order_line")) >= scale.num_orders

    def test_population_is_deterministic_per_seed(self):
        def build(seed):
            database = Database("t")
            create_tpcw_schema(database)
            populate_database(database, PopulationScale.tiny(), RandomStreams(seed))
            return [row["i_cost"] for row in database.table("item").rows()]

        assert build(5) == build(5)
        assert build(5) != build(6)

    def test_referential_integrity_of_items(self):
        database = Database("t")
        create_tpcw_schema(database)
        scale = PopulationScale.tiny()
        populate_database(database, scale, RandomStreams(2))
        author_ids = {row["a_id"] for row in database.table("author").rows()}
        for row in database.table("item").rows():
            assert row["i_a_id"] in author_ids
            assert row["i_subject"] in SUBJECTS

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            PopulationScale(num_items=0)


class TestMixes:
    @pytest.mark.parametrize("mix_factory", [browsing_mix, shopping_mix, ordering_mix])
    def test_rows_are_probability_distributions(self, mix_factory):
        mix = mix_factory()
        for source, row in mix.transitions.items():
            assert abs(sum(row.values()) - 1.0) < 1e-9
            assert source in INTERACTIONS

    def test_next_interaction_follows_cumulative_draw(self):
        mix = shopping_mix()
        row = mix.transitions["search_request"]
        first_target = next(iter(row))
        assert mix.next_interaction("search_request", 0.0) == first_target
        assert mix.next_interaction("search_request", 0.999999) in row

    def test_stationary_distribution_shapes(self):
        distribution = shopping_mix().stationary_distribution()
        assert abs(sum(distribution.values()) - 1.0) < 1e-6
        # The most-used pages dominate the rarely used admin pages.
        assert distribution["product_detail"] > distribution["admin_confirm"] * 10
        assert distribution["home"] > distribution["admin_request"] * 10
        # Ordering mix buys more than browsing mix.
        assert (
            ordering_mix().stationary_distribution()["buy_confirm"]
            > browsing_mix().stationary_distribution()["buy_confirm"]
        )

    def test_mix_by_name(self):
        assert mix_by_name("Shopping").name == "shopping"
        with pytest.raises(KeyError):
            mix_by_name("unknown")


class TestServlets:
    def test_every_interaction_has_a_servlet_class(self):
        assert set(SERVLET_CLASSES) == set(INTERACTIONS)
        # Java class names are unique and look like TPC-W classes.
        names = {cls.java_class_name for cls in SERVLET_CLASSES.values()}
        assert len(names) == len(SERVLET_CLASSES)
        assert all(name.startswith("org.tpcw.servlet.TPCW_") for name in names)

    def test_every_interaction_serves_a_page(self, tiny_deployment):
        app = TpcwApplication(tiny_deployment)
        for interaction in tiny_deployment.interaction_names():
            outcome = app.visit(interaction)
            assert outcome.ok, f"{interaction} failed with {outcome.response.status}"
            assert outcome.response.content_length > 0
            assert outcome.servlet_name == interaction

    def test_servlet_request_counters(self, tiny_deployment):
        app = TpcwApplication(tiny_deployment)
        app.visit("home")
        app.visit("home")
        assert tiny_deployment.servlet("home").request_count == 2
        assert tiny_deployment.servlet("best_sellers").request_count == 0

    def test_home_returns_promotions(self, tiny_deployment):
        app = TpcwApplication(tiny_deployment)
        outcome = app.visit("home")
        assert len(outcome.response.model["promotions"]) > 0

    def test_buy_confirm_creates_order(self, tiny_deployment):
        app = TpcwApplication(tiny_deployment)
        orders_before = len(tiny_deployment.database.table("orders"))
        outcome = app.visit("buy_confirm")
        assert outcome.ok
        assert len(tiny_deployment.database.table("orders")) == orders_before + 1

    def test_shopping_cart_session_flow(self, tiny_deployment):
        app = TpcwApplication(tiny_deployment)
        first = app.visit("shopping_cart", parameters={"i_id": 3, "qty": 2})
        session_id = first.request.session_id
        assert session_id is not None
        second = app.visit("shopping_cart", parameters={"i_id": 3, "qty": 1}, session_id=session_id)
        lines = second.response.model["lines"]
        assert any(line["item_id"] == 3 and line["quantity"] == 3 for line in lines)

    def test_admin_confirm_updates_item_cost(self, tiny_deployment):
        app = TpcwApplication(tiny_deployment)
        outcome = app.visit("admin_confirm", parameters={"i_id": 5, "cost": 55.5})
        assert outcome.ok
        row = tiny_deployment.database.execute(
            "SELECT i_cost FROM item WHERE i_id = ?", [5]
        ).rows[0]
        assert row["i_cost"] == pytest.approx(55.5)

    def test_servlet_instance_roots_on_heap(self, tiny_deployment):
        for interaction in tiny_deployment.interaction_names():
            servlet = tiny_deployment.servlet(interaction)
            assert tiny_deployment.runtime.heap.is_live(servlet.instance_root)
            assert servlet.instance_root.owner == interaction


class TestDeploymentAndWorkload:
    def test_deployment_wiring(self, tiny_deployment):
        assert len(tiny_deployment.interaction_names()) == 14
        assert tiny_deployment.url_for("home") == "/tpcw/home"
        with pytest.raises(KeyError):
            tiny_deployment.servlet("nope")

    def test_closed_loop_workload_generates_requests(self):
        engine = SimulationEngine()
        deployment = build_deployment(scale=PopulationScale.tiny(), seed=3, clock=engine.clock)
        generator = WorkloadGenerator(engine, deployment, think_time_mean=5.0)
        generator.schedule_phases([WorkloadPhase(0.0, 10)])
        generator.run(120.0)
        assert generator.completed_requests > 50
        assert generator.error_count == 0
        assert generator.active_browsers == 0  # stopped after run()
        assert generator.mean_throughput() > 0
        assert generator.mean_response_time() > 0
        # The shopping mix spreads requests over many interactions.
        assert len(generator.interaction_counts) >= 5

    def test_phase_changes_eb_population(self):
        engine = SimulationEngine()
        deployment = build_deployment(scale=PopulationScale.tiny(), seed=3, clock=engine.clock)
        generator = WorkloadGenerator(engine, deployment, think_time_mean=5.0)
        generator.schedule_phases([WorkloadPhase(0.0, 5), WorkloadPhase(60.0, 20)])
        generator.run(60.0)
        first_phase = generator.completed_requests
        generator.end_time = None
        # After the phase change the larger population produces more requests.
        generator2 = WorkloadGenerator(engine, deployment, think_time_mean=5.0)
        assert first_phase > 0

    def test_throughput_scales_with_eb_count(self):
        def run_with(ebs: int) -> float:
            engine = SimulationEngine()
            deployment = build_deployment(scale=PopulationScale.tiny(), seed=9, clock=engine.clock)
            generator = WorkloadGenerator(engine, deployment)
            generator.schedule_phases([WorkloadPhase(0.0, ebs)])
            generator.run(300.0)
            return generator.mean_throughput(60.0, 300.0)

        low = run_with(10)
        high = run_with(40)
        assert high > 2.0 * low

    def test_workload_request_hook(self):
        engine = SimulationEngine()
        deployment = build_deployment(scale=PopulationScale.tiny(), seed=3, clock=engine.clock)
        generator = WorkloadGenerator(engine, deployment)
        seen = []
        generator.on_request = lambda interaction, outcome: seen.append(interaction)
        generator.schedule_phases([WorkloadPhase(0.0, 5)])
        generator.run(60.0)
        assert len(seen) == generator.completed_requests

    def test_think_time_capped(self):
        engine = SimulationEngine()
        deployment = build_deployment(scale=PopulationScale.tiny(), seed=3, clock=engine.clock)
        generator = WorkloadGenerator(engine, deployment, think_time_mean=60.0)
        draws = [generator.think_time() for _ in range(200)]
        assert max(draws) <= 70.0

    def test_browser_session_renewal(self):
        engine = SimulationEngine()
        deployment = build_deployment(scale=PopulationScale.tiny(), seed=3, clock=engine.clock)
        generator = WorkloadGenerator(engine, deployment, session_duration_mean=30.0)
        browser = EmulatedBrowser(1, generator)
        browser.start(0.0)
        engine.run_until(300.0)
        # With a 30 s mean session duration several sessions were started.
        assert deployment.server.sessions.created_count >= 2
