"""Tests for the fault zoo and the robustness scenarios built on it.

Unit tests drive each new fault through a tiny deployment; the scenario
tests pin the PR's headline claims at ``duration_scale=0.05`` / tiny /
seed 42: backoff+breaker strictly beats naive immediate retries on SLA
cost, deterministically per seed, and the cascade-aware attribution blames
the faulty component rather than its victim.
"""

from __future__ import annotations

import pytest

from repro.experiments.reporting import (
    accounting_sanity_check,
    retry_storm_report,
    zoo_report,
)
from repro.experiments.scenarios import (
    COMPONENT_A,
    COMPONENT_B,
    ZOO_FAULT_KINDS,
    fig_retry_storm,
    fig_zoo,
    zoo_fault_spec,
)
from repro.faults.cache_stampede import CacheStampedeFault
from repro.faults.correlated_cascade import MB, CorrelatedCascadeFault
from repro.faults.gc_pause_storm import GcPauseStormFault
from repro.faults.injector import FaultInjector, FaultSpec
from repro.faults.lock_convoy import LockConvoyFault
from repro.faults.slow_downstream import SlowDownstreamFault
from repro.tpcw.application import TpcwApplication
from repro.tpcw.population import PopulationScale

TINY = PopulationScale.tiny()


class TestGcPauseStorm:
    def test_pauses_hit_requests_and_escalate(self, tiny_deployment):
        app = TpcwApplication(tiny_deployment)
        servlet = tiny_deployment.servlet("home")
        fault = GcPauseStormFault(pause_seconds=0.1, growth=0.5, period_n=0)
        servlet.attach_fault(fault)
        first = app.visit("home")
        second = app.visit("home")
        assert first.gc_pause_seconds == pytest.approx(0.1)
        # Storm 2 is (1 + growth) times storm 1: the mode escalates.
        assert second.gc_pause_seconds == pytest.approx(0.15)
        assert fault.injected_pause_seconds == pytest.approx(0.25)
        # The collector's work lands on the component's CPU account.
        assert tiny_deployment.runtime.cpu_time("home") >= 0.25

    def test_pause_capped(self, tiny_deployment):
        app = TpcwApplication(tiny_deployment)
        servlet = tiny_deployment.servlet("home")
        fault = GcPauseStormFault(
            pause_seconds=0.1, growth=1.0, max_pause_seconds=0.25, period_n=0
        )
        servlet.attach_fault(fault)
        for _ in range(5):
            outcome = app.visit("home")
        assert outcome.gc_pause_seconds == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            GcPauseStormFault(pause_seconds=0.0)
        with pytest.raises(ValueError):
            GcPauseStormFault(pause_seconds=1.0, max_pause_seconds=0.5)


class TestLockConvoy:
    def test_concurrent_visits_queue_behind_the_monitor(self, tiny_deployment):
        app = TpcwApplication(tiny_deployment)
        servlet = tiny_deployment.servlet("home")
        fault = LockConvoyFault(hold_seconds=0.2, growth=0.0, period_n=0)
        servlet.attach_fault(fault)
        # Two requests arriving at the same instant serialize: the second
        # waits for the first holder's release.
        first = app.visit("home", at_time=0.0)
        second = app.visit("home", at_time=0.0)
        assert first.fault_latency_seconds == pytest.approx(0.2)
        assert second.fault_latency_seconds == pytest.approx(0.4)  # wait + hold
        assert fault.contended
        assert fault.total_wait_seconds == pytest.approx(0.2)

    def test_no_queueing_when_arrivals_are_spread(self, tiny_deployment):
        app = TpcwApplication(tiny_deployment)
        servlet = tiny_deployment.servlet("home")
        fault = LockConvoyFault(hold_seconds=0.05, growth=0.0, period_n=0)
        servlet.attach_fault(fault)
        app.visit("home", at_time=0.0)
        late = app.visit("home", at_time=100.0)
        assert late.fault_latency_seconds == pytest.approx(0.05)
        assert fault.total_wait_seconds == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LockConvoyFault(hold_seconds=0.0)
        with pytest.raises(ValueError):
            LockConvoyFault(hold_seconds=1.0, max_hold_seconds=0.1)


class TestSlowDownstream:
    def test_extra_latency_deepens_per_trigger(self, tiny_deployment):
        app = TpcwApplication(tiny_deployment)
        servlet = tiny_deployment.servlet("home")
        fault = SlowDownstreamFault(latency_step_seconds=0.05, period_n=0)
        servlet.attach_fault(fault)
        latencies = [app.visit("home").fault_latency_seconds for _ in range(3)]
        assert latencies == pytest.approx([0.05, 0.10, 0.15])
        assert fault.degradation_level == 3
        # No shared spillover by default: other components stay fast.
        assert tiny_deployment.datasource.latency_multiplier == pytest.approx(1.0)

    def test_extra_latency_capped(self, tiny_deployment):
        app = TpcwApplication(tiny_deployment)
        servlet = tiny_deployment.servlet("home")
        fault = SlowDownstreamFault(
            latency_step_seconds=0.1, max_extra_seconds=0.25, period_n=0
        )
        servlet.attach_fault(fault)
        for _ in range(5):
            outcome = app.visit("home")
        assert outcome.fault_latency_seconds == pytest.approx(0.25)

    def test_optional_shared_spillover(self, tiny_deployment):
        app = TpcwApplication(tiny_deployment)
        servlet = tiny_deployment.servlet("home")
        fault = SlowDownstreamFault(
            latency_step_seconds=0.01,
            shared_multiplier_step=0.5,
            max_shared_multiplier=1.8,
            period_n=0,
        )
        servlet.attach_fault(fault)
        app.visit("home")
        assert tiny_deployment.datasource.latency_multiplier == pytest.approx(1.5)
        app.visit("home")
        assert tiny_deployment.datasource.latency_multiplier == pytest.approx(1.8)

    def test_validation(self):
        with pytest.raises(ValueError):
            SlowDownstreamFault(latency_step_seconds=0.0, shared_multiplier_step=0.0)
        with pytest.raises(ValueError):
            SlowDownstreamFault(latency_step_seconds=-0.1)
        with pytest.raises(ValueError):
            SlowDownstreamFault(max_extra_seconds=0.0)


class TestCacheStampede:
    def test_dogpile_charges_exactly_dogpile_size_visits(self, tiny_deployment):
        app = TpcwApplication(tiny_deployment)
        servlet = tiny_deployment.servlet("home")
        # streams=None -> deterministic countdown: fires on visit 6 (N//2=5
        # quiet visits first), then again on visit 12.
        fault = CacheStampedeFault(
            dogpile_size=3, recompute_seconds=0.08, growth=0.0, period_n=10
        )
        servlet.attach_fault(fault)
        latencies = [app.visit("home").fault_latency_seconds for _ in range(11)]
        charged = [i for i, latency in enumerate(latencies) if latency > 0]
        assert charged == [5, 6, 7]  # the trigger visit and the next two
        assert fault.stampede_count == 1
        assert fault.total_recompute_seconds == pytest.approx(3 * 0.08)

    def test_recompute_cost_escalates_per_stampede(self, tiny_deployment):
        app = TpcwApplication(tiny_deployment)
        servlet = tiny_deployment.servlet("home")
        fault = CacheStampedeFault(
            dogpile_size=1, recompute_seconds=0.1, growth=0.5, period_n=0
        )
        servlet.attach_fault(fault)
        first = app.visit("home").fault_latency_seconds
        second = app.visit("home").fault_latency_seconds
        assert first == pytest.approx(0.1)
        assert second == pytest.approx(0.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheStampedeFault(dogpile_size=0)
        with pytest.raises(ValueError):
            CacheStampedeFault(recompute_seconds=0.0)
        with pytest.raises(ValueError):
            CacheStampedeFault(recompute_seconds=1.0, max_recompute_seconds=0.1)


class TestCorrelatedCascade:
    def test_victim_pays_for_the_sources_leak(self, tiny_deployment):
        app = TpcwApplication(tiny_deployment)
        source = tiny_deployment.servlet("product_detail")
        fault = CorrelatedCascadeFault(
            victim="home", leak_bytes=1 * MB, coupling_seconds_per_mb=0.5,
            max_victim_delay_seconds=2.0, period_n=0,
        )
        source.attach_fault(fault)
        app.visit("product_detail")  # leaks 1 MB on A
        victim_outcome = app.visit("home")
        assert victim_outcome.fault_latency_seconds == pytest.approx(0.5)
        # The resource growth lives on A, the latency on B.
        assert fault.leaked_bytes_total == 1 * MB
        for _ in range(5):
            app.visit("product_detail")
        assert app.visit("home").fault_latency_seconds == pytest.approx(2.0)  # capped

    def test_victim_must_differ_from_source(self, tiny_deployment):
        TpcwApplication(tiny_deployment)
        servlet = tiny_deployment.servlet("home")
        fault = CorrelatedCascadeFault(victim="home", period_n=0)
        with pytest.raises(ValueError):
            fault._ensure_shadow(servlet)

    def test_unknown_victim_rejected_with_known_components(self, tiny_deployment):
        servlet = tiny_deployment.servlet("home")
        fault = CorrelatedCascadeFault(victim="warehouse", period_n=0)
        with pytest.raises(ValueError) as excinfo:
            fault._ensure_shadow(servlet)
        assert "warehouse" in str(excinfo.value)
        assert "product_detail" in str(excinfo.value)

    def test_injector_removal_detaches_the_victim_shadow(self, tiny_deployment):
        app = TpcwApplication(tiny_deployment)
        injector = FaultInjector(tiny_deployment)
        injector.inject_spec(
            FaultSpec(
                component="product_detail",
                kind="correlated-cascade",
                params={
                    "victim": "home",
                    "leak_bytes": 1 * MB,
                    "coupling_seconds_per_mb": 0.5,
                    "period_n": 0,
                },
            )
        )
        app.visit("product_detail")
        assert app.visit("home").fault_latency_seconds > 0
        injector.remove_all()
        assert app.visit("home").fault_latency_seconds == 0.0


class TestZooFaultSpec:
    def test_builds_every_kind_on_component_a(self):
        for kind in ZOO_FAULT_KINDS:
            spec = zoo_fault_spec(kind, period_n=7)
            assert spec.component == COMPONENT_A
            assert spec.kind == kind
            assert spec.params["period_n"] == 7
        cascade = zoo_fault_spec("correlated-cascade")
        assert cascade.params["victim"] == COMPONENT_B

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            zoo_fault_spec("bit-rot")


# --------------------------------------------------------------------------- #
# Scenario claims (duration_scale = 0.05, tiny population, seed 42)
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def storm():
    return fig_retry_storm(duration_scale=0.05, seed=42, scale=TINY, ebs=30)


class TestRetryStormScenario:
    def test_backoff_plus_breaker_strictly_cheaper(self, storm):
        naive, resilient = storm.sla_cost("naive"), storm.sla_cost("resilient")
        assert naive > resilient
        assert storm.cost_delta() > 0

    def test_breaker_converts_timeouts_into_refusals(self, storm):
        naive = storm.results["naive"]
        resilient = storm.results["resilient"]
        assert resilient.client_timeouts < naive.client_timeouts
        assert resilient.accounting["breaker_refusals"] > 0
        assert naive.accounting["breaker_refusals"] == 0

    def test_accounting_invariant_both_modes(self, storm):
        for result in storm.results.values():
            accounting_sanity_check(result)

    def test_report_renders_and_claim_holds(self, storm):
        report = retry_storm_report(storm)
        assert "resilient SLA cost < naive SLA cost" in report
        assert "holds" in report

    def test_deterministic_per_seed(self):
        first = fig_retry_storm(duration_scale=0.02, seed=42, scale=TINY, ebs=25)
        second = fig_retry_storm(duration_scale=0.02, seed=42, scale=TINY, ebs=25)
        assert first.summary_rows() == second.summary_rows()
        assert first.cost_delta() == pytest.approx(second.cost_delta())


class TestZooScenario:
    @pytest.fixture(scope="class")
    def zoo(self):
        # One latency-mode fault plus the attribution stress test; the full
        # five-kind sweep runs via `repro zoo` / the ablation matrix.
        return fig_zoo(
            duration_scale=0.05,
            seed=42,
            scale=TINY,
            ebs=30,
            kinds=["slow-downstream", "correlated-cascade"],
        )

    def test_attribution_blames_the_faulty_component(self, zoo):
        for row in zoo.verdict_rows():
            assert row["holds"], row
        assert zoo.top_component("slow-downstream") == COMPONENT_A

    def test_cascade_blames_source_not_victim(self, zoo):
        assert zoo.top_component("correlated-cascade") == COMPONENT_A
        ranked = zoo.attributions["correlated-cascade"].ranking()
        assert COMPONENT_B in ranked  # the victim is visible, just not first
        assert ranked.index(COMPONENT_B) > 0

    def test_report_renders(self, zoo):
        report = zoo_report(zoo)
        assert "slow-downstream" in report
        assert "correlated-cascade" in report
