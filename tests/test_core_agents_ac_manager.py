"""Tests for monitoring agents, the Aspect Component, its proxy and the Manager Agent."""

from __future__ import annotations

import pytest

from repro.aop.weaver import Weaver
from repro.core.aspect_component import (
    ASPECT_DOMAIN,
    AspectComponent,
    AspectComponentProxy,
    aspect_object_name,
)
from repro.core.manager_agent import (
    AGING_SUSPECT_NOTIFICATION,
    MANAGER_OBJECT_NAME,
    ManagerAgent,
)
from repro.core.monitoring_agents import (
    AGENT_DOMAIN,
    ConnectionPoolAgent,
    CpuAgent,
    HeapAgent,
    ObjectSizeAgent,
    ThreadAgent,
    default_agents,
)
from repro.core.overhead import OverheadAccount
from repro.core.resource_map import ComponentSample
from repro.db.engine import Database
from repro.db.jdbc import DataSource
from repro.db.table import Column, ColumnType
from repro.jmx.mbean_server import MBeanServer
from repro.jvm.runtime import JvmRuntime


@pytest.fixture
def runtime() -> JvmRuntime:
    return JvmRuntime(heap_bytes=50 * 1024 * 1024)


class TestMonitoringAgents:
    def test_object_size_agent_tracks_registered_roots(self, runtime):
        agent = ObjectSizeAgent(runtime)
        root = runtime.allocate("org.tpcw.Home", 2048, owner="home", root=True)
        agent.register_component("home", root)
        assert agent.sample("home") == {"object_size": 2048.0}
        leak = runtime.allocate("Leak", 1000, owner="home")
        root.add_reference(leak)
        assert agent.sample("home")["object_size"] == 3048.0
        assert agent.sample("unknown") == {"object_size": 0.0}
        assert agent.get_attribute("ComponentCount") == 1
        agent.unregister_component("home")
        assert agent.invoke("components") == []

    def test_heap_agent(self, runtime):
        agent = HeapAgent(runtime)
        runtime.allocate("X", 1024)
        sample = agent.sample("anything")
        assert sample["heap_used"] == 1024.0
        assert sample["heap_free"] == runtime.total_memory() - 1024.0
        assert agent.get_attribute("HeapCapacity") == runtime.total_memory()

    def test_cpu_and_thread_agents(self, runtime):
        cpu = CpuAgent(runtime)
        threads = ThreadAgent(runtime)
        runtime.record_cpu_time("home", 1.5)
        runtime.threads.spawn("t1", owner="home")
        assert cpu.sample("home") == {"cpu_seconds": 1.5}
        thread_sample = threads.sample("home")
        assert thread_sample["threads"] == 1.0
        assert thread_sample["threads_total"] >= 1.0

    def test_connection_pool_agent(self, runtime):
        database = Database("x")
        database.create_table("t", [Column("id", ColumnType.INTEGER, primary_key=True)])
        datasource = DataSource(database, pool_size=3)
        agent = ConnectionPoolAgent(datasource)
        connection = datasource.get_connection()
        sample = agent.sample("any")
        assert sample["connections_active"] == 1.0
        assert sample["connections_available"] == 2.0
        connection.close()
        assert agent.get_attribute("PoolSize") == 3

    def test_disabled_agent_returns_empty(self, runtime):
        agent = HeapAgent(runtime)
        agent.disable()
        assert agent.sample("x") == {}
        assert agent.get_attribute("Enabled") is False
        agent.enable()
        assert agent.sample("x") != {}

    def test_default_agent_set(self, runtime):
        agents = default_agents(runtime)
        types = {agent.agent_type for agent in agents}
        assert {"object-size", "heap", "cpu", "threads"} <= types


class _FakeComponent:
    """Minimal component the AC can be woven around."""

    java_class_name = "org.tpcw.servlet.TPCW_home_interaction"
    component_name = "home"

    def __init__(self, runtime: JvmRuntime) -> None:
        self.runtime = runtime
        self.root = runtime.allocate(self.java_class_name, 2048, owner="home", root=True)
        self.leak_next = 0

    def service(self):
        if self.leak_next:
            leak = self.runtime.allocate("Leak", self.leak_next, owner="home")
            self.root.add_reference(leak)
        return "page"


def _build_monitored_component(runtime):
    """Wire server + agents + manager + AC around a fake component."""
    server = MBeanServer()
    object_size_agent = ObjectSizeAgent(runtime)
    server.register(object_size_agent.object_name(), object_size_agent)
    heap_agent = HeapAgent(runtime)
    server.register(heap_agent.object_name(), heap_agent)
    manager = ManagerAgent(server)
    server.register(MANAGER_OBJECT_NAME, manager)

    component = _FakeComponent(runtime)
    object_size_agent.register_component("home", component.root)
    manager.register_component("home")

    overhead = OverheadAccount(sample_cost_seconds=0.001)
    aspect = AspectComponent(
        component_name="home",
        java_class_name=component.java_class_name,
        mbean_server=server,
        overhead=overhead,
        method_pattern="service",
    )
    weaver = Weaver()
    weaver.register_aspect(aspect)
    assert weaver.weave_object(component) == ["service"]
    proxy = AspectComponentProxy(aspect)
    server.register(proxy.object_name(), proxy)
    return server, manager, component, aspect, overhead


class TestAspectComponent:
    def test_samples_flow_to_manager(self, runtime):
        server, manager, component, aspect, overhead = _build_monitored_component(runtime)
        component.leak_next = 1000
        component.service()
        assert aspect.invocation_count == 1
        assert aspect.samples_sent == 1
        assert manager.map.sample_count == 1
        # The AC measured the 1000-byte growth of the component's state.
        assert aspect.last_deltas["object_size"] == pytest.approx(1000.0)
        assert manager.map.consumption("home") >= 1000.0
        # 2 agents sampled before + 2 after = 4 charges.
        assert overhead.sample_count == 4
        assert overhead.pending_seconds == pytest.approx(0.004)

    def test_disabled_ac_does_not_sample(self, runtime):
        server, manager, component, aspect, overhead = _build_monitored_component(runtime)
        aspect.disable()
        component.service()
        assert aspect.invocation_count == 0
        assert manager.map.sample_count == 0
        assert overhead.sample_count == 0

    def test_proxy_controls_and_reports(self, runtime):
        server, manager, component, aspect, _ = _build_monitored_component(runtime)
        proxy_name = aspect_object_name("home")
        assert server.get_attribute(proxy_name, "ComponentName") == "home"
        assert server.get_attribute(proxy_name, "Enabled") is True
        server.invoke(proxy_name, "deactivate")
        assert aspect.enabled is False
        server.set_attribute(proxy_name, "Enabled", True)
        assert aspect.enabled is True
        component.service()
        assert server.get_attribute(proxy_name, "InvocationCount") == 1
        last = server.invoke(proxy_name, "last_sample")
        assert "object_size" in last["values"]
        server.invoke(proxy_name, "reset")
        assert server.get_attribute(proxy_name, "InvocationCount") == 0

    def test_ac_works_without_manager(self, runtime):
        server = MBeanServer()
        agent = ObjectSizeAgent(runtime)
        server.register(agent.object_name(), agent)
        component = _FakeComponent(runtime)
        agent.register_component("home", component.root)
        aspect = AspectComponent("home", component.java_class_name, server)
        weaver = Weaver()
        weaver.register_aspect(aspect)
        weaver.weave_object(component)
        component.service()
        assert aspect.invocation_count == 1
        assert aspect.samples_sent == 0  # nowhere to send


class TestManagerAgent:
    def test_snapshot_polls_all_known_components(self, runtime):
        server, manager, component, _, _ = _build_monitored_component(runtime)
        sizes = manager.snapshot(timestamp=10.0)
        assert sizes["home"] == pytest.approx(2048.0)
        assert manager.get_attribute("SnapshotCount") == 1
        assert len(manager.map.series("home")) == 1
        assert len(manager.map.series("<jvm>", "heap_used")) == 1

    def test_root_cause_and_map_rows(self, runtime):
        server, manager, component, _, _ = _build_monitored_component(runtime)
        component.leak_next = 4096
        for _ in range(5):
            component.service()
        report = manager.determine_root_cause()
        assert report.top().component == "home"
        rows = manager.build_map()
        assert any(row["component"] == "home" for row in rows)
        assert manager.get_attribute("StrategyName") == "paper-map"

    def test_activate_deactivate_via_proxies(self, runtime):
        server, manager, component, aspect, _ = _build_monitored_component(runtime)
        assert manager.deactivate_component("home") is True
        assert aspect.enabled is False
        assert manager.component_status() == {"home": False}
        assert manager.activate_all() == 1
        assert aspect.enabled is True
        assert manager.deactivate_all() == 1
        assert manager.activate_component("missing") is False

    def test_aging_alert_notification(self, runtime):
        server, manager, component, _, _ = _build_monitored_component(runtime)
        manager.alert_growth_bytes = 10_000.0
        alerts = []
        manager.add_notification_listener(lambda n, h: alerts.append(n))
        component.leak_next = 6000
        component.service()
        component.service()
        assert len(alerts) == 1
        assert alerts[0].type == AGING_SUSPECT_NOTIFICATION
        assert alerts[0].attributes["component"] == "home"
        # The alert fires only once per component.
        component.service()
        assert len(alerts) == 1

    def test_record_sample_type_check(self, runtime):
        _, manager, _, _, _ = _build_monitored_component(runtime)
        with pytest.raises(TypeError):
            manager.record_sample({"not": "a sample"})
        manager.record_sample(ComponentSample("home", 0.0, values={"object_size": 1.0}))

    def test_flush_scans_each_touched_series_once(self, runtime, monkeypatch):
        # ISSUE 5 satellite: the alert check is folded into the flush, so a
        # flush pays at most one consumption scan per touched series (the
        # pre-fold intake scanned twice: alert check + folded-growth update).
        from repro.core.resource_map import ComponentStats

        _, manager, _, _, _ = _build_monitored_component(runtime)
        for index in range(6):
            manager.record_sample(
                ComponentSample(
                    f"c{index % 2}",
                    float(index),
                    deltas={"object_size": 64.0},
                    values={"object_size": 64.0 * (index + 1)},
                )
            )
        calls = []
        original = ComponentStats.consumption

        def counting(self, metric="object_size"):
            calls.append(self.name)
            return original(self, metric)

        monkeypatch.setattr(ComponentStats, "consumption", counting)
        manager._flush_samples()
        assert sorted(calls) == ["c0", "c1"]

    def test_folded_alert_still_fires_exactly_once_per_component(self, runtime):
        _, manager, _, _, _ = _build_monitored_component(runtime)
        manager.alert_growth_bytes = 1000.0
        alerts = []
        manager.add_notification_listener(lambda n, h: alerts.append(n))
        for index in range(4):
            manager.record_sample(
                ComponentSample("leaky", float(index), deltas={"object_size": 400.0})
            )
        manager._flush_samples()
        assert [n.attributes["component"] for n in alerts] == ["leaky"]
        assert alerts[0].attributes["growth_bytes"] >= 1000.0
        # Further growth after the alert never re-fires it.
        manager.record_sample(
            ComponentSample("leaky", 10.0, deltas={"object_size": 4000.0})
        )
        manager._flush_samples()
        assert len(alerts) == 1
