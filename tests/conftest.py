"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.framework import FrameworkConfig, MonitoringFramework
from repro.sim.engine import SimulationEngine
from repro.sim.random import RandomStreams
from repro.tpcw.application import TpcwDeployment, build_deployment
from repro.tpcw.population import PopulationScale


@pytest.fixture
def engine() -> SimulationEngine:
    """A fresh discrete-event engine."""
    return SimulationEngine()


@pytest.fixture
def streams() -> RandomStreams:
    """Deterministic random streams."""
    return RandomStreams(seed=1234)


@pytest.fixture
def tiny_deployment(engine: SimulationEngine) -> TpcwDeployment:
    """A TPC-W deployment at the smallest population scale, sharing the engine clock."""
    return build_deployment(scale=PopulationScale.tiny(), seed=7, clock=engine.clock)


@pytest.fixture
def monitored_deployment(engine: SimulationEngine, tiny_deployment: TpcwDeployment):
    """A tiny deployment with the monitoring framework installed.

    Yields ``(deployment, framework)``.
    """
    framework = MonitoringFramework(
        tiny_deployment,
        engine=engine,
        config=FrameworkConfig(sample_cost_seconds=1e-3, snapshot_interval=30.0),
    )
    framework.install()
    yield tiny_deployment, framework
    framework.uninstall()
