"""Tests for the cross-run calibration store (ISSUE 5 tentpole).

Covers the persistence layer in isolation — bit-identical round-trips,
unknown signatures, corrupted/truncated stores falling back to a cold start
with a warning — plus the workload-signature scheme (seed-independent,
sizing/rate-sensitive), the adaptive policy's warm-start surface, and the
runner wiring that persists and reapplies the calibration.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.container.server import ServerConfig
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.faults.injector import FaultSpec
from repro.slo.adaptive_policy import AdaptiveRejuvenationPolicy
from repro.slo.calibration import (
    CalibrationRecord,
    CalibrationStore,
    CalibrationStoreWarning,
    ResourceCalibration,
    workload_signature,
)
from repro.slo.predictors import PredictionErrorStats
from repro.tpcw.population import PopulationScale


def make_stats(folds) -> PredictionErrorStats:
    stats = PredictionErrorStats()
    for predicted, realized in folds:
        stats.fold(predicted, realized)
    return stats


def make_policy(**overrides) -> AdaptiveRejuvenationPolicy:
    params = dict(base_horizon=100.0, min_horizon=25.0, max_horizon=400.0)
    params.update(overrides)
    return AdaptiveRejuvenationPolicy(**params)


# --------------------------------------------------------------------------- #
# PredictionErrorStats state round-trip
# --------------------------------------------------------------------------- #
class TestStatsState:
    def test_round_trip_is_bit_identical(self):
        stats = make_stats([(100.0, 93.7), (55.5, 61.2), (0.125, 0.3)])
        rebuilt = PredictionErrorStats.from_state(stats.to_state())
        assert rebuilt.to_state() == stats.to_state()
        assert rebuilt.bias_seconds == stats.bias_seconds
        assert rebuilt.mae_seconds == stats.mae_seconds
        assert rebuilt.calibration == stats.calibration

    def test_json_round_trip_is_bit_identical(self):
        # Through an actual JSON encode/decode: repr-exact float survival.
        stats = make_stats([(1234.5678, 901.2345), (3.3, 7.7)])
        decoded = json.loads(json.dumps(stats.to_state()))
        assert PredictionErrorStats.from_state(decoded).to_state() == stats.to_state()

    def test_merge_adds_sums(self):
        a = make_stats([(10.0, 5.0)])
        b = make_stats([(20.0, 25.0), (7.0, 7.0)])
        merged = a.copy()
        merged.merge(b)
        assert merged.count == 3
        reference = make_stats([(10.0, 5.0), (20.0, 25.0), (7.0, 7.0)])
        assert merged.to_state() == reference.to_state()

    def test_copy_is_independent(self):
        original = make_stats([(10.0, 5.0)])
        clone = original.copy()
        clone.fold(1.0, 1.0)
        assert original.count == 1
        assert clone.count == 2

    @pytest.mark.parametrize(
        "state",
        [
            "not-a-dict",
            {"count": -1, "sum_error": 0.0, "sum_abs_error": 0.0, "sum_ratio": 0.0},
            {"count": 1.5, "sum_error": 0.0, "sum_abs_error": 0.0, "sum_ratio": 0.0},
            {"count": True, "sum_error": 0.0, "sum_abs_error": 0.0, "sum_ratio": 0.0},
            {"count": 1, "sum_error": "x", "sum_abs_error": 0.0, "sum_ratio": 0.0},
            {"count": 1, "sum_error": 0.0, "sum_abs_error": True, "sum_ratio": 0.0},
            {"count": 1},
        ],
    )
    def test_from_state_rejects_malformed(self, state):
        with pytest.raises((TypeError, ValueError, KeyError)):
            PredictionErrorStats.from_state(state)

    def test_difference_subtracts_a_snapshot(self):
        stats = make_stats([(10.0, 5.0), (20.0, 25.0)])
        snapshot = stats.copy()
        stats.fold(7.0, 7.0)
        delta = stats.difference(snapshot)
        assert delta.to_state() == make_stats([(7.0, 7.0)]).to_state()
        with pytest.raises(ValueError):
            snapshot.difference(stats)  # baseline with more folds


# --------------------------------------------------------------------------- #
# Store round-trip + corruption
# --------------------------------------------------------------------------- #
class TestCalibrationStore:
    def populated_store(self, path) -> CalibrationStore:
        store = CalibrationStore(str(path))
        policy = make_policy()
        policy.predictor("heap").stats.merge(make_stats([(90.0, 80.0), (30.0, 28.5)]))
        policy._adapt("heap", 1.0)  # converge away from base
        policy.predictor("connections").stats.merge(make_stats([(10.0, 40.0)]))
        store.record_run("sig-a", policy)
        store.save()
        return store

    def test_save_load_round_trip_bit_identical(self, tmp_path):
        path = tmp_path / "calibration.json"
        store = self.populated_store(path)
        record = store.lookup("sig-a")
        reloaded = CalibrationStore(str(path))
        assert reloaded.loaded_from_disk
        assert reloaded.signatures() == ["sig-a"]
        loaded = reloaded.lookup("sig-a")
        assert loaded.runs == record.runs
        assert sorted(loaded.resources) == sorted(record.resources)
        for resource in record.resources:
            assert (
                loaded.resources[resource].stats.to_state()
                == record.resources[resource].stats.to_state()
            )
            assert (
                loaded.resources[resource].horizon_s
                == record.resources[resource].horizon_s
            )

    def test_unknown_signature_is_cold(self, tmp_path):
        store = self.populated_store(tmp_path / "calibration.json")
        assert store.lookup("some-other-workload") is None

    def test_missing_file_is_silent_cold_start(self, tmp_path, recwarn):
        store = CalibrationStore(str(tmp_path / "nope" / "calibration.json"))
        assert not store.loaded_from_disk
        assert len(store) == 0
        assert not any(
            isinstance(w.message, CalibrationStoreWarning) for w in recwarn.list
        )

    def test_truncated_json_warns_and_cold_starts(self, tmp_path):
        path = tmp_path / "calibration.json"
        self.populated_store(path)
        content = path.read_text()
        path.write_text(content[: len(content) // 2])
        with pytest.warns(CalibrationStoreWarning, match="starting cold"):
            store = CalibrationStore(str(path))
        assert not store.loaded_from_disk
        assert store.lookup("sig-a") is None

    @pytest.mark.parametrize(
        "content",
        [
            "",  # empty file
            "\x00\x01garbage\xff",  # binary junk
            "[1, 2, 3]",  # valid JSON, wrong shape
            '{"workloads": {}}',  # missing version
            '{"version": 999, "workloads": {}}',  # unsupported version
            '{"version": 1, "workloads": []}',  # workloads not an object
            '{"version": 1, "workloads": {"s": {"runs": "x", "resources": {}}}}',
            '{"version": 1, "workloads": {"s": {"runs": 1, "resources": '
            '{"heap": {"horizon_s": -5, "stats": {"count": 0, "sum_error": 0,'
            ' "sum_abs_error": 0, "sum_ratio": 0}}}}}}',
        ],
    )
    def test_garbage_store_warns_and_cold_starts(self, tmp_path, content):
        path = tmp_path / "calibration.json"
        path.write_text(content)
        with pytest.warns(CalibrationStoreWarning):
            store = CalibrationStore(str(path))
        assert len(store) == 0

    def test_corrupt_store_is_replaced_on_next_save(self, tmp_path):
        path = tmp_path / "calibration.json"
        path.write_text("garbage{{{")
        with pytest.warns(CalibrationStoreWarning):
            store = CalibrationStore(str(path))
        store.record_run("sig-b", make_policy())
        store.save()
        reloaded = CalibrationStore(str(path))
        assert reloaded.loaded_from_disk
        assert reloaded.signatures() == ["sig-b"]

    def test_save_creates_parent_directory(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "calibration.json"
        store = CalibrationStore(str(path))
        store.record_run("sig", make_policy())
        store.save()
        assert os.path.exists(path)

    def test_record_run_accumulates_runs_and_stats(self, tmp_path):
        store = CalibrationStore(str(tmp_path / "calibration.json"))
        first = make_policy()
        first.predictor("heap").stats.merge(make_stats([(10.0, 10.0), (20.0, 25.0)]))
        store.record_run("sig", first)
        second = make_policy()
        second.predictor("heap").stats.merge(make_stats([(5.0, 4.0)]))
        second._adapt("heap", 1.0)
        store.record_run("sig", second)
        record = store.lookup("sig")
        assert record.runs == 2
        assert record.resources["heap"].stats.count == 3
        # The horizon is the *latest* run's converged value.
        assert record.resources["heap"].horizon_s == pytest.approx(
            second.horizon("heap")
        )

    def test_rerecording_a_reused_policy_never_double_counts(self, tmp_path):
        # A policy instance run (and recorded) twice must contribute each
        # prediction exactly once: record_run consumes only the delta since
        # the previous recording.
        store = CalibrationStore(str(tmp_path / "calibration.json"))
        policy = make_policy()
        policy.predictor("heap").stats.merge(make_stats([(10.0, 10.0), (20.0, 25.0)]))
        store.record_run("sig", policy)
        assert store.lookup("sig").resources["heap"].stats.count == 2
        # Second "run" with the same instance folds one more prediction.
        policy.predictor("heap").stats.fold(5.0, 4.0)
        store.record_run("sig", policy)
        record = store.lookup("sig")
        assert record.runs == 2
        assert record.resources["heap"].stats.count == 3  # not 2 + 3
        reference = make_stats([(10.0, 10.0), (20.0, 25.0), (5.0, 4.0)])
        assert record.resources["heap"].stats.to_state() == reference.to_state()


# --------------------------------------------------------------------------- #
# Workload signatures
# --------------------------------------------------------------------------- #
def leak_config(**overrides) -> ExperimentConfig:
    params = dict(
        name="sig-test",
        seed=42,
        constant_ebs=100,
        duration=180.0,
        faults=[
            FaultSpec(
                component="product_detail",
                kind="memory-leak",
                params={"leak_bytes": 262144, "period_n": 25},
            )
        ],
        server_config=ServerConfig(heap_bytes=4_000_000),
        rejuvenation_channels=["heap"],
    )
    params.update(overrides)
    return ExperimentConfig(**params)


class TestWorkloadSignature:
    def test_seed_independent(self):
        assert workload_signature(leak_config(seed=1)) == workload_signature(
            leak_config(seed=999)
        )

    def test_scenario_override_replaces_name(self):
        a = workload_signature(leak_config(name="run-0"), scenario="stable")
        b = workload_signature(leak_config(name="run-1"), scenario="stable")
        assert a == b
        assert "scenario=stable" in a

    @pytest.mark.parametrize(
        "overrides",
        [
            {"duration": 360.0},
            {"constant_ebs": 200},
            {"mix_name": "browsing"},
            {"server_config": ServerConfig(heap_bytes=8_000_000)},
            {"server_config": ServerConfig(heap_bytes=4_000_000, pool_size=10)},
            {
                "faults": [
                    FaultSpec(
                        component="product_detail",
                        kind="memory-leak",
                        params={"leak_bytes": 262144, "period_n": 100},
                    )
                ]
            },
            {"faults": [FaultSpec(component="home", kind="connection-leak")]},
            {"rejuvenation_channels": ["heap", "connections"]},
        ],
    )
    def test_sensitive_to_workload_knobs(self, overrides):
        assert workload_signature(leak_config()) != workload_signature(
            leak_config(**overrides)
        )

    def test_fault_order_insensitive(self):
        one = leak_config(
            faults=[
                FaultSpec(component="home", kind="connection-leak"),
                FaultSpec(component="product_detail", kind="memory-leak"),
            ]
        )
        two = leak_config(
            faults=[
                FaultSpec(component="product_detail", kind="memory-leak"),
                FaultSpec(component="home", kind="connection-leak"),
            ]
        )
        assert workload_signature(one) == workload_signature(two)


# --------------------------------------------------------------------------- #
# Policy warm-start surface
# --------------------------------------------------------------------------- #
class TestWarmStart:
    def record(self, horizon=60.0, stats=None) -> CalibrationRecord:
        return CalibrationRecord(
            signature="sig",
            runs=1,
            resources={
                "heap": ResourceCalibration(
                    horizon_s=horizon,
                    stats=stats or make_stats([(10.0, 12.0)]),
                )
            },
        )

    def test_warm_start_opens_at_stored_horizon(self):
        policy = make_policy(warm_start=self.record(horizon=60.0))
        assert policy.warm_started
        assert policy.horizon("heap") == pytest.approx(60.0)
        assert policy.opening_horizon("heap") == pytest.approx(60.0)

    def test_cold_policy_opens_at_base(self):
        policy = make_policy()
        assert not policy.warm_started
        assert policy.opening_horizon("heap") == policy.base_horizon

    @pytest.mark.parametrize("stored,expected", [(1.0, 25.0), (9999.0, 400.0)])
    def test_warm_start_clamps_to_bounds(self, stored, expected):
        policy = make_policy(warm_start=self.record(horizon=stored))
        assert policy.horizon("heap") == pytest.approx(expected)

    def test_prior_stats_kept_separate_from_run_stats(self):
        prior = make_stats([(10.0, 12.0), (20.0, 18.0)])
        policy = make_policy(warm_start=self.record(stats=prior))
        predictor = policy.predictor("heap")
        # The running predictor starts the run at zero — prior runs live in
        # prior_stats so the store never double-counts a run's predictions.
        assert predictor.stats.count == 0
        assert policy.prior_stats("heap").count == 2
        rows = policy.predictor_rows()
        assert rows[0]["prior_predictions"] == 2

    def test_warm_start_leaves_other_resources_cold(self):
        policy = make_policy(warm_start=self.record())
        assert policy.horizon("connections") == policy.base_horizon
        assert policy.prior_stats("connections") is None

    def test_apply_warm_start_reports_resources_seeded(self):
        policy = make_policy()
        assert policy.apply_warm_start(self.record()) == 1
        assert policy.warm_started


# --------------------------------------------------------------------------- #
# Runner wiring
# --------------------------------------------------------------------------- #
def runner_config(store, policy, seed=42) -> ExperimentConfig:
    return ExperimentConfig(
        name=f"calibration-runner-{seed}",
        seed=seed,
        scale=PopulationScale.tiny(),
        constant_ebs=60,
        duration=90.0,
        monitored=True,
        faults=[
            FaultSpec(
                component="product_detail",
                kind="memory-leak",
                params={"leak_bytes": 262144, "period_n": 25},
            )
        ],
        snapshot_interval=2.0,
        server_config=ServerConfig(heap_bytes=4_000_000),
        rejuvenation=policy,
        rejuvenation_channels=["heap"],
        calibration_store=store,
        calibration_signature="runner-integration",
    )


class TestRunnerWiring:
    def test_run_persists_and_next_run_warm_starts(self, tmp_path):
        path = tmp_path / "calibration.json"
        store = CalibrationStore(str(path))
        first_policy = AdaptiveRejuvenationPolicy(base_horizon=45.0, min_horizon=10.0)
        run_experiment(runner_config(store, first_policy, seed=42))
        assert os.path.exists(path)
        record = store.lookup("runner-integration")
        assert record is not None and record.runs == 1
        assert "heap" in record.resources
        assert not first_policy.warm_started

        second_policy = AdaptiveRejuvenationPolicy(base_horizon=45.0, min_horizon=10.0)
        run_experiment(runner_config(store, second_policy, seed=43))
        assert second_policy.warm_started
        assert second_policy.opening_horizon("heap") == pytest.approx(
            record.resources["heap"].horizon_s
        )
        assert store.lookup("runner-integration").runs == 2

    def test_derived_signature_ignores_per_run_names(self, tmp_path):
        # Without an explicit calibration_signature, the runner derives one
        # from the workload knobs alone: two runs whose configs differ only
        # in name (the "…-run0"/"…-run1" pattern) and seed must share a
        # record, so the second run warm-starts instead of cold-missing.
        store = CalibrationStore(str(tmp_path / "calibration.json"))
        first = AdaptiveRejuvenationPolicy(base_horizon=45.0, min_horizon=10.0)
        config = runner_config(store, first, seed=42)
        config.calibration_signature = None
        run_experiment(config)
        second = AdaptiveRejuvenationPolicy(base_horizon=45.0, min_horizon=10.0)
        config = runner_config(store, second, seed=43)  # different name + seed
        config.calibration_signature = None
        run_experiment(config)
        assert second.warm_started
        assert len(store) == 1
        assert store.lookup(store.signatures()[0]).runs == 2

    def test_store_ignored_for_non_adaptive_policies(self, tmp_path):
        from repro.baselines.rejuvenation import ProactiveRejuvenationPolicy

        store = CalibrationStore(str(tmp_path / "calibration.json"))
        policy = ProactiveRejuvenationPolicy(horizon=45.0, microreboot_downtime=0.25)
        run_experiment(runner_config(store, policy, seed=42))
        assert len(store) == 0
        assert not os.path.exists(tmp_path / "calibration.json")
