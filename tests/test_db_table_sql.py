"""Tests for tables, the SQL parser and query execution."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.engine import Database, SqlExecutionError
from repro.db.sql import (
    Aggregate,
    ColumnRef,
    InsertStatement,
    Literal,
    Parameter,
    SelectStatement,
    SqlSyntaxError,
    parse_sql,
)
from repro.db.table import Column, ColumnType, Table, UniqueViolationError


def _people_table() -> Table:
    return Table(
        "people",
        [
            Column("id", ColumnType.INTEGER, primary_key=True),
            Column("name", ColumnType.VARCHAR),
            Column("age", ColumnType.INTEGER),
            Column("city", ColumnType.VARCHAR),
        ],
    )


class TestTable:
    def test_insert_and_pk_lookup(self):
        table = _people_table()
        table.insert({"id": 1, "name": "Ann", "age": 31, "city": "BCN"})
        assert table.get_by_pk(1)["name"] == "Ann"
        assert table.get_by_pk(99) is None
        assert len(table) == 1

    def test_duplicate_pk_rejected(self):
        table = _people_table()
        table.insert({"id": 1, "name": "Ann", "age": 31, "city": "BCN"})
        with pytest.raises(UniqueViolationError):
            table.insert({"id": 1, "name": "Bob", "age": 20, "city": "MAD"})

    def test_type_validation(self):
        table = _people_table()
        with pytest.raises(TypeError):
            table.insert({"id": 1, "name": 42, "age": 31, "city": "BCN"})
        with pytest.raises(KeyError):
            table.insert({"id": 2, "name": "X", "age": 1, "city": "Y", "extra": 1})

    def test_secondary_index_lookup_and_maintenance(self):
        table = _people_table()
        table.create_index("city")
        for index in range(6):
            table.insert({"id": index, "name": f"P{index}", "age": 20 + index,
                          "city": "BCN" if index % 2 == 0 else "MAD"})
        assert len(table.lookup_ids("city", "BCN")) == 3
        # Update moves rows between buckets.
        ids = table.lookup_ids("city", "MAD")
        table.update_rows(ids, {"city": "BCN"})
        assert len(table.lookup_ids("city", "BCN")) == 6
        # Delete removes from the index.
        table.delete_rows(table.lookup_ids("city", "BCN"))
        assert len(table) == 0

    def test_update_primary_key_rejected(self):
        table = _people_table()
        row_id = table.insert({"id": 1, "name": "A", "age": 1, "city": "X"})
        with pytest.raises(ValueError):
            table.update_rows([row_id], {"id": 2})

    def test_duplicate_column_definition_rejected(self):
        with pytest.raises(ValueError):
            Table("t", [Column("a", ColumnType.INTEGER), Column("a", ColumnType.INTEGER)])


class TestSqlParser:
    def test_select_star(self):
        statement = parse_sql("SELECT * FROM item")
        assert isinstance(statement, SelectStatement)
        assert statement.star and statement.table == "item"

    def test_select_with_everything(self):
        statement = parse_sql(
            "SELECT i.i_id, SUM(ol.ol_qty) AS sold FROM order_line ol "
            "JOIN item i ON ol.ol_i_id = i.i_id WHERE i_subject = ? AND ol_qty > 2 "
            "GROUP BY i.i_id ORDER BY sold DESC LIMIT 10"
        )
        assert isinstance(statement, SelectStatement)
        assert statement.alias == "ol"
        assert len(statement.joins) == 1
        assert statement.joins[0].alias == "i"
        assert len(statement.where) == 2
        assert isinstance(statement.where[0].rhs, Parameter)
        assert isinstance(statement.where[1].rhs, Literal)
        assert statement.group_by[0] == ColumnRef("i_id", "i")
        assert statement.order_by[0].descending
        assert statement.limit == 10
        assert isinstance(statement.items[1].expression, Aggregate)

    def test_parameters_are_positional(self):
        statement = parse_sql("SELECT a FROM t WHERE b = ? AND c = ?")
        assert [condition.rhs.index for condition in statement.where] == [0, 1]

    def test_insert_update_delete(self):
        insert = parse_sql("INSERT INTO t (a, b) VALUES (?, 'x')")
        assert isinstance(insert, InsertStatement)
        assert insert.columns == ["a", "b"]
        update = parse_sql("UPDATE t SET a = 1, b = ? WHERE c = 3")
        assert update.assignments[0] == ("a", Literal(1))
        delete = parse_sql("DELETE FROM t WHERE a = 'gone'")
        assert delete.table == "t"

    def test_string_escaping(self):
        statement = parse_sql("SELECT a FROM t WHERE b = 'O''Brien'")
        assert statement.where[0].rhs == Literal("O'Brien")

    def test_syntax_errors(self):
        for bad in [
            "",
            "SELEC a FROM t",
            "SELECT FROM t",
            "SELECT a FROM t WHERE",
            "INSERT INTO t (a) VALUES (1, 2)",
            "SELECT a FROM t LIMIT x",
            "SELECT a FROM t JOIN u ON a > b",
        ]:
            with pytest.raises(SqlSyntaxError):
                parse_sql(bad)

    def test_null_and_boolean_literals(self):
        statement = parse_sql("SELECT a FROM t WHERE b = NULL AND c = TRUE")
        assert statement.where[0].rhs == Literal(None)
        assert statement.where[1].rhs == Literal(True)


class TestDatabaseExecution:
    @pytest.fixture
    def database(self) -> Database:
        database = Database("test")
        database.create_table(
            "item",
            [
                Column("i_id", ColumnType.INTEGER, primary_key=True),
                Column("i_title", ColumnType.VARCHAR),
                Column("i_subject", ColumnType.VARCHAR),
                Column("i_cost", ColumnType.FLOAT),
                Column("i_a_id", ColumnType.INTEGER),
            ],
        )
        database.create_table(
            "author",
            [
                Column("a_id", ColumnType.INTEGER, primary_key=True),
                Column("a_lname", ColumnType.VARCHAR),
            ],
        )
        database.table("item").create_index("i_subject")
        for author_id, last_name in [(1, "SMITH"), (2, "JONES")]:
            database.table("author").insert({"a_id": author_id, "a_lname": last_name})
        for item_id in range(1, 11):
            database.table("item").insert(
                {
                    "i_id": item_id,
                    "i_title": f"Book {item_id:02d}",
                    "i_subject": "ARTS" if item_id % 2 == 0 else "HISTORY",
                    "i_cost": float(item_id),
                    "i_a_id": 1 if item_id <= 5 else 2,
                }
            )
        return database

    def test_pk_lookup_uses_index(self, database):
        result = database.execute("SELECT i_title FROM item WHERE i_id = ?", [3])
        assert result.rows == [{"i_title": "Book 03"}]
        assert result.rows_scanned == 1

    def test_where_order_limit(self, database):
        result = database.execute(
            "SELECT i_id FROM item WHERE i_subject = 'ARTS' ORDER BY i_cost DESC LIMIT 3"
        )
        assert [row["i_id"] for row in result.rows] == [10, 8, 6]

    def test_order_by_column_not_in_select(self, database):
        result = database.execute("SELECT i_title FROM item ORDER BY i_cost DESC LIMIT 1")
        assert result.rows == [{"i_title": "Book 10"}]

    def test_join_with_aggregate_and_group_by(self, database):
        result = database.execute(
            "SELECT a.a_lname, COUNT(*) AS books, AVG(i.i_cost) AS avg_cost "
            "FROM item i JOIN author a ON i.i_a_id = a.a_id "
            "GROUP BY a.a_lname ORDER BY books DESC"
        )
        assert len(result.rows) == 2
        smith = next(row for row in result.rows if row["a_lname"] == "SMITH")
        assert smith["books"] == 5
        assert smith["avg_cost"] == pytest.approx(3.0)

    def test_like_operator(self, database):
        result = database.execute("SELECT i_id FROM item WHERE i_title LIKE 'Book 0%'")
        assert len(result.rows) == 9

    def test_aggregate_over_empty_set(self, database):
        result = database.execute("SELECT COUNT(*) AS n, MAX(i_cost) AS m FROM item WHERE i_id = 999")
        assert result.rows == [{"n": 0, "m": None}]

    def test_insert_update_delete_roundtrip(self, database):
        database.execute(
            "INSERT INTO item (i_id, i_title, i_subject, i_cost, i_a_id) VALUES (?, ?, ?, ?, ?)",
            [99, "New Book", "ARTS", 5.0, 1],
        )
        assert database.execute("SELECT i_title FROM item WHERE i_id = 99").rows[0]["i_title"] == "New Book"
        updated = database.execute("UPDATE item SET i_cost = ? WHERE i_id = ?", [9.5, 99]).rowcount
        assert updated == 1
        assert database.execute("SELECT i_cost FROM item WHERE i_id = 99").rows[0]["i_cost"] == 9.5
        deleted = database.execute("DELETE FROM item WHERE i_id = 99").rowcount
        assert deleted == 1
        assert database.execute("SELECT COUNT(*) AS n FROM item").rows[0]["n"] == 10

    def test_cost_model_and_stats(self, database):
        before = database.stats.queries_executed
        result = database.execute("SELECT * FROM item")
        assert result.cost_seconds > 0
        assert database.stats.queries_executed == before + 1
        assert database.stats.by_statement_kind["SELECT"] >= 1
        assert database.stats.rows_scanned >= 10

    def test_unknown_table_and_column_errors(self, database):
        with pytest.raises(SqlExecutionError):
            database.execute("SELECT a FROM missing")
        with pytest.raises(SqlExecutionError):
            database.execute("SELECT missing_column FROM item")

    def test_missing_parameters_error(self, database):
        with pytest.raises(SqlExecutionError):
            database.execute("SELECT i_id FROM item WHERE i_id = ?")

    def test_drop_and_has_table(self, database):
        assert database.has_table("item")
        database.drop_table("author")
        assert not database.has_table("author")
        with pytest.raises(SqlExecutionError):
            database.drop_table("author")


# --------------------------------------------------------------------------- #
# Property-based tests
# --------------------------------------------------------------------------- #
@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=10_000), st.integers(min_value=0, max_value=100)),
        min_size=1,
        max_size=60,
        unique_by=lambda pair: pair[0],
    )
)
def test_property_where_filter_matches_python_filter(rows):
    """WHERE age >= 50 returns exactly the rows a Python filter selects."""
    database = Database("prop")
    database.create_table(
        "people",
        [Column("id", ColumnType.INTEGER, primary_key=True), Column("age", ColumnType.INTEGER)],
    )
    for row_id, age in rows:
        database.table("people").insert({"id": row_id, "age": age})
    result = database.execute("SELECT id FROM people WHERE age >= 50")
    expected = {row_id for row_id, age in rows if age >= 50}
    assert {row["id"] for row in result.rows} == expected


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=50))
def test_property_sum_and_count_aggregates(values):
    """SUM/COUNT/MIN/MAX agree with Python built-ins."""
    database = Database("prop")
    database.create_table(
        "t", [Column("id", ColumnType.INTEGER, primary_key=True), Column("v", ColumnType.INTEGER)]
    )
    for index, value in enumerate(values):
        database.table("t").insert({"id": index, "v": value})
    row = database.execute(
        "SELECT COUNT(*) AS n, SUM(v) AS s, MIN(v) AS lo, MAX(v) AS hi FROM t"
    ).rows[0]
    assert row["n"] == len(values)
    assert row["s"] == sum(values)
    assert row["lo"] == min(values)
    assert row["hi"] == max(values)


# --------------------------------------------------------------------------- #
# Single-table SELECT fast path (PR 3 request-path satellite)
# --------------------------------------------------------------------------- #
class TestSelectFastPathEquivalence:
    """The join-free fast path must be observably identical to the generic
    executor — rows, rowcount, scan/cost accounting and error behaviour."""

    def build(self) -> Database:
        database = Database("fastpath")
        database.create_table(
            "item",
            [
                Column("i_id", ColumnType.INTEGER, primary_key=True),
                Column("i_title", ColumnType.VARCHAR),
                Column("i_subject", ColumnType.VARCHAR),
                Column("i_cost", ColumnType.FLOAT),
            ],
        )
        database.table("item").create_index("i_subject")
        for item_id in range(1, 13):
            database.table("item").insert(
                {
                    "i_id": item_id,
                    "i_title": f"Book {item_id:02d}" if item_id != 7 else None,
                    "i_subject": "ARTS" if item_id % 2 == 0 else "HISTORY",
                    "i_cost": float(item_id),
                }
            )
        return database

    QUERIES = [
        ("SELECT i_title FROM item WHERE i_id = ?", [3]),
        ("SELECT * FROM item WHERE i_subject = ?", ["ARTS"]),
        ("SELECT i_id, i_cost AS price FROM item WHERE i_cost >= ?", [6.5]),
        ("SELECT i_id FROM item WHERE i_subject = ? AND i_cost > ?", ["HISTORY", 4.0]),
        ("SELECT i_id FROM item WHERE i_title LIKE 'Book 0%'", []),
        ("SELECT i_id FROM item LIMIT 4", []),
        ("SELECT it.i_id FROM item it WHERE it.i_subject = ?", ["ARTS"]),
        ("SELECT i_id FROM item WHERE i_title = ?", [None]),
    ]

    @pytest.mark.parametrize("sql,params", QUERIES)
    def test_rows_and_accounting_match_generic(self, sql, params):
        fast_db = self.build()
        generic_db = self.build()
        generic_db.select_fastpath_enabled = False
        fast = fast_db.execute(sql, params)
        generic = generic_db.execute(sql, params)
        assert fast.rows == generic.rows
        assert fast.rowcount == generic.rowcount
        assert fast.rows_scanned == generic.rows_scanned
        assert fast.cost_seconds == generic.cost_seconds

    def test_star_rows_are_copies(self):
        database = self.build()
        result = database.execute("SELECT * FROM item WHERE i_id = ?", [1])
        result.rows[0]["i_title"] = "MUTATED"
        again = database.execute("SELECT * FROM item WHERE i_id = ?", [1])
        assert again.rows[0]["i_title"] == "Book 01"

    def test_error_behaviour_matches_generic(self):
        for enabled in (True, False):
            database = self.build()
            database.select_fastpath_enabled = enabled
            with pytest.raises(SqlExecutionError):
                database.execute("SELECT missing FROM item")
            with pytest.raises(SqlExecutionError):
                database.execute("SELECT i_id FROM item WHERE bogus.i_id = ?", [1])

    def test_joins_and_aggregates_take_generic_path(self):
        database = self.build()
        # Aggregates and ORDER BY are generic-path features; the fast path
        # must defer to them transparently.
        count = database.execute("SELECT COUNT(*) AS n FROM item WHERE i_subject = ?", ["ARTS"])
        assert count.rows == [{"n": 6}]
        ordered = database.execute("SELECT i_id FROM item ORDER BY i_cost DESC LIMIT 2")
        assert [row["i_id"] for row in ordered.rows] == [12, 11]
