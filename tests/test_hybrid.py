"""Property tests for the hybrid fluid/discrete execution mode (ISSUE 9).

Three families:

* hybrid-vs-discrete tolerance bands — at tiny scale, across seeds, the
  hybrid run's throughput and heap growth must stay inside the same bands
  the ``fig_scale`` CI gate enforces;
* ledger conservation — the tracer population's request accounting must
  balance exactly under hybrid execution (the fluid bulk feeds the
  throughput *series* but never the counters);
* vectorised generation bit-identity — the workload generator's batched
  RNG draws must reproduce the scalar draw stream bit for bit.

Plus the shared-primary contention charge of the satellite fix.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.db.jdbc import DataSource
from repro.db.table import Column, ColumnType
from repro.db.engine import Database
from repro.experiments.cluster import SHARED_PRIMARY_CONTENTION_SECONDS
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.faults.injector import FaultSpec
from repro.sim.engine import SimulationEngine
from repro.sim.fluid import split_phases
from repro.slo.analytic import HYBRID_THROUGHPUT_TOLERANCE, within_tolerance
from repro.tpcw.application import build_deployment
from repro.tpcw.population import PopulationScale
from repro.tpcw.workload import WorkloadGenerator, WorkloadPhase

COMPONENT = "product_detail"


def _leak_config(mode: str, seed: int) -> ExperimentConfig:
    return ExperimentConfig(
        name=f"hybrid-prop-{mode}-{seed}",
        seed=seed,
        scale=PopulationScale.tiny(),
        constant_ebs=60,
        duration=240.0,
        mix_name="shopping",
        monitored=True,
        faults=[
            FaultSpec(
                component=COMPONENT,
                kind="memory-leak",
                # Leak sized to dominate heap growth over transient request
                # garbage, so the growth band measures the leak, not GC noise.
                params={"leak_bytes": 2 * 1024 * 1024, "period_n": 5},
            )
        ],
        snapshot_interval=10.0,
        simulation_mode=mode,
        tracer_fraction=0.1,
    )


def _leak_triggers(result) -> int:
    total = 0
    for shard in result.cluster.shards:
        if shard.injector is None:
            continue
        for _component, fault in shard.injector.injected:
            total += fault.trigger_count
    return total


# --------------------------------------------------------------------------- #
# Tolerance bands across seeds
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", [7, 11, 2026])
def test_hybrid_matches_discrete_within_bands(seed):
    discrete = run_experiment(_leak_config("discrete", seed))
    hybrid = run_experiment(_leak_config("hybrid", seed))

    reference = discrete.mean_throughput()
    assert reference > 0
    rel_diff = abs(hybrid.mean_throughput() - reference) / reference
    assert rel_diff <= HYBRID_THROUGHPUT_TOLERANCE

    # The fluid side must age the heap like the discrete bulk would: the
    # amplified leak fires within the same factor-of-two band, and with the
    # leak dominating allocation the observed heap growth tracks it too.
    assert within_tolerance(
        _leak_triggers(discrete), _leak_triggers(hybrid), 2.0
    )
    discrete_growth = float(discrete.heap_series.values[-1] - discrete.heap_series.values[0])
    hybrid_growth = float(hybrid.heap_series.values[-1] - hybrid.heap_series.values[0])
    assert discrete_growth > 0
    assert within_tolerance(discrete_growth, hybrid_growth, 2.0)

    # The hybrid run exists to execute fewer discrete events.
    assert hybrid.executed_events < discrete.executed_events


def test_hybrid_fluid_report_populated():
    result = run_experiment(_leak_config("hybrid", 7))
    fluid = result.fluid
    assert fluid is not None
    assert fluid.updates > 0
    assert fluid.bulk_completions > 0
    assert fluid.bulk_peak_population > 0
    # The amplified leak must have fired on the fluid side.
    assert fluid.amplified_injections.get("memory-leak", 0) > 0
    # Visits follow the stationary mix: the faulted component is among them.
    assert fluid.component_visits.get(COMPONENT, 0.0) > 0.0


def test_unknown_simulation_mode_rejected():
    config = _leak_config("discrete", 7)
    config.simulation_mode = "fluid-only"
    with pytest.raises(ValueError):
        run_experiment(config)


# --------------------------------------------------------------------------- #
# Ledger conservation
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", [7, 11])
def test_tracer_ledger_conserved_under_hybrid(seed):
    result = run_experiment(_leak_config("hybrid", seed))
    ledger = result.accounting
    assert ledger["in_flight"] == 0
    assert (
        ledger["completions"] + ledger["errors"] + ledger["refusals"]
        == ledger["issued"]
    )
    # The fluid bulk marks the throughput series but never the counters:
    # issued stays at tracer volume (~10 % of the discrete run's), while the
    # series carries the bulk's completions on top.
    discrete = run_experiment(_leak_config("discrete", seed))
    assert result.issued_requests < discrete.issued_requests / 2
    assert result.fluid is not None
    series_total = result.mean_throughput() * result.config.duration
    assert series_total > result.completed_requests


def test_split_phases_conserves_population():
    rng = np.random.default_rng(5)
    for _ in range(200):
        phases = [
            WorkloadPhase(start_time=float(index * 60), eb_count=int(rng.integers(0, 500)))
            for index in range(int(rng.integers(1, 6)))
        ]
        fraction = float(rng.uniform(0.01, 0.5))
        tracers, bulk = split_phases(phases, fraction)
        assert len(tracers) == len(bulk) == len(phases)
        for original, tracer, rest in zip(phases, tracers, bulk):
            assert tracer.eb_count + rest.eb_count == original.eb_count
            assert tracer.start_time == rest.start_time == original.start_time
            if original.eb_count:
                assert tracer.eb_count >= 1


# --------------------------------------------------------------------------- #
# Vectorised generation bit-identity
# --------------------------------------------------------------------------- #
def _run_generator(batch_draws: bool) -> WorkloadGenerator:
    engine = SimulationEngine()
    deployment = build_deployment(
        scale=PopulationScale.tiny(), seed=123, clock=engine.clock
    )
    generator = WorkloadGenerator(engine, deployment, batch_draws=batch_draws)
    generator.schedule_phases(
        [
            WorkloadPhase(start_time=0.0, eb_count=15),
            WorkloadPhase(start_time=60.0, eb_count=30),
            WorkloadPhase(start_time=120.0, eb_count=8),
        ]
    )
    generator.run(180.0)
    return generator


def test_batched_draws_bit_identical_to_scalar():
    batched = _run_generator(batch_draws=True)
    scalar = _run_generator(batch_draws=False)
    assert batched.completed_requests == scalar.completed_requests
    assert batched.error_count == scalar.error_count
    assert batched.issued_requests == scalar.issued_requests
    assert dict(batched.interaction_counts) == dict(scalar.interaction_counts)
    assert np.array_equal(batched.response_times.times, scalar.response_times.times)
    assert np.array_equal(batched.response_times.values, scalar.response_times.values)


# --------------------------------------------------------------------------- #
# Shared-primary connection contention
# --------------------------------------------------------------------------- #
def _make_datasource() -> DataSource:
    database = Database("contention")
    database.create_table(
        "t", [Column("id", ColumnType.INTEGER, primary_key=True)]
    )
    return DataSource(database)


def test_shared_primary_contention_charge():
    primary = _make_datasource()
    peer = _make_datasource()
    for datasource in (primary, peer):
        datasource.contention_seconds_per_connection = SHARED_PRIMARY_CONTENTION_SECONDS
        datasource.contention_pool_group = [primary, peer]

    # One connection active in each shard's pool: the charged query sees one
    # *other* active connection across the shared primary.
    primary.get_connection(owner="a")
    peer.get_connection(owner="b")
    before = primary.total_cost_seconds
    primary.record_cost(0.001)
    charged = primary.total_cost_seconds - before
    assert charged == pytest.approx(0.001 + SHARED_PRIMARY_CONTENTION_SECONDS)

    # Fluid bulk connections join the group-wide count.
    peer.fluid_active_connections = 3.0
    before = primary.total_cost_seconds
    primary.record_cost(0.001)
    charged = primary.total_cost_seconds - before
    assert charged == pytest.approx(0.001 + 4 * SHARED_PRIMARY_CONTENTION_SECONDS)


def test_replica_mode_charges_no_contention():
    datasource = _make_datasource()
    datasource.get_connection(owner="a")
    datasource.get_connection(owner="b")
    before = datasource.total_cost_seconds
    datasource.record_cost(0.001)
    assert datasource.total_cost_seconds - before == pytest.approx(0.001)


def test_cluster_wires_contention_only_in_shared_mode():
    from repro.experiments.cluster import build_cluster

    for db_mode, expected in (("shared", SHARED_PRIMARY_CONTENTION_SECONDS), ("replica", 0.0)):
        engine = SimulationEngine()
        config = ExperimentConfig(
            name=f"contention-{db_mode}",
            seed=7,
            scale=PopulationScale.tiny(),
            duration=60.0,
            shards=2,
            shard_db_mode=db_mode,
        )
        cluster = build_cluster(config, engine)
        for shard in cluster.shards:
            datasource = shard.deployment.datasource
            assert datasource.contention_seconds_per_connection == expected
            if db_mode == "shared":
                assert datasource.contention_pool_group is not None
                assert len(datasource.contention_pool_group) == 2
            else:
                assert datasource.contention_pool_group is None
