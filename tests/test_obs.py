"""Tests for the observability plane (registry, transports, zero-effect)."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.faults.injector import FaultSpec
from repro.obs.registry import MetricsRegistry, canonical_value
from repro.obs.transports import JsonlMetricsStream, MetricsHttpServer
from repro.tpcw.population import PopulationScale


def _config(seed=11, stream_path=None, registry=None, **overrides):
    """A small monitored two-shard run with a component leak."""
    settings = dict(
        name="obs-test",
        seed=seed,
        scale=PopulationScale.tiny(),
        constant_ebs=30,
        duration=60.0,
        mix_name="shopping",
        monitored=True,
        shards=2,
        faults=[
            FaultSpec(
                component="home",
                kind="memory-leak",
                params={"leak_bytes": 64 * 1024, "period_n": 5},
            )
        ],
        snapshot_interval=5.0,
        metrics_registry=registry,
        stream_metrics=stream_path,
    )
    settings.update(overrides)
    return ExperimentConfig(**settings)


class TestCanonicalValue:
    def test_rounds_floats_to_six_decimals_recursively(self):
        value = {"a": 1.23456789, "b": [0.1 + 0.2], "c": {"d": (1.0000004,)}}
        assert canonical_value(value) == {"a": 1.234568, "b": [0.3], "c": {"d": [1.0]}}

    def test_preserves_bools_ints_strings(self):
        assert canonical_value({"flag": True, "n": 7, "s": "x"}) == {
            "flag": True,
            "n": 7,
            "s": "x",
        }
        assert canonical_value(True) is True


class TestMetricsRegistry:
    def test_snapshot_structure(self):
        registry = MetricsRegistry()
        result = run_experiment(_config(registry=registry))
        snapshot = registry.snapshot()
        assert set(snapshot) == {
            "time_s",
            "counters",
            "shards",
            "alerts",
            "deploys",
            "slo",
            "calibration",
        }
        assert snapshot["time_s"] == pytest.approx(60.0)
        counters = snapshot["counters"]
        assert counters["issued"] == (
            counters["completions"]
            + counters["errors"]
            + counters["refusals"]
            + counters["in_flight"]
        )
        assert counters["completions"] > 0
        assert len(snapshot["shards"]) == 2
        for row in snapshot["shards"]:
            assert row["completed"] >= 0
            assert row["polls"] > 0
            assert row["last_poll_s"] > 0.0
            assert row["heap_used"] > 0.0
        assert snapshot["slo"]["duration_s"] == pytest.approx(60.0)
        assert result.completed_requests == counters["completions"] + counters["errors"]

    def test_series_reads_jvm_and_component_channels(self):
        registry = MetricsRegistry()
        run_experiment(_config(registry=registry))
        heap = registry.series(0, "heap_used")
        assert heap and all(len(point) == 2 for point in heap)
        assert heap == sorted(heap)  # time-ordered
        leaky = registry.series(0, "objects.home")
        assert leaky
        assert leaky[-1][1] > leaky[0][1]  # the injected leak grew
        with pytest.raises(IndexError):
            registry.series(9, "heap_used")

    def test_registry_attaches_exactly_once(self):
        registry = MetricsRegistry()
        run_experiment(_config(registry=registry))
        with pytest.raises(RuntimeError, match="exactly one run"):
            run_experiment(_config(registry=registry))

    def test_snapshot_json_byte_identical_per_seed(self):
        first = MetricsRegistry()
        run_experiment(_config(seed=23, registry=first))
        second = MetricsRegistry()
        run_experiment(_config(seed=23, registry=second))
        assert first.snapshot_json(at=60.0) == second.snapshot_json(at=60.0)

    def test_snapshot_json_differs_across_seeds(self):
        first = MetricsRegistry()
        run_experiment(_config(seed=23, registry=first))
        second = MetricsRegistry()
        run_experiment(_config(seed=24, registry=second))
        assert first.snapshot_json(at=60.0) != second.snapshot_json(at=60.0)


class TestZeroEffect:
    def test_attached_plane_does_not_change_the_run(self, tmp_path):
        plain = run_experiment(_config(seed=31))
        observed = run_experiment(
            _config(
                seed=31,
                registry=MetricsRegistry(),
                stream_path=str(tmp_path / "stream.jsonl"),
            )
        )
        assert plain.accounting == observed.accounting
        assert plain.completed_requests == observed.completed_requests
        assert plain.error_count == observed.error_count
        plain_shards = [shard.summary() for shard in plain.cluster.shards]
        observed_shards = [shard.summary() for shard in observed.cluster.shards]
        assert plain_shards == observed_shards


class TestJsonlStream:
    @pytest.mark.parametrize("seed", [5, 17, 42])
    def test_mid_run_snapshots_are_monotone(self, tmp_path, seed):
        """Counters never decrease and the ledger invariant holds at every
        arbitrary mid-run snapshot point, not just at the end."""
        path = tmp_path / "stream.jsonl"
        # A prime interval puts the emission points at arbitrary offsets
        # relative to the 5 s polling/phase grid.
        run_experiment(
            _config(seed=seed, registry=MetricsRegistry(), stream_path=str(path), snapshot_interval=3.0)
        )
        records = [json.loads(line) for line in path.read_text().splitlines() if line]
        assert len(records) >= 10
        assert records[-1]["time_s"] == pytest.approx(60.0)
        previous = None
        for record in records:
            counters = record["counters"]
            assert (
                counters["completions"]
                + counters["errors"]
                + counters["refusals"]
                + counters["in_flight"]
                == counters["issued"]
            ), f"ledger invariant violated at t={record['time_s']}"
            assert counters["in_flight"] >= 0
            if previous is not None:
                assert record["time_s"] > previous["time_s"]
                for key in ("issued", "completions", "errors", "refusals", "retries"):
                    assert counters[key] >= previous["counters"][key], (
                        f"{key} decreased at t={record['time_s']}"
                    )
                for shard_row, previous_row in zip(record["shards"], previous["shards"]):
                    assert shard_row["completed"] >= previous_row["completed"]
                    assert shard_row["polls"] >= previous_row["polls"]
                assert record["slo"]["sla_cost"] >= 0.0
            previous = record

    def test_stream_requires_positive_interval(self, tmp_path):
        from repro.sim.engine import SimulationEngine

        stream = JsonlMetricsStream(MetricsRegistry(), str(tmp_path / "s.jsonl"))
        with pytest.raises(ValueError):
            stream.schedule(SimulationEngine(), duration=10.0, interval=0.0)


class TestHttpTransport:
    @pytest.fixture(scope="class")
    def server(self):
        registry = MetricsRegistry()
        run_experiment(_config(registry=registry))
        server = MetricsHttpServer(registry).start()
        yield server
        server.stop()

    @staticmethod
    def _get(server, path):
        with urllib.request.urlopen(server.url + path, timeout=5) as response:
            return response.status, json.loads(response.read().decode("utf-8"))

    def test_metrics_endpoint(self, server):
        status, body = self._get(server, "/metrics")
        assert status == 200
        assert body["counters"]["issued"] > 0
        assert len(body["shards"]) == 2

    def test_series_endpoint(self, server):
        status, body = self._get(server, "/shards/1/series/heap_used")
        assert status == 200
        assert body["shard"] == 1
        assert body["series"] == "heap_used"
        assert body["points"]
        status, body = self._get(server, "/shards/0/series/objects.home")
        assert status == 200
        assert body["points"][-1][1] > body["points"][0][1]

    def test_alerts_and_slo_endpoints(self, server):
        status, body = self._get(server, "/alerts")
        assert status == 200
        assert isinstance(body["alerts"], list)
        status, body = self._get(server, "/slo")
        assert status == 200
        assert body["duration_s"] == pytest.approx(60.0)
        assert body["sla_cost"] >= 0.0

    def test_unknown_routes_return_404(self, server):
        for path in ("/nope", "/shards/7/series/heap_used"):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._get(server, path)
            assert excinfo.value.code == 404
            assert "error" in json.loads(excinfo.value.read().decode("utf-8"))

    def test_responses_are_canonical_json(self, server):
        registry = server.registry
        with urllib.request.urlopen(server.url + "/metrics", timeout=5) as response:
            body = response.read().decode("utf-8")
        assert body == registry.snapshot_json(at=registry.now())
