"""Tests for random streams, metric primitives and capacity resources."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.metrics import Counter, Gauge, MetricRegistry, TimeSeries, WindowedRate
from repro.sim.random import RandomStreams
from repro.sim.resources import CapacityResource, ResourceBusyError


class TestRandomStreams:
    def test_same_seed_same_draws(self):
        a = RandomStreams(42)
        b = RandomStreams(42)
        assert [a.uniform("x") for _ in range(5)] == [b.uniform("x") for _ in range(5)]

    def test_different_streams_are_independent(self):
        streams = RandomStreams(42)
        first = [streams.uniform("a") for _ in range(5)]
        # Creating another stream must not perturb the first one.
        fresh = RandomStreams(42)
        fresh.uniform("b")
        second = [fresh.uniform("a") for _ in range(5)]
        assert first == second

    def test_exponential_mean_is_close(self):
        streams = RandomStreams(7)
        draws = [streams.exponential("think", 7.0) for _ in range(4000)]
        assert abs(np.mean(draws) - 7.0) < 0.5

    def test_exponential_requires_positive_mean(self):
        with pytest.raises(ValueError):
            RandomStreams(0).exponential("x", 0.0)

    def test_uniform_int_bounds_inclusive(self):
        streams = RandomStreams(3)
        draws = {streams.uniform_int("n", 0, 3) for _ in range(200)}
        assert draws == {0, 1, 2, 3}

    def test_choice_weighted_never_picks_zero_weight(self):
        streams = RandomStreams(5)
        picks = {streams.choice("c", ["a", "b"], [1.0, 0.0]) for _ in range(50)}
        assert picks == {"a"}

    def test_choice_validates_lengths(self):
        with pytest.raises(ValueError):
            RandomStreams(0).choice("c", ["a", "b"], [1.0])

    def test_lognormal_service_time_mean(self):
        streams = RandomStreams(11)
        draws = [streams.lognormal_service_time("s", 0.1, cv=0.3) for _ in range(5000)]
        assert abs(np.mean(draws) - 0.1) < 0.01
        assert min(draws) > 0

    def test_lognormal_zero_cv_is_deterministic(self):
        assert RandomStreams(0).lognormal_service_time("s", 0.2, cv=0.0) == 0.2

    def test_invalid_seed_type(self):
        with pytest.raises(TypeError):
            RandomStreams("not-a-seed")  # type: ignore[arg-type]


class TestTimeSeries:
    def test_records_and_exposes_arrays(self):
        series = TimeSeries("s")
        series.record(0.0, 1.0)
        series.record(1.0, 2.0)
        assert list(series.times) == [0.0, 1.0]
        assert list(series.values) == [1.0, 2.0]

    def test_rejects_decreasing_timestamps(self):
        series = TimeSeries()
        series.record(5.0, 1.0)
        with pytest.raises(ValueError):
            series.record(4.0, 1.0)

    def test_value_at_uses_last_observation_carried_forward(self):
        series = TimeSeries()
        series.record(0.0, 10.0)
        series.record(10.0, 20.0)
        assert series.value_at(5.0) == 10.0
        assert series.value_at(10.0) == 20.0
        assert series.value_at(100.0) == 20.0

    def test_window_selects_inclusive_range(self):
        series = TimeSeries()
        for t in range(10):
            series.record(float(t), float(t))
        windowed = series.window(2.0, 5.0)
        assert list(windowed.times) == [2.0, 3.0, 4.0, 5.0]

    def test_resample_regular_grid(self):
        series = TimeSeries()
        series.record(0.0, 1.0)
        series.record(10.0, 2.0)
        resampled = series.resample(5.0)
        assert list(resampled.times) == [0.0, 5.0, 10.0]
        assert list(resampled.values) == [1.0, 1.0, 2.0]

    def test_last_returns_none_when_empty(self):
        assert TimeSeries().last() is None

    def test_growth_across_doubling_boundaries(self):
        series = TimeSeries("grow")
        for index in range(1000):  # crosses several capacity doublings
            series.record(float(index), float(index * 2))
        assert len(series) == 1000
        assert list(series.times[:3]) == [0.0, 1.0, 2.0]
        assert series.values[-1] == 1998.0
        assert series.last() == (999.0, 1998.0)

    def test_record_many_large_batch_and_views(self):
        series = TimeSeries()
        series.record(0.0, 1.0)
        series.record_many([float(t) for t in range(1, 501)], [0.5] * 500)
        assert len(series) == 501
        view_before = series.values
        series.record(1000.0, 9.0)
        # The earlier view is a stable snapshot of its prefix...
        assert len(view_before) == 501
        assert view_before[-1] == 0.5
        # ...and the fresh view includes the append.
        assert series.values[-1] == 9.0

    def test_views_are_zero_copy_of_backing_store(self):
        series = TimeSeries()
        series.record_many([0.0, 1.0, 2.0], [1.0, 2.0, 3.0])
        assert series.times.base is series._times_buf

    def test_record_many_rejects_unsorted_batch(self):
        series = TimeSeries()
        with pytest.raises(ValueError):
            series.record_many([1.0, 0.5], [1.0, 1.0])
        series.record(5.0, 1.0)
        with pytest.raises(ValueError):
            series.record_many([4.0, 6.0], [1.0, 1.0])
        with pytest.raises(ValueError):
            series.record_many([6.0], [1.0, 2.0])

    def test_to_rows_and_value_at_return_python_floats(self):
        series = TimeSeries()
        series.record_many([0.0, 10.0], [1.5, 2.5])
        rows = series.to_rows()
        assert rows == [(0.0, 1.5), (10.0, 2.5)]
        assert all(type(value) is float for pair in rows for value in pair)
        assert type(series.value_at(3.0)) is float
        assert type(series.last()[0]) is float

    def test_window_result_owns_its_storage(self):
        series = TimeSeries()
        for t in range(10):
            series.record(float(t), float(t))
        windowed = series.window(2.0, 5.0)
        windowed.record(100.0, -1.0)  # appending must not touch the parent
        assert list(series.values[:10]) == [float(t) for t in range(10)]
        assert windowed.last() == (100.0, -1.0)


class TestCountersGaugesRates:
    def test_counter_increments(self):
        counter = Counter("c")
        counter.increment()
        counter.increment(4)
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().increment(-1)

    def test_gauge_set_and_add(self):
        gauge = Gauge("g", initial=10.0)
        gauge.add(-4.0)
        assert gauge.value == 6.0
        gauge.set(2.0)
        assert gauge.value == 2.0

    def test_windowed_rate_produces_per_second_values(self):
        rate = WindowedRate(window=10.0)
        for t in [1.0, 2.0, 3.0, 4.0, 5.0]:
            rate.mark(t)
        series = rate.finish(20.0)
        assert len(series) == 2
        assert series.values[0] == pytest.approx(0.5)   # 5 events / 10 s
        assert series.values[1] == pytest.approx(0.0)

    def test_registry_reuses_instances(self):
        registry = MetricRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.series("s") is registry.series("s")
        registry.gauge("g").set(3)
        assert registry.snapshot() == {"a": 0.0, "g": 3.0}


class TestCapacityResource:
    def test_serves_immediately_when_idle(self):
        resource = CapacityResource(2)
        start, finish = resource.acquire(10.0, 5.0)
        assert (start, finish) == (10.0, 15.0)

    def test_queues_when_all_servers_busy(self):
        resource = CapacityResource(1)
        resource.acquire(0.0, 10.0)
        start, finish = resource.acquire(2.0, 5.0)
        assert start == 10.0
        assert finish == 15.0
        assert resource.mean_wait() == pytest.approx(4.0)  # (0 + 8) / 2

    def test_parallel_servers_no_queueing(self):
        resource = CapacityResource(2)
        resource.acquire(0.0, 10.0)
        start, _ = resource.acquire(0.0, 10.0)
        assert start == 0.0

    def test_queue_bound_raises(self):
        resource = CapacityResource(1, max_queue=0)
        resource.acquire(0.0, 10.0)
        with pytest.raises(ResourceBusyError):
            resource.acquire(1.0, 1.0)
        assert resource.rejected == 1

    def test_utilization(self):
        resource = CapacityResource(2)
        resource.acquire(0.0, 10.0)
        assert resource.utilization(10.0) == pytest.approx(0.5)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            CapacityResource(0)


# --------------------------------------------------------------------------- #
# Property-based tests
# --------------------------------------------------------------------------- #
@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1e4), min_size=1, max_size=50))
def test_property_timeseries_sorted_insertion(values):
    """Recording at sorted timestamps always succeeds and preserves length."""
    series = TimeSeries()
    for index, value in enumerate(sorted(values)):
        series.record(float(index), float(value))
    assert len(series) == len(values)
    assert np.all(np.diff(series.times) >= 0)


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=1, max_value=8),
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0),
            st.floats(min_value=0.0, max_value=10.0),
        ),
        min_size=1,
        max_size=40,
    ),
)
def test_property_capacity_resource_invariants(capacity, jobs):
    """Starts never precede requests; finishes equal start + duration; busy time adds up."""
    resource = CapacityResource(capacity)
    total = 0.0
    for request_time, duration in sorted(jobs):
        start, finish = resource.acquire(request_time, duration)
        assert start >= request_time
        assert finish == pytest.approx(start + duration)
        total += duration
    assert resource.total_busy_time == pytest.approx(total)
    assert resource.served == len(jobs)
