"""Pointcut parser edge cases and weaver fast-path dispatch semantics.

The weaver compiles specialised wrappers per advice-chain shape (monitor
fast path, no-around path, general path); these tests pin down that every
compiled shape behaves exactly like the seed's single generic wrapper —
including runtime enable/disable toggling, which must never require
re-weaving.
"""

from __future__ import annotations

import pytest

from repro.aop.aspect import Aspect, after, after_returning, after_throwing, around, before
from repro.aop.joinpoint import JoinPoint, Signature, compile_join_point_class
from repro.aop.pointcut import PointcutSyntaxError, parse_pointcut
from repro.aop.weaver import Weaver


# --------------------------------------------------------------------------- #
# Pointcut parser edge cases
# --------------------------------------------------------------------------- #
class TestPointcutParserEdgeCases:
    def test_nested_parentheses_in_boolean_expressions(self):
        pointcut = parse_pointcut(
            "((execution(a.b.*.x) || execution(a.c.*.y)) && !within(a.b.Bad)) || within(z.Only)"
        )
        assert pointcut.matches_signature("a.b.Good", "x")
        assert not pointcut.matches_signature("a.b.Bad", "x")
        assert pointcut.matches_signature("z.Only", "anything")

    def test_double_negation(self):
        pointcut = parse_pointcut("!!execution(a.B.m)")
        assert pointcut.matches_signature("a.B", "m")
        assert not pointcut.matches_signature("a.C", "m")

    def test_argument_list_forms_are_tolerated(self):
        for expression in [
            "execution(org.tpcw..*.service(..))",
            "execution(org.tpcw..*.service())",
            "execution(* org.tpcw..*.service(..))",
            "execution(void org.tpcw..*.service(..))",
        ]:
            pointcut = parse_pointcut(expression)
            assert pointcut.matches_signature("org.tpcw.servlet.TPCW_home", "service"), expression

    def test_dotdot_trailing_type_pattern(self):
        # "a.b..*" must match arbitrarily deep sub-packages and the package root.
        pointcut = parse_pointcut("execution(a.b..*.m)")
        assert pointcut.matches_signature("a.b.C", "m")
        assert pointcut.matches_signature("a.b.c.d.E", "m")
        assert not pointcut.matches_signature("a.x.C", "m")

    def test_dotdot_mid_pattern(self):
        pointcut = parse_pointcut("execution(org..servlet.*.do*)")
        assert pointcut.matches_signature("org.tpcw.servlet.Home", "doGet")
        assert not pointcut.matches_signature("org.tpcw.filters.Home", "doGet")

    def test_star_stays_within_one_segment(self):
        pointcut = parse_pointcut("execution(a.*.m)")
        assert pointcut.matches_signature("a.B", "m")
        assert not pointcut.matches_signature("a.b.C", "m")

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "   ",
            "execution()",
            "execution(nomethod)",
            "foo(a.b.c)",
            "execution(a.b.c.m) &&",
            "execution(a.b!c.m)",
            "(execution(a.B.m)",
            "execution(a.B.m))",
            "!",
            "within()",
            "execution(a b c)",
            "&& execution(a.B.m)",
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(PointcutSyntaxError):
            parse_pointcut(bad)

    def test_signature_match_caching_is_transparent(self):
        pointcut = parse_pointcut("execution(a.b.*.m)")
        for _ in range(3):
            assert pointcut.matches_signature("a.b.C", "m")
            assert not pointcut.matches_signature("a.x.C", "m")

    def test_parse_cache_returns_equivalent_tree(self):
        first = parse_pointcut("execution(cacheprobe.unique.B.m)")
        second = parse_pointcut("execution(cacheprobe.unique.B.m)")
        assert first is second  # shared immutable tree
        assert second.matches_signature("cacheprobe.unique.B", "m")


# --------------------------------------------------------------------------- #
# Weaver fast-path shapes
# --------------------------------------------------------------------------- #
class _Servlet:
    java_class_name = "org.tpcw.servlet.TPCW_fastpath"
    component_name = "fastpath"

    def __init__(self):
        self.calls = 0

    def service(self, value):
        self.calls += 1
        if value == "boom":
            raise RuntimeError("servlet failure")
        return value * 2


class _MonitorAspect(Aspect):
    """The AC shape: exactly one before + one after (monitor fast path)."""

    def __init__(self):
        super().__init__()
        self.events = []

    @before("execution(org.tpcw..*.service)")
    def record_before(self, jp):
        self.events.append(("before", jp.component, jp.args))

    @after("execution(org.tpcw..*.service)")
    def record_after(self, jp):
        self.events.append(("after", jp.result, jp.exception))


class _SelfDisablingAspect(Aspect):
    """Disables itself in its before advice (mid-call toggle)."""

    def __init__(self):
        super().__init__()
        self.events = []

    @before("execution(org.tpcw..*.service)")
    def sabotage(self, jp):
        self.events.append("before")
        self.disable()

    @after("execution(org.tpcw..*.service)")
    def never(self, jp):
        self.events.append("after")


class _FullAspect(Aspect):
    """All five advice kinds (general path)."""

    def __init__(self):
        super().__init__()
        self.kinds = []

    @before("execution(org.tpcw..*.service)")
    def b(self, jp):
        self.kinds.append("before")

    @after("execution(org.tpcw..*.service)")
    def a(self, jp):
        self.kinds.append("after")

    @after_returning("execution(org.tpcw..*.service)")
    def ar(self, jp):
        self.kinds.append("after_returning")

    @after_throwing("execution(org.tpcw..*.service)")
    def at(self, jp):
        self.kinds.append("after_throwing")

    @around("execution(org.tpcw..*.service)")
    def ao(self, jp, proceed):
        self.kinds.append("around-enter")
        try:
            return proceed()
        finally:
            self.kinds.append("around-exit")


def _weave(aspects):
    servlet = _Servlet()
    weaver = Weaver()
    for aspect in aspects:
        weaver.register_aspect(aspect)
    woven = weaver.weave_object(servlet)
    assert woven == ["service"]
    return servlet, weaver


class TestMonitorFastPath:
    def test_advice_sequence_and_join_point_fields(self):
        aspect = _MonitorAspect()
        servlet, _ = _weave([aspect])
        assert servlet.service(21) == 42
        assert aspect.events == [
            ("before", "fastpath", (21,)),
            ("after", 42, None),
        ]

    def test_exception_path(self):
        aspect = _MonitorAspect()
        servlet, _ = _weave([aspect])
        with pytest.raises(RuntimeError):
            servlet.service("boom")
        kind, result, exception = aspect.events[-1]
        assert kind == "after" and result is None
        assert isinstance(exception, RuntimeError)

    def test_toggle_without_reweaving(self):
        aspect = _MonitorAspect()
        servlet, _ = _weave([aspect])
        aspect.disable()
        assert servlet.service(2) == 4
        assert aspect.events == []
        assert servlet.calls == 1  # original still runs while disabled
        aspect.enable()
        assert servlet.service(3) == 6
        assert [event[0] for event in aspect.events] == ["before", "after"]
        aspect.disable()
        assert servlet.service(4) == 8
        assert len(aspect.events) == 2  # unchanged

    def test_mid_call_self_disable_skips_after(self):
        # Seed semantics: enabled is probed per advice invocation, so an
        # aspect disabling itself in `before` must not see its `after`.
        aspect = _SelfDisablingAspect()
        servlet, _ = _weave([aspect])
        assert servlet.service(1) == 2
        assert aspect.events == ["before"]

    def test_disabled_at_entry_sees_nothing_even_if_enabled_mid_call(self):
        # Documented refinement over the seed (see weaver module docstring):
        # when no aspect is enabled at entry the call bypasses interception
        # entirely, so enabling the aspect *during* the call has no effect
        # until the next call.
        aspect = _MonitorAspect()

        class TogglingServlet(_Servlet):
            def service(self, value):
                aspect.enable()
                return super().service(value)

        servlet = TogglingServlet()
        weaver = Weaver()
        weaver.register_aspect(aspect)
        weaver.weave_object(servlet, method_names=["service"])
        aspect.disable()
        assert servlet.service(1) == 2
        assert aspect.events == []          # this call was never observed
        assert servlet.service(2) == 4      # next call is (aspect re-enabled)
        assert [event[0] for event in aspect.events] == ["before", "after"]

    def test_join_points_are_independent_per_call(self):
        captured = []

        class Capture(Aspect):
            @before("execution(org.tpcw..*.service)")
            def grab_before(self, jp):
                jp.context["mark"] = jp.args[0]
                captured.append(jp)

            @after("execution(org.tpcw..*.service)")
            def grab_after(self, jp):
                captured.append(jp)

        servlet, _ = _weave([Capture()])
        servlet.service(1)
        servlet.service(2)
        assert captured[0] is captured[1]          # same call, same join point
        assert captured[1] is not captured[2]      # different calls differ
        assert captured[0].context == {"mark": 1}
        assert captured[2].context == {"mark": 2}
        assert captured[2].result == 4

    def test_clock_timestamp_stamped(self):
        class FakeClock:
            now = 77.5

        stamped = []

        class Stamp(Aspect):
            @before("execution(org.tpcw..*.service)")
            def s_before(self, jp):
                stamped.append(jp.timestamp)

            @after("execution(org.tpcw..*.service)")
            def s_after(self, jp):
                stamped.append(jp.timestamp)

        servlet = _Servlet()
        weaver = Weaver(clock=FakeClock())
        weaver.register_aspect(Stamp())
        weaver.weave_object(servlet)
        servlet.service(1)
        assert stamped == [77.5, 77.5]

    def test_overridden_enabled_property_still_honoured(self):
        # An aspect overriding `enabled` must not take the _enabled-probing
        # monitor path; dispatch falls back to the property-checking wrapper.
        class VetoAspect(_MonitorAspect):
            veto = False

            @property
            def enabled(self):
                return not self.veto

        aspect = VetoAspect()
        servlet, _ = _weave([aspect])
        servlet.service(1)
        assert len(aspect.events) == 2
        aspect.veto = True
        servlet.service(2)
        assert len(aspect.events) == 2  # vetoed: no advice ran


class TestOtherCompiledShapes:
    def test_general_path_order_matches_seed(self):
        aspect = _FullAspect()
        servlet, _ = _weave([aspect])
        assert servlet.service(5) == 10
        assert aspect.kinds == [
            "around-enter",
            "before",
            "after_returning",
            "after",
            "around-exit",
        ]
        aspect.kinds.clear()
        with pytest.raises(RuntimeError):
            servlet.service("boom")
        assert aspect.kinds == [
            "around-enter",
            "before",
            "after_throwing",
            "after",
            "around-exit",
        ]

    def test_general_path_toggling(self):
        aspect = _FullAspect()
        servlet, _ = _weave([aspect])
        aspect.disable()
        assert servlet.service(1) == 2
        assert aspect.kinds == []
        aspect.enable()
        servlet.service(1)
        assert aspect.kinds[0] == "around-enter"

    def test_multi_aspect_no_around_path(self):
        first, second = _MonitorAspect(), _MonitorAspect()
        servlet, _ = _weave([first, second])
        servlet.service(1)
        assert [event[0] for event in first.events] == ["before", "after"]
        assert [event[0] for event in second.events] == ["before", "after"]
        # Disabling one aspect must not affect the other.
        first.disable()
        servlet.service(2)
        assert len(first.events) == 2
        assert len(second.events) == 4

    def test_unweave_restores_plain_calls(self):
        aspect = _MonitorAspect()
        servlet, weaver = _weave([aspect])
        weaver.unweave_object(servlet)
        assert servlet.service(3) == 6
        assert aspect.events == []


class TestCompiledJoinPointClass:
    def test_constants_live_on_the_class(self):
        signature = Signature("a.B", "m")
        cls = compile_join_point_class("the-target", signature, "comp")
        jp = cls.__new__(cls)
        jp.args = (1,)
        jp.kwargs = {}
        assert isinstance(jp, JoinPoint)
        assert jp.target == "the-target"
        assert jp.component == "comp"
        assert jp.full_name == "a.B.m"
        assert jp.result is None and jp.exception is None
        # Mutating one instance never leaks into another.
        jp.result = 99
        other = cls.__new__(cls)
        assert other.result is None
        assert jp.context == {} and jp.context is not other.context
