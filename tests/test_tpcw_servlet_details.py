"""Detailed behavioural tests for individual TPC-W servlets."""

from __future__ import annotations

import pytest

from repro.tpcw.application import TpcwApplication
from repro.tpcw.schema import SUBJECTS


@pytest.fixture
def app(tiny_deployment) -> TpcwApplication:
    return TpcwApplication(tiny_deployment)


class TestBrowsingServlets:
    def test_new_products_filters_by_subject(self, app, tiny_deployment):
        subject = SUBJECTS[0]
        outcome = app.visit("new_products", parameters={"subject": subject})
        assert outcome.response.model["subject"] == subject
        expected = tiny_deployment.database.execute(
            "SELECT COUNT(*) AS n FROM item WHERE i_subject = ?", [subject]
        ).rows[0]["n"]
        assert len(outcome.response.model["books"]) == min(expected, 50)

    def test_new_products_orders_by_publication_date(self, app, tiny_deployment):
        subject = SUBJECTS[1]
        outcome = app.visit("new_products", parameters={"subject": subject})
        books = outcome.response.model["books"]
        if len(books) >= 2:
            dates = [
                tiny_deployment.database.execute(
                    "SELECT i_pub_date FROM item WHERE i_id = ?", [book["id"]]
                ).rows[0]["i_pub_date"]
                for book in books
            ]
            assert dates == sorted(dates, reverse=True)

    def test_best_sellers_sorted_by_quantity_sold(self, app):
        outcome = app.visit("best_sellers", parameters={"subject": SUBJECTS[2]})
        best_sellers = outcome.response.model["best_sellers"]
        sold = [entry["sold"] for entry in best_sellers]
        assert sold == sorted(sold, reverse=True)

    def test_product_detail_known_and_unknown_item(self, app):
        known = app.visit("product_detail", parameters={"i_id": 1})
        assert known.response.model["book"]["id"] == 1
        assert "author" in known.response.model["book"]
        unknown = app.visit("product_detail", parameters={"i_id": 999999})
        assert unknown.response.status == 404

    def test_search_request_lists_subjects_and_types(self, app):
        outcome = app.visit("search_request")
        assert outcome.response.model["search_types"] == ["AUTHOR", "TITLE", "SUBJECT"]
        assert set(outcome.response.model["subjects"]) == set(SUBJECTS)

    def test_search_results_by_each_type(self, app):
        by_subject = app.visit(
            "search_results", parameters={"search_type": "SUBJECT", "search_string": SUBJECTS[0]}
        )
        assert by_subject.response.model["search_type"] == "SUBJECT"
        by_author = app.visit(
            "search_results", parameters={"search_type": "AUTHOR", "search_string": "SMITH"}
        )
        assert by_author.response.model["search_type"] == "AUTHOR"
        by_title = app.visit(
            "search_results", parameters={"search_type": "TITLE", "search_string": "Book Title 1"}
        )
        assert by_title.response.model["search_type"] == "TITLE"
        assert all(
            book["title"].startswith("Book Title 1")
            for book in by_title.response.model["books"]
        )


class TestOrderingServlets:
    def test_customer_registration_returning_customer(self, app):
        outcome = app.visit("customer_registration", parameters={"uname": "user1"})
        assert outcome.response.model["returning"] is True
        assert outcome.response.model["customer"]["id"] == 1
        assert outcome.request.get_session(create=False).get_attribute("customer_id") == 1

    def test_customer_registration_unknown_user(self, app):
        outcome = app.visit("customer_registration", parameters={"uname": "ghost"})
        assert outcome.response.model["returning"] is False

    def test_buy_request_totals_follow_cart(self, app):
        cart = app.visit("shopping_cart", parameters={"i_id": 2, "qty": 3})
        session_id = cart.request.session_id
        registration = app.visit(
            "customer_registration", parameters={"uname": "user2"}, session_id=session_id
        )
        outcome = app.visit("buy_request", session_id=session_id)
        model = outcome.response.model
        assert model["customer"]["id"] == 2
        assert model["lines"] >= 1
        assert model["total"] == pytest.approx(model["subtotal"] + model["tax"] + 4.0)

    def test_buy_confirm_empties_cart_and_decrements_stock(self, app, tiny_deployment):
        cart = app.visit("shopping_cart", parameters={"i_id": 4, "qty": 2})
        session_id = cart.request.session_id
        stock_before = tiny_deployment.database.execute(
            "SELECT i_stock FROM item WHERE i_id = ?", [4]
        ).rows[0]["i_stock"]
        confirm = app.visit("buy_confirm", session_id=session_id)
        assert confirm.ok
        order_id = confirm.response.model["order_id"]
        lines = tiny_deployment.database.execute(
            "SELECT COUNT(*) AS n FROM order_line WHERE ol_o_id = ?", [order_id]
        ).rows[0]["n"]
        assert lines >= 1
        cart_lines = tiny_deployment.database.execute(
            "SELECT COUNT(*) AS n FROM shopping_cart_line WHERE scl_sc_id = ?",
            [cart.response.model["cart_id"]],
        ).rows[0]["n"]
        assert cart_lines == 0
        stock_after = tiny_deployment.database.execute(
            "SELECT i_stock FROM item WHERE i_id = ?", [4]
        ).rows[0]["i_stock"]
        assert stock_after != stock_before
        # The payment record exists.
        assert (
            tiny_deployment.database.execute(
                "SELECT COUNT(*) AS n FROM cc_xacts WHERE cx_o_id = ?", [order_id]
            ).rows[0]["n"]
            == 1
        )

    def test_order_display_shows_latest_order(self, app, tiny_deployment):
        customer = tiny_deployment.database.execute(
            "SELECT o_c_id FROM orders ORDER BY o_date DESC LIMIT 1"
        ).rows[0]["o_c_id"]
        outcome = app.visit("order_display", parameters={"uname": f"user{customer}"})
        assert outcome.ok
        order = outcome.response.model["order"]
        assert order is not None
        assert order["id"] >= 1

    def test_order_inquiry_prefills_username_from_session(self, app):
        registration = app.visit("customer_registration", parameters={"uname": "user3"})
        outcome = app.visit("order_inquiry", session_id=registration.request.session_id)
        assert outcome.response.model["uname"] == "user3"


class TestAdminServlets:
    def test_admin_request_shows_item(self, app):
        outcome = app.visit("admin_request", parameters={"i_id": 7})
        assert outcome.response.model["book"]["id"] == 7

    def test_admin_confirm_updates_related_items(self, app, tiny_deployment):
        outcome = app.visit("admin_confirm", parameters={"i_id": 9, "cost": 12.0})
        related = outcome.response.model["related"]
        assert len(related) == 5
        row = tiny_deployment.database.execute(
            "SELECT i_related1, i_cost, i_image FROM item WHERE i_id = ?", [9]
        ).rows[0]
        assert row["i_related1"] == related[0]
        assert row["i_cost"] == pytest.approx(12.0)
        assert "v2" in row["i_image"]


class TestServletResourceBehaviour:
    def test_transient_allocations_per_request(self, app, tiny_deployment):
        used_before = tiny_deployment.runtime.used_memory()
        app.visit("home")
        assert tiny_deployment.runtime.used_memory() > used_before

    def test_connections_always_returned(self, app, tiny_deployment):
        for interaction in tiny_deployment.interaction_names():
            app.visit(interaction)
        assert tiny_deployment.datasource.active_connections == 0

    def test_cpu_demands_declared_per_component(self, tiny_deployment):
        demands = {
            name: tiny_deployment.servlet(name).base_cpu_demand_seconds
            for name in tiny_deployment.interaction_names()
        }
        assert demands["best_sellers"] > demands["home"] > demands["order_inquiry"]
        assert all(0.01 <= value <= 1.0 for value in demands.values())
