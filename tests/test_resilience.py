"""Tests for the resilience layer: backoff, breaker, shedding, accounting.

The seeded property tests pin the three behavioural guarantees the
robustness scenarios rely on:

* backoff delays are deterministic per seed and monotone non-decreasing
  in the attempt number up to the cap;
* the circuit breaker admits *exactly one* half-open probe;
* the request ledger ``completions + errors + refusals + in_flight ==
  issued`` holds end-to-end, with and without a resilience config.
"""

from __future__ import annotations

import pytest

from repro.container.resilience import (
    BackoffSchedule,
    CircuitBreaker,
    LoadShedder,
    ResilienceConfig,
)
from repro.experiments.reporting import accounting_sanity_check
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.experiments.scenarios import zoo_fault_spec
from repro.sim.random import RandomStreams
from repro.tpcw.application import TpcwApplication
from repro.tpcw.population import PopulationScale


class TestBackoffSchedule:
    def test_deterministic_per_seed(self):
        for seed in (1, 7, 42, 1234):
            first = BackoffSchedule(
                base_seconds=0.25, multiplier=2.0, cap_seconds=30.0, jitter=0.25,
                streams=RandomStreams(seed),
            )
            second = BackoffSchedule(
                base_seconds=0.25, multiplier=2.0, cap_seconds=30.0, jitter=0.25,
                streams=RandomStreams(seed),
            )
            assert [first.delay(k) for k in range(10)] == [
                second.delay(k) for k in range(10)
            ]

    def test_different_seeds_differ(self):
        a = BackoffSchedule(jitter=0.25, streams=RandomStreams(1))
        b = BackoffSchedule(jitter=0.25, streams=RandomStreams(2))
        assert [a.delay(k) for k in range(6)] != [b.delay(k) for k in range(6)]

    def test_monotone_in_attempt_up_to_cap(self):
        # Property over many seeds: jittered delays never decrease with the
        # attempt number, and the cap is an exact fixed point.
        for seed in range(20):
            schedule = BackoffSchedule(
                base_seconds=0.1, multiplier=2.0, cap_seconds=5.0, jitter=0.5,
                streams=RandomStreams(seed),
            )
            delays = [schedule.delay(k) for k in range(12)]
            for earlier, later in zip(delays, delays[1:]):
                assert later >= earlier - 1e-12
            assert delays[-1] == schedule.cap_seconds

    def test_jitter_bounded_between_raw_and_cap(self):
        schedule = BackoffSchedule(
            base_seconds=0.2, multiplier=2.0, cap_seconds=100.0, jitter=0.3,
            streams=RandomStreams(9),
        )
        for attempt in range(8):
            raw = 0.2 * (2.0 ** attempt)
            delay = schedule.delay(attempt)
            assert raw <= delay <= raw * 1.3 + 1e-12

    def test_cap_returned_exactly_without_jitter(self):
        schedule = BackoffSchedule(
            base_seconds=1.0, multiplier=2.0, cap_seconds=4.0, jitter=0.25,
            streams=RandomStreams(3),
        )
        # raw(2) = 4.0 >= cap: the cap comes back exactly, no jitter above it.
        assert schedule.delay(2) == 4.0
        assert schedule.delay(7) == 4.0

    def test_no_streams_means_raw_exponential(self):
        schedule = BackoffSchedule(base_seconds=0.5, multiplier=2.0, cap_seconds=30.0)
        assert [schedule.delay(k) for k in range(4)] == [0.5, 1.0, 2.0, 4.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            BackoffSchedule(base_seconds=0.0)
        with pytest.raises(ValueError):
            BackoffSchedule(multiplier=0.9)
        with pytest.raises(ValueError):
            BackoffSchedule(base_seconds=2.0, cap_seconds=1.0)
        with pytest.raises(ValueError):
            BackoffSchedule(jitter=-0.1)
        # Jitter above multiplier - 1 would break monotonicity: rejected.
        with pytest.raises(ValueError):
            BackoffSchedule(multiplier=1.5, jitter=0.75)
        with pytest.raises(ValueError):
            BackoffSchedule().delay(-1)


class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, recovery_seconds=10.0)
        for t in range(2):
            breaker.record_failure(float(t))
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure(2.0)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opened_count == 1

    def test_success_resets_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, recovery_seconds=10.0)
        breaker.record_failure(0.0)
        breaker.record_failure(1.0)
        breaker.record_success(2.0)
        breaker.record_failure(3.0)
        breaker.record_failure(4.0)
        assert breaker.state == CircuitBreaker.CLOSED

    def test_open_refuses_until_recovery(self):
        breaker = CircuitBreaker(failure_threshold=1, recovery_seconds=10.0)
        breaker.record_failure(5.0)
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow(6.0)
        assert not breaker.allow(14.9)
        assert breaker.refused_count == 2

    def test_half_open_admits_exactly_one_probe(self):
        breaker = CircuitBreaker(failure_threshold=1, recovery_seconds=10.0)
        breaker.record_failure(0.0)
        # Recovery elapsed: the first request becomes the single probe.
        assert breaker.allow(10.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        # Every further request is refused while the probe is in flight.
        assert not breaker.allow(10.5)
        assert not breaker.allow(11.0)
        assert breaker.refused_count == 2

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, recovery_seconds=10.0)
        breaker.record_failure(0.0)
        assert breaker.allow(10.0)
        breaker.record_success(10.2)
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow(10.3)

    def test_probe_failure_retrips(self):
        breaker = CircuitBreaker(failure_threshold=1, recovery_seconds=10.0)
        breaker.record_failure(0.0)
        assert breaker.allow(10.0)
        breaker.record_failure(10.2)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opened_count == 2
        # The recovery clock restarts from the re-trip.
        assert not breaker.allow(15.0)
        assert breaker.allow(20.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(recovery_seconds=0.0)


class TestLoadShedder:
    def test_sheds_low_priority_only_under_pressure(self):
        shedder = LoadShedder(
            occupancy_threshold=0.8,
            priorities={"best_sellers": 0, "buy_confirm": 2},
            shed_below_priority=1,
        )
        # Below the threshold nothing is shed.
        assert not shedder.should_shed("best_sellers", 0.79)
        # At/above the threshold only priorities below the floor are shed.
        assert shedder.should_shed("best_sellers", 0.8)
        assert not shedder.should_shed("buy_confirm", 1.0)

    def test_unlisted_pages_are_never_shed(self):
        shedder = LoadShedder(occupancy_threshold=0.5, priorities={}, shed_below_priority=1)
        assert not shedder.should_shed("mystery_page", 1.0)

    def test_record_shed_counts_by_component(self):
        shedder = LoadShedder()
        shedder.record_shed("best_sellers")
        shedder.record_shed("best_sellers")
        shedder.record_shed("admin_request")
        assert shedder.shed_count == 3
        assert shedder.shed_by_component == {"best_sellers": 2, "admin_request": 1}

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadShedder(occupancy_threshold=0.0)
        with pytest.raises(ValueError):
            LoadShedder(occupancy_threshold=1.1)
        with pytest.raises(ValueError):
            LoadShedder(retry_after_seconds=0.0)

    def test_server_sheds_and_accounts_refusals(self, tiny_deployment):
        app = TpcwApplication(tiny_deployment)
        server = tiny_deployment.server
        shedder = LoadShedder(
            occupancy_threshold=0.5,
            priorities={"new_products": 0},
            shed_below_priority=1,
            retry_after_seconds=5.0,
        )
        server.install_load_shedder(shedder)
        # Force pool pressure: every worker thread looks busy.
        server.pool_occupancy = lambda at_time: 1.0
        completed_before = server.completed_requests

        shed = app.visit("new_products", at_time=1.0)
        assert shed.rejected and shed.refused_by_shedding and shed.refused
        assert shed.response.status == 503
        assert shed.retry_after == pytest.approx(6.0)

        kept = app.visit("home")  # unlisted -> priority floor -> never shed
        assert kept.ok and not kept.refused

        assert server.refused_by_shedding == 1
        assert shedder.shed_count == 1
        # A shed request is never a completion or an error.
        assert server.completed_requests == completed_before + 1


class TestResilienceConfig:
    def test_naive_retries_have_no_backoff(self):
        config = ResilienceConfig.naive_retries(timeout_seconds=2.0, max_attempts=3)
        assert config.build_backoff(RandomStreams(1)) is None
        assert config.build_breaker("home") is None
        assert config.build_shedder() is None
        assert config.timeout_seconds == 2.0

    def test_backoff_retries_build_schedule(self):
        config = ResilienceConfig.backoff_retries()
        schedule = config.build_backoff(RandomStreams(1))
        assert isinstance(schedule, BackoffSchedule)
        assert schedule.cap_seconds == config.backoff_cap_seconds

    def test_backoff_with_breaker_builds_breaker(self):
        config = ResilienceConfig.backoff_with_breaker(
            breaker_failure_threshold=4, breaker_recovery_seconds=15.0
        )
        breaker = config.build_breaker("product_detail")
        assert isinstance(breaker, CircuitBreaker)
        assert breaker.failure_threshold == 4
        assert breaker.name == "product_detail"
        assert config.build_shedder() is None

    def test_full_stack_builds_shedder(self):
        config = ResilienceConfig.full(
            shed_occupancy_threshold=0.9, priorities={"best_sellers": 0}
        )
        shedder = config.build_shedder()
        assert isinstance(shedder, LoadShedder)
        assert shedder.occupancy_threshold == 0.9
        assert shedder.priority_of("best_sellers") == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ResilienceConfig(max_attempts=0)
        with pytest.raises(ValueError):
            ResilienceConfig(timeout_seconds=0.0)
        with pytest.raises(ValueError):
            ResilienceConfig(immediate_retry_delay_seconds=-1.0)


class TestAccountingInvariant:
    """End-to-end: every issued attempt lands in exactly one ledger bucket."""

    def _run(self, resilience):
        config = ExperimentConfig(
            name="accounting",
            seed=42,
            scale=PopulationScale.tiny(),
            constant_ebs=25,
            duration=3600.0 * 0.02,
            mix_name="shopping",
            monitored=False,
            collect_blackbox_samples=False,
            faults=[zoo_fault_spec("slow-downstream", period_n=5)],
            resilience=resilience,
        )
        return run_experiment(config)

    def test_invariant_holds_with_resilient_client(self):
        result = self._run(
            ResilienceConfig.backoff_with_breaker(
                timeout_seconds=0.5,
                max_attempts=3,
                breaker_failure_threshold=5,
                breaker_recovery_seconds=30.0,
            )
        )
        ledger = result.accounting
        assert ledger["issued"] > 0
        assert (
            ledger["completions"] + ledger["errors"] + ledger["refusals"]
            + ledger["in_flight"]
            == ledger["issued"]
        )
        assert ledger["in_flight"] == 0
        assert ledger["refusals"] == (
            ledger["breaker_refusals"]
            + ledger["shed_refusals"]
            + ledger["outage_refusals"]
        )
        # The reporting-side sanity check accepts the same result.
        assert accounting_sanity_check(result) == ledger

    def test_invariant_holds_with_legacy_client(self):
        result = self._run(None)
        ledger = result.accounting
        assert ledger["issued"] == result.completed_requests
        assert ledger["retries"] == 0 and ledger["refusals"] == 0
        assert (
            ledger["completions"] + ledger["errors"] + ledger["refusals"]
            + ledger["in_flight"]
            == ledger["issued"]
        )
        assert ledger["in_flight"] == 0
        accounting_sanity_check(result)
