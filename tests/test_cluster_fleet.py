"""Tests for the sharded-fleet cluster layer (ISSUE 7).

Covers the acceptance semantics of the cluster abstraction:

* **shards=1 equivalence** — the refactored runner routes every experiment
  through :class:`~repro.experiments.cluster.SimulatedCluster`, and a
  one-shard cluster must be *bit-identical* to the pre-cluster harness.
  The golden values below were captured from the pre-refactor code at the
  same (scenario, duration_scale, seed, population); exact equality —
  including float response times and SLA costs — is the contract.
* **ledger conservation** — under sticky and round-robin balancing, with
  outage-driven failovers in the mix, every issued request lands on exactly
  one shard and is completed or rejected there
  (``sum_i(completed_i + rejected_i) == issued``).
* **rolling capacity floor** — rolling fleet rejuvenation recycles each
  shard exactly once, one at a time, keeping aggregate capacity at or above
  the ``(N-1)/N`` SLA floor, while simultaneous mode drops to zero.
"""

from __future__ import annotations

import pytest

from repro.experiments.cluster import (
    BALANCER_POLICIES,
    SHARD_SEED_STRIDE,
    LoadBalancer,
    build_cluster,
)
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.experiments.scenarios import (
    fig4_single_leak,
    fig_fleet,
    fig_rejuvenation,
)
from repro.sim.engine import SimulationEngine
from repro.tpcw.population import PopulationScale
from repro.tpcw.workload import WorkloadGenerator, WorkloadPhase

TINY = PopulationScale.tiny()


# --------------------------------------------------------------------------- #
# shards=1 bit-identical equivalence (golden values from the pre-cluster code)
# --------------------------------------------------------------------------- #
#: fig4_single_leak(duration_scale=0.05, seed=42, scale=tiny) before the
#: cluster refactor.  Floats included deliberately: the claim is *bit*
#: identity, not statistical similarity.
FIG4_GOLDEN = {
    "completed": 2565,
    "errors": 0,
    "issued": 2565,
    "mean_rt": 0.16165932249106596,
    "heap_last": 116739104.0,
    "growth_A": 1126400.0,
    "root_top": "product_detail",
    "root_resp": 1.0,
    "overhead_seconds": 25.650000000003896,
    "monitoring_samples": 10260,
}

#: fig_rejuvenation(duration_scale=0.05, seed=42, scale=tiny) before the
#: refactor: (completed, errors, issued, mean_rt@9dp, actions, downtime,
#: refused, sla_cost@6dp) per policy.
REJUVENATION_GOLDEN = {
    "no-action": (2566, 14, 2566, 0.164621571, 0, 0, 0, 9282.333333),
    "time-based": (2383, 0, 2509, 0.160078636, 2, 12.0, 126, 7923.5),
    "proactive-microreboot": (2567, 0, 2567, 0.158464584, 2, 0.5, 0, 213.833333),
}


class TestSingleShardEquivalence:
    def test_fig4_bit_identical_to_pre_cluster_harness(self):
        scenario = fig4_single_leak(duration_scale=0.05, seed=42, scale=TINY)
        result = scenario.result
        got = {
            "completed": result.completed_requests,
            "errors": result.error_count,
            "issued": result.issued_requests,
            "mean_rt": result.mean_response_time,
            "heap_last": float(result.heap_series.values[-1]),
            "growth_A": scenario.growth()["product_detail"],
            "root_top": result.root_cause.top().component,
            "root_resp": result.root_cause.top().responsibility,
            "overhead_seconds": result.overhead_seconds,
            "monitoring_samples": result.monitoring_samples,
        }
        assert got == FIG4_GOLDEN

    def test_fig_rejuvenation_bit_identical_to_pre_cluster_harness(self):
        scenario = fig_rejuvenation(duration_scale=0.05, seed=42, scale=TINY)
        assert set(scenario.results) == set(REJUVENATION_GOLDEN)
        for name, result in scenario.results.items():
            report = result.rejuvenation
            got = (
                result.completed_requests,
                result.error_count,
                result.issued_requests,
                round(result.mean_response_time, 9),
                report.actions if report else 0,
                report.total_downtime_seconds if report else 0,
                report.refused_requests if report else 0,
                round(scenario.sla_cost(name), 6),
            )
            assert got == REJUVENATION_GOLDEN[name], name

    def test_single_shard_run_has_no_fleet_report(self):
        result = run_experiment(
            ExperimentConfig(
                name="one-shard",
                seed=5,
                scale=TINY,
                constant_ebs=5,
                duration=30.0,
                monitored=False,
            )
        )
        assert result.fleet is None
        assert result.cluster is not None
        assert len(result.cluster.shards) == 1


# --------------------------------------------------------------------------- #
# Balancer routing + ledger conservation
# --------------------------------------------------------------------------- #
def _fleet_config(policy: str, shards: int = 3, **overrides) -> ExperimentConfig:
    defaults = dict(
        name=f"ledger-{policy}",
        seed=11,
        scale=TINY,
        constant_ebs=12,
        duration=90.0,
        monitored=False,
        shards=shards,
        balancer_policy=policy,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestLedgerConservation:
    @pytest.mark.parametrize("policy", ["sticky", "round-robin", "least-occupancy"])
    def test_every_issued_request_is_served_by_exactly_one_shard(self, policy):
        result = run_experiment(_fleet_config(policy))
        fleet = result.fleet
        assert fleet is not None
        ledger = fleet.ledger
        served = sum(
            int(row["completed"]) + int(row["rejected"]) for row in fleet.per_shard
        )
        assert served == ledger["issued"] == ledger["served"]
        assert ledger["issued"] > 0
        # Every shard actually took load (round-robin exactly so, sticky and
        # least-occupancy by the rotation cursor over first contacts).
        assert all(count > 0 for count in fleet.balancer["routed"])
        assert sum(fleet.balancer["routed"]) == ledger["issued"]

    @pytest.mark.parametrize("policy", ["sticky", "round-robin"])
    def test_ledger_holds_across_outage_failover(self, policy):
        """Mid-run shard outages re-route requests without losing any."""
        engine = SimulationEngine()
        config = _fleet_config(policy, shards=3, seed=23)
        cluster = build_cluster(config, engine)
        # Take shard 1 down mid-run: its sticky sessions must fail over,
        # the rotation must skip it, and no request may vanish.
        cluster.shards[1].deployment.server.begin_outage(30.0, 50.0)
        generator = WorkloadGenerator(engine, cluster)
        generator.schedule_phases([WorkloadPhase(0.0, 12)])
        generator.run(90.0)

        generator.check_accounting()
        ledger = cluster.ledger_check(generator)
        assert ledger["served"] == generator.issued_requests
        # The unhealthy window steered load away from shard 1 without losing
        # any request; all shards still served outside the window.
        summaries = [shard.summary() for shard in cluster.shards]
        assert all(int(row["completed"]) > 0 for row in summaries)

    def test_sticky_failover_rebinds_to_a_healthy_shard(self):
        """A bound session whose shard goes down is re-routed, and counted."""
        engine = SimulationEngine()
        cluster = build_cluster(_fleet_config("sticky", shards=3), engine)

        class _Request:
            uri = "/tpcw/home"
            session_id = "S1-00000001"

        request = _Request()
        cluster.balancer.observe(request, cluster.shards[1])
        assert cluster.balancer.route(request, 10.0) is cluster.shards[1]
        assert cluster.balancer.failovers == 0

        cluster.shards[1].deployment.server.begin_outage(20.0, 40.0)
        rerouted = cluster.balancer.route(request, 25.0)
        assert rerouted is not cluster.shards[1]
        assert cluster.balancer.failovers == 1
        # After the window the (new) binding keeps routing wherever the
        # failover landed — `observe` rebinds on the served shard.
        cluster.balancer.observe(request, rerouted)
        assert cluster.balancer.route(request, 50.0) is rerouted

    def test_sticky_sessions_stay_bound_without_outages(self):
        """Healthy sticky routing never fails over, and sessions pin."""
        engine = SimulationEngine()
        cluster = build_cluster(_fleet_config("sticky", shards=2, seed=31), engine)
        generator = WorkloadGenerator(engine, cluster)
        generator.schedule_phases([WorkloadPhase(0.0, 8)])
        generator.run(60.0)
        assert cluster.balancer.failovers == 0
        assert cluster.balancer.routed_while_all_down == 0
        cluster.ledger_check(generator)

    def test_all_shards_down_requests_are_refused_not_lost(self):
        engine = SimulationEngine()
        cluster = build_cluster(_fleet_config("sticky", shards=2, seed=37), engine)
        for shard in cluster.shards:
            shard.deployment.server.begin_outage(20.0, 40.0)
        generator = WorkloadGenerator(engine, cluster)
        generator.schedule_phases([WorkloadPhase(0.0, 10)])
        generator.run(80.0)
        assert cluster.balancer.routed_while_all_down > 0
        assert cluster.server.refused_during_outage > 0
        assert generator.refused_requests == cluster.server.refused_during_outage
        cluster.ledger_check(generator)

    def test_unknown_policy_rejected(self):
        engine = SimulationEngine()
        with pytest.raises(ValueError, match="unknown balancer policy"):
            build_cluster(_fleet_config("random"), engine)
        assert "sticky" in BALANCER_POLICIES

    def test_round_robin_rotates_across_healthy_shards(self):
        engine = SimulationEngine()
        cluster = build_cluster(_fleet_config("round-robin", shards=3), engine)
        balancer: LoadBalancer = cluster.balancer

        class _Request:
            uri = "/tpcw/home"
            session_id = None

        picks = [balancer.route(_Request(), 0.0).index for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_shard_seeds_are_offset_and_session_ids_namespaced(self):
        engine = SimulationEngine()
        cluster = build_cluster(_fleet_config("sticky", shards=3), engine)
        prefixes = [
            shard.deployment.server.sessions.id_prefix for shard in cluster.shards
        ]
        assert prefixes == ["S", "S1-", "S2-"]
        assert SHARD_SEED_STRIDE > 0


# --------------------------------------------------------------------------- #
# Rolling fleet rejuvenation
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def fleet_scenario():
    """The acceptance-scale fleet comparison (tiny, 0.05, seed 42, 4 shards)."""
    return fig_fleet(duration_scale=0.05, seed=42, scale=TINY)


class TestRollingRejuvenation:
    def test_rolling_keeps_capacity_at_or_above_sla_floor(self, fleet_scenario):
        s = fleet_scenario
        assert s.sla_floor == pytest.approx((s.shards - 1) / s.shards)
        assert s.min_capacity_fraction("rolling") >= s.sla_floor - 1e-12
        assert s.below_floor_seconds("rolling") == 0.0

    def test_rolling_recycles_each_shard_exactly_once(self, fleet_scenario):
        fleet = fleet_scenario.results["rolling"].fleet
        assert fleet is not None and fleet.rejuvenation is not None
        windows = fleet.rejuvenation.windows
        assert sorted(shard for shard, _, _ in windows) == list(range(fleet_scenario.shards))
        # One at a time: windows must not overlap.
        ordered = sorted(windows, key=lambda w: w[1])
        for (_, _, prev_end), (_, next_start, _) in zip(ordered, ordered[1:]):
            assert next_start >= prev_end - 1e-9

    def test_simultaneous_mode_blacks_out_the_fleet(self, fleet_scenario):
        s = fleet_scenario
        assert s.min_capacity_fraction("simultaneous") == 0.0
        assert s.below_floor_seconds("simultaneous") > 0.0

    def test_rolling_wins_on_fleet_sla_cost(self, fleet_scenario):
        s = fleet_scenario
        assert s.rolling_wins()
        assert s.sla_cost("rolling") < s.sla_cost("simultaneous")
        assert s.sla_cost("rolling") < s.sla_cost("no-action")

    def test_fleet_manager_ranks_cross_shard_aging(self, fleet_scenario):
        rows = fleet_scenario.root_cause_rows("no-action")
        assert len(rows) == fleet_scenario.shards
        growths = [float(row["heap_growth_mb"]) for row in rows]
        assert growths == sorted(growths, reverse=True)
        assert all(row["component"] == "product_detail" for row in rows)

    def test_fleet_run_is_deterministic_per_seed(self):
        def run():
            result = run_experiment(
                _fleet_config("sticky", shards=2, seed=13, duration=60.0)
            )
            fleet = result.fleet
            return (
                result.completed_requests,
                result.issued_requests,
                result.mean_response_time,
                tuple(fleet.balancer["routed"]),
                tuple(
                    (row["shard"], row["completed"], row["rejected"])
                    for row in fleet.per_shard
                ),
            )

        assert run() == run()

    def test_fleet_rejuvenation_requires_multiple_shards(self):
        with pytest.raises(ValueError, match="fleet rejuvenation"):
            run_experiment(
                _fleet_config("sticky", shards=1, fleet_rejuvenation="rolling")
            )
