"""Tests for the virtual clock and the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.sim.clock import SimClock
from repro.sim.engine import SimulationEngine, StopSimulation


class TestSimClock:
    def test_starts_at_zero_by_default(self):
        assert SimClock().now == 0.0

    def test_starts_at_given_time(self):
        assert SimClock(12.5).now == 12.5

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            SimClock(-1.0)

    def test_advance_to_moves_forward(self):
        clock = SimClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_advance_to_rejects_going_backwards(self):
        clock = SimClock(5.0)
        with pytest.raises(ValueError):
            clock.advance_to(4.0)

    def test_advance_by_accumulates(self):
        clock = SimClock()
        clock.advance_by(1.5)
        clock.advance_by(2.5)
        assert clock.now == 4.0

    def test_advance_by_rejects_negative(self):
        with pytest.raises(ValueError):
            SimClock().advance_by(-0.1)


class TestSimulationEngine:
    def test_events_run_in_time_order(self):
        engine = SimulationEngine()
        order = []
        engine.schedule_at(5.0, lambda: order.append("b"))
        engine.schedule_at(1.0, lambda: order.append("a"))
        engine.schedule_at(9.0, lambda: order.append("c"))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_clock_follows_events(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule_at(3.0, lambda: seen.append(engine.now))
        engine.schedule_at(7.0, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [3.0, 7.0]

    def test_ties_break_by_priority_then_insertion(self):
        engine = SimulationEngine()
        order = []
        engine.schedule_at(1.0, lambda: order.append("late"), priority=5)
        engine.schedule_at(1.0, lambda: order.append("early"), priority=-5)
        engine.schedule_at(1.0, lambda: order.append("mid1"))
        engine.schedule_at(1.0, lambda: order.append("mid2"))
        engine.run()
        assert order == ["early", "mid1", "mid2", "late"]

    def test_schedule_in_is_relative_to_now(self):
        engine = SimulationEngine()
        engine.schedule_at(10.0, lambda: engine.schedule_in(5.0, lambda: None, name="x"))
        engine.run()
        assert engine.now == 15.0

    def test_cannot_schedule_in_the_past(self):
        engine = SimulationEngine()
        engine.clock.advance_to(10.0)
        with pytest.raises(ValueError):
            engine.schedule_at(5.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            SimulationEngine().schedule_in(-1.0, lambda: None)

    def test_run_until_leaves_future_events_pending(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(1.0, lambda: fired.append(1))
        engine.schedule_at(100.0, lambda: fired.append(2))
        executed = engine.run_until(50.0)
        assert executed == 1
        assert fired == [1]
        assert engine.pending_events == 1
        assert engine.now == 50.0

    def test_cancelled_events_do_not_fire(self):
        engine = SimulationEngine()
        fired = []
        event = engine.schedule_at(1.0, lambda: fired.append(1))
        event.cancel()
        engine.run()
        assert fired == []
        assert engine.executed_events == 0

    def test_stop_simulation_exception_halts_run(self):
        engine = SimulationEngine()
        fired = []

        def boom():
            fired.append("boom")
            raise StopSimulation()

        engine.schedule_at(1.0, boom)
        engine.schedule_at(2.0, lambda: fired.append("after"))
        engine.run_until(10.0)
        assert fired == ["boom"]

    def test_events_scheduled_during_run_execute(self):
        engine = SimulationEngine()
        results = []

        def first():
            engine.schedule_in(1.0, lambda: results.append(engine.now))

        engine.schedule_at(2.0, first)
        engine.run_until(10.0)
        assert results == [3.0]

    def test_run_max_events_bound(self):
        engine = SimulationEngine()
        for index in range(10):
            engine.schedule_at(float(index), lambda: None)
        executed = engine.run(max_events=4)
        assert executed == 4
        assert engine.pending_events == 6

    def test_trace_records_event_names(self):
        engine = SimulationEngine(trace=True)
        engine.schedule_at(1.0, lambda: None, name="alpha")
        engine.schedule_at(2.0, lambda: None, name="beta")
        engine.run()
        assert engine.trace == ["alpha", "beta"]
