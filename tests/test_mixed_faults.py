"""Tests for the mixed-fault scenario (concurrent heap + connection leaks).

The attribution claim under test: with component A leaking heap and
component B leaking pooled connections *in the same run*, the proactive
policy watching both resource channels must recycle A for the heap (via the
root-cause analysis) and B for the connections (via pool-ownership
accounting) — the two channels' suspects must disagree — and doing so must
eliminate the error spike the no-action run pays.
"""

from __future__ import annotations

import pytest

from repro.experiments.reporting import mixed_report
from repro.experiments.scenarios import COMPONENT_A, COMPONENT_B, fig_mixed
from repro.tpcw.population import PopulationScale


@pytest.fixture(scope="module")
def scenario():
    return fig_mixed(duration_scale=0.05, seed=42, scale=PopulationScale.tiny())


class TestMixedFaults:
    def test_no_action_pays_with_errors(self, scenario):
        no_action = scenario.result("no-action")
        assert no_action.error_count > 0

    def test_proactive_recycles_the_right_component_per_resource(self, scenario):
        recycles = scenario.recycles("proactive-microreboot")
        # Heap channel blames the memory leaker...
        assert set(recycles.get("heap", {})) == {COMPONENT_A}
        # ...the connection channel independently blames the connection leaker.
        assert set(recycles.get("connections", {})) == {COMPONENT_B}

    def test_proactive_eliminates_error_spike(self, scenario):
        proactive = scenario.result("proactive-microreboot")
        assert proactive.error_count == 0
        assert scenario.exposure("proactive-microreboot") == 0.0

    def test_recycling_actually_reclaims_both_resources(self, scenario):
        rejuvenation = scenario.result("proactive-microreboot").rejuvenation
        assert rejuvenation is not None
        assert rejuvenation.reclaimed_bytes > 0
        assert rejuvenation.reclaimed_connections > 0

    def test_deterministic_per_seed(self, scenario):
        again = fig_mixed(duration_scale=0.05, seed=42, scale=PopulationScale.tiny())
        for policy, result in scenario.results.items():
            other = again.result(policy)
            assert other.completed_requests == result.completed_requests
            assert other.error_count == result.error_count
            assert scenario.recycles(policy) == again.recycles(policy)

    def test_report_renders(self, scenario):
        text = mixed_report(scenario)
        assert "Mixed faults" in text
        assert COMPONENT_A in text
        assert COMPONENT_B in text
        assert "executed actions:" in text
