"""Tests for the mixed-fault scenario (concurrent heap + connection leaks).

The attribution claim under test: with component A leaking heap and
component B leaking pooled connections *in the same run*, the recycling
policies (proactive **and** adaptive, ISSUE 5) watching both resource
channels must recycle A for the heap (via the root-cause analysis) and B
for the connections (via pool-ownership accounting) — the two channels'
suspects must disagree — and doing so must eliminate the error spike the
no-action run pays.

The ``dual_leak`` variant moves the connection leak into component A, so
one component leaks two resources at once: both channels must now converge
on A independently, and each recycle of A must reclaim heap *and*
connections.
"""

from __future__ import annotations

import pytest

from repro.experiments.reporting import mixed_report
from repro.experiments.scenarios import COMPONENT_A, COMPONENT_B, fig_mixed
from repro.tpcw.population import PopulationScale


@pytest.fixture(scope="module")
def scenario():
    return fig_mixed(duration_scale=0.05, seed=42, scale=PopulationScale.tiny())


@pytest.fixture(scope="module")
def dual_scenario():
    return fig_mixed(
        duration_scale=0.05, seed=42, scale=PopulationScale.tiny(), dual_leak=True
    )


class TestMixedFaults:
    def test_no_action_pays_with_errors(self, scenario):
        no_action = scenario.result("no-action")
        assert no_action.error_count > 0

    def test_proactive_recycles_the_right_component_per_resource(self, scenario):
        recycles = scenario.recycles("proactive-microreboot")
        # Heap channel blames the memory leaker...
        assert set(recycles.get("heap", {})) == {COMPONENT_A}
        # ...the connection channel independently blames the connection leaker.
        assert set(recycles.get("connections", {})) == {COMPONENT_B}

    def test_proactive_eliminates_error_spike(self, scenario):
        proactive = scenario.result("proactive-microreboot")
        assert proactive.error_count == 0
        assert scenario.exposure("proactive-microreboot") == 0.0

    def test_recycling_actually_reclaims_both_resources(self, scenario):
        rejuvenation = scenario.result("proactive-microreboot").rejuvenation
        assert rejuvenation is not None
        assert rejuvenation.reclaimed_bytes > 0
        assert rejuvenation.reclaimed_connections > 0

    def test_deterministic_per_seed(self, scenario):
        again = fig_mixed(duration_scale=0.05, seed=42, scale=PopulationScale.tiny())
        for policy, result in scenario.results.items():
            other = again.result(policy)
            assert other.completed_requests == result.completed_requests
            assert other.error_count == result.error_count
            assert scenario.recycles(policy) == again.recycles(policy)

    def test_report_renders(self, scenario):
        text = mixed_report(scenario)
        assert "Mixed faults" in text
        assert COMPONENT_A in text
        assert COMPONENT_B in text
        assert "executed actions:" in text


class TestMixedAdaptive:
    """The adaptive policy scored on mixed faults (ISSUE 5 / ROADMAP gap)."""

    def test_adaptive_is_scored(self, scenario):
        assert "adaptive" in scenario.results
        assert {"no-action", "proactive-microreboot", "adaptive"} <= set(
            scenario.results
        )

    def test_adaptive_recycles_the_right_component_per_resource(self, scenario):
        recycles = scenario.recycles("adaptive")
        assert set(recycles.get("heap", {})) == {COMPONENT_A}
        assert set(recycles.get("connections", {})) == {COMPONENT_B}

    def test_adaptive_eliminates_error_spike(self, scenario):
        adaptive = scenario.result("adaptive")
        assert adaptive.error_count == 0
        assert scenario.exposure("adaptive") == 0.0

    def test_adaptive_maintains_separate_horizons_per_resource(self, scenario):
        policy = scenario.result("adaptive").config.rejuvenation
        assert sorted(policy.calibrated_resources()) == ["connections", "heap"]
        assert policy.predictor("heap") is not policy.predictor("connections")


class TestDualLeak:
    """One component leaking heap AND connections at once (ISSUE 5)."""

    def test_injection_plan_targets_one_component(self, dual_scenario):
        assert dual_scenario.injected == {
            COMPONENT_A: "memory-leak+connection-leak"
        }

    def test_no_action_pays_with_errors(self, dual_scenario):
        assert dual_scenario.result("no-action").error_count > 0

    @pytest.mark.parametrize("policy", ["proactive-microreboot", "adaptive"])
    def test_every_recycle_targets_the_dual_leaker(self, dual_scenario, policy):
        recycles = dual_scenario.recycles(policy)
        assert recycles, "the recycling policy must act"
        # Whichever channel trends to exhaustion first, the blamed component
        # is always A — heap via the strategy analysis, connections via pool
        # ownership.  (A micro-reboot recycles the *whole* component, so one
        # channel's recycle can legitimately reset the other's trend too.)
        for resource, by_component in recycles.items():
            assert set(by_component) == {COMPONENT_A}, resource

    def test_both_channels_observed_attributing_a(self, dual_scenario):
        # Across the recycling policies, both channels fire at least once and
        # both independently converge on A (the adaptive run's per-resource
        # horizons make it recycle on heap *and* connection predictions).
        resources = set()
        for policy in ("proactive-microreboot", "adaptive"):
            resources |= set(dual_scenario.recycles(policy))
        assert {"heap", "connections"} <= resources

    @pytest.mark.parametrize("policy", ["proactive-microreboot", "adaptive"])
    def test_recycling_reclaims_both_resources_and_clears_errors(
        self, dual_scenario, policy
    ):
        result = dual_scenario.result(policy)
        assert result.error_count == 0
        rejuvenation = result.rejuvenation
        assert rejuvenation is not None
        assert rejuvenation.reclaimed_bytes > 0
        assert rejuvenation.reclaimed_connections > 0

    def test_deterministic_per_seed(self, dual_scenario):
        again = fig_mixed(
            duration_scale=0.05, seed=42, scale=PopulationScale.tiny(), dual_leak=True
        )
        for policy, result in dual_scenario.results.items():
            other = again.result(policy)
            assert other.completed_requests == result.completed_requests
            assert other.error_count == result.error_count
            assert dual_scenario.recycles(policy) == again.recycles(policy)

    def test_report_renders_dual_plan(self, dual_scenario):
        text = mixed_report(dual_scenario)
        assert "memory-leak+connection-leak" in text
