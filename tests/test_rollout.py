"""Tests for progressive delivery: the RolloutController stage ladder,
alert-driven rollback, partial rollback, stream replay and fig_rollout."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments.deploy import (
    BASELINE_VERSION,
    ComponentVersion,
    RolloutPlan,
    default_stage_ladder,
)
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.experiments.scenarios import ROLLOUT_MODES, fig_rollout
from repro.obs.transports import (
    ReplaySource,
    load_stream,
    recorded_verdicts,
    replay_verdicts,
    ruling_events,
)
from repro.tpcw.population import PopulationScale

CLEAN = ComponentVersion(component="home", version="v2-clean")


class TestLadderAndPlanValidation:
    def test_default_stage_ladder_is_one_half_all(self):
        assert default_stage_ladder(4) == (1, 2, 4)
        assert default_stage_ladder(5) == (1, 3, 5)
        assert default_stage_ladder(3) == (1, 2, 3)
        # At two shards the half rung collapses into the canary rung.
        assert default_stage_ladder(2) == (1, 2)
        with pytest.raises(ValueError, match="at least 2"):
            default_stage_ladder(1)

    def test_plan_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="start_time"):
            RolloutPlan(version=CLEAN, start_time=-1.0)
        with pytest.raises(ValueError, match="stage_bake_seconds"):
            RolloutPlan(version=CLEAN, start_time=0.0, stage_bake_seconds=0.0)
        with pytest.raises(ValueError, match="strictly increasing"):
            RolloutPlan(version=CLEAN, start_time=0.0, stage_sizes=(1, 1, 4))
        with pytest.raises(ValueError, match="must not be empty"):
            RolloutPlan(version=CLEAN, start_time=0.0, stage_sizes=())

    def test_ladder_must_end_at_the_fleet_size(self):
        plan = RolloutPlan(version=CLEAN, start_time=0.0, stage_sizes=(1, 2, 4))
        assert plan.ladder(4) == (1, 2, 4)
        with pytest.raises(ValueError, match=r"shards: 5"):
            plan.ladder(5)


class TestHealthyStagedRollout:
    @pytest.fixture(scope="class")
    def report(self):
        config = ExperimentConfig(
            name="staged-clean",
            seed=11,
            scale=PopulationScale.tiny(),
            constant_ebs=30,
            duration=160.0,
            monitored=True,
            shards=4,
            snapshot_interval=5.0,
            rollout=RolloutPlan(
                version=CLEAN,
                start_time=20.0,
                stage_bake_seconds=20.0,
                stagger_seconds=5.0,
                deploy_downtime_seconds=1.0,
            ),
        )
        return run_experiment(config).rollout

    def test_promotes_through_every_stage_to_the_whole_fleet(self, report):
        assert report.completed
        assert not report.rolled_back
        assert report.ladder == (1, 2, 4)
        assert set(report.versions.values()) == {"v2-clean"}
        actions = [event["action"] for event in report.events]
        assert actions.count("deploy") == 4
        assert actions.count("promote") == 2  # every non-final stage ruled
        assert "rollback" not in actions
        assert actions[-1] == "complete"

    def test_stage_windows_never_overlap(self, report):
        """Stage k+1's first deploy comes strictly after stage k's ruling."""
        stages = report.stages
        assert [row["stage"] for row in stages] == [0, 1, 2]
        for earlier, later in zip(stages, stages[1:]):
            if "ruled_at" in earlier:
                assert later["deployed_at"] > earlier["ruled_at"]
        # Non-final stages each carry a deadline ruling; the final one rules
        # nothing (no baselines left to compare against).
        assert [row.get("trigger") for row in stages] == ["deadline", "deadline", None]
        assert all(row["promote"] for row in stages[:-1])

    def test_full_promotion_eventually_exposes_the_whole_fleet(self, report):
        assert report.max_concurrent_deploys() == 4


class TestFigRollout:
    @pytest.fixture(scope="class")
    def scenario(self, tmp_path_factory):
        stream = tmp_path_factory.mktemp("obs") / "rollout.jsonl"
        result = fig_rollout(
            duration_scale=0.05,
            seed=42,
            scale=PopulationScale.tiny(),
            stream_metrics=str(stream),
        )
        return result, stream

    def test_modes_and_validation(self, scenario):
        result, _ = scenario
        assert tuple(result.results) == ROLLOUT_MODES
        with pytest.raises(ValueError, match="duration_scale"):
            fig_rollout(duration_scale=0.0)
        with pytest.raises(ValueError, match="shards"):
            fig_rollout(shards=2)

    def test_alert_rules_the_stage_before_the_bake_deadline(self, scenario):
        result, _ = scenario
        assert result.ruling_trigger() == "alert"
        assert result.ruled_at() < result.deadline_at()

    def test_partial_rollback_restores_exactly_the_deployed_shards(self, scenario):
        result, _ = scenario
        report = result.staged_report()
        assert report.rolled_back and not report.completed
        # Stage 0 of the default ladder is the last shard; nothing else was
        # ever deployed, and it is back on baseline at the end of the run.
        stage0 = report.stages[0]
        assert not stage0["promote"]
        touched = {event["shard"] for event in report.events}
        assert touched == set(stage0["shards"])
        assert set(report.versions.values()) == {BASELINE_VERSION}
        assert report.max_concurrent_deploys() == 1
        assert result.leaky_shards("staged") == 0

    def test_blast_radius_never_exceeds_the_active_stage(self, scenario):
        result, _ = scenario
        assert result.blast_radius_ok()
        assert result.max_exposed_shards("staged") == result.ladder[0]
        assert result.max_exposed_shards("blind") == result.shards

    def test_staged_wins_on_sla_cost(self, scenario):
        result, _ = scenario
        assert result.staged_wins()
        assert result.sla_cost("staged") <= result.sla_cost("single-canary")
        assert result.sla_cost("single-canary") <= result.sla_cost("blind")
        assert result.sla_cost("staged") < result.sla_cost("blind")

    def test_replayed_verdicts_are_byte_identical_to_the_live_run(self, scenario):
        _, stream = scenario
        record = load_stream(str(stream))[-1]
        assert ruling_events(record)
        recorded = recorded_verdicts(record)
        replayed = replay_verdicts(record)
        canonical = lambda v: json.dumps(v, sort_keys=True, separators=(",", ":"))
        assert canonical(replayed) == canonical(recorded)

    def test_threshold_override_re_rules_the_recorded_evidence(self, scenario):
        _, scenario_stream = scenario
        record = load_stream(str(scenario_stream))[-1]
        live = replay_verdicts(record)
        assert not live[0]["promote"]
        what_if = replay_verdicts(
            record, {"growth_ratio_threshold": live[0]["growth_ratio"] * 10}
        )
        assert what_if[0]["promote"]

    def test_replay_source_rejects_non_rollout_streams(self, scenario):
        _, stream = scenario
        record = load_stream(str(stream))[-1]
        stripped = {k: v for k, v in record.items() if k != "rollout_series"}
        with pytest.raises(ValueError, match="rollout_series"):
            ReplaySource(stripped)
        source = ReplaySource(record)
        with pytest.raises(ValueError, match="no shard 99"):
            source.heap_capacity(99)


class TestRolloutCli:
    def test_rollout_then_replay_round_trip(self, tmp_path, capsys):
        stream = tmp_path / "stream.jsonl"
        exit_code = main(
            [
                "rollout",
                "--tiny",
                "--duration-scale", "0.02",
                "--seed", "42",
                "--stream-metrics", str(stream),
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "staged <= single-canary <= blind" in out
        assert "final counters match the post-hoc ledger" in out

        assert main(["replay", str(stream)]) == 0
        out = capsys.readouterr().out
        assert "byte-identical" in out

        assert main(["replay", str(stream), "--growth-ratio-threshold", "1e9"]) == 0
        out = capsys.readouterr().out
        assert "1 verdict(s) flipped" in out

    def test_replay_rejects_a_missing_stream(self, tmp_path, capsys):
        assert main(["replay", str(tmp_path / "missing.jsonl")]) == 2
        assert "error" in capsys.readouterr().err
