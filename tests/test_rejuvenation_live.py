"""Tests for the live rejuvenation subsystem (mid-run restarts & micro-reboots).

Covers the ISSUE 2 acceptance semantics:

* requests hitting an outage window are refused (and counted), never
  silently dropped, and the browsers park and resume afterwards;
* a same-seed run with a no-op rejuvenation controller is value-identical
  to a run without any controller;
* a micro-reboot reclaims only the guilty component's heap bytes;
* the three-policy scenario reports micro-reboot downtime well below
  full-restart downtime with comparable heap exposure, deterministically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.rejuvenation import (
    FULL_RESTART,
    MICRO_REBOOT,
    NoActionPolicy,
    RejuvenationAction,
)
from repro.core.framework import FrameworkConfig, MonitoringFramework
from repro.core.rejuvenation import RejuvenationController
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.experiments.reporting import rejuvenation_report
from repro.experiments.scenarios import COMPONENT_A, fig_rejuvenation
from repro.sim.engine import SimulationEngine
from repro.tpcw.application import build_deployment
from repro.tpcw.population import PopulationScale
from repro.tpcw.workload import WorkloadGenerator, WorkloadPhase

TINY = PopulationScale.tiny()


def _build_stack(seed: int = 7, monitored: bool = True):
    """Engine + tiny deployment (+ framework) wired for direct driving."""
    engine = SimulationEngine()
    deployment = build_deployment(scale=TINY, seed=seed, clock=engine.clock)
    framework = None
    if monitored:
        framework = MonitoringFramework(
            deployment, engine=engine, config=FrameworkConfig(snapshot_interval=10.0)
        )
        framework.install()
    return engine, deployment, framework


class TestOutageSemantics:
    def test_requests_during_outage_are_refused_not_dropped(self):
        engine, deployment, _ = _build_stack(monitored=False)
        server = deployment.server
        server.begin_outage(30.0, 45.0)
        generator = WorkloadGenerator(engine, deployment)
        outcomes = []
        generator.on_request = lambda interaction, outcome: outcomes.append(outcome)
        generator.schedule_phases([WorkloadPhase(0.0, 10)])
        generator.run(120.0)

        refused = [o for o in outcomes if o.refused_by_outage]
        assert refused, "no request hit the outage window"
        assert server.refused_during_outage == len(refused)
        for outcome in refused:
            assert 30.0 <= outcome.arrival_time < 45.0
            assert outcome.rejected
            assert outcome.retry_after == pytest.approx(45.0)
        # Every issued request was recorded: nothing silently dropped — but
        # refusals are paid downtime, not completions or errors, so they
        # must not inflate throughput or the error column.
        assert generator.refused_requests == len(refused)
        assert generator.completed_requests == len(outcomes) - len(refused)
        assert generator.error_count == 0

    def test_browsers_park_and_resume_after_outage(self):
        engine, deployment, _ = _build_stack(monitored=False)
        deployment.server.begin_outage(30.0, 45.0)
        generator = WorkloadGenerator(engine, deployment)
        completions_after = []
        generator.on_request = lambda interaction, outcome: (
            completions_after.append(outcome)
            if outcome.arrival_time >= 45.0 and not outcome.rejected
            else None
        )
        generator.schedule_phases([WorkloadPhase(0.0, 10)])
        generator.run(120.0)
        # The population survived the outage and kept serving afterwards.
        assert len(completions_after) > 50
        # No browser died: all 10 are either active or parked for a next segment.
        alive = sum(
            1 for b in generator._browsers if b.active or b.parked_time is not None
        )
        assert alive == 10

    def test_component_outage_only_refuses_that_component(self):
        engine, deployment, _ = _build_stack(monitored=False)
        server = deployment.server
        server.begin_outage(0.0, 100.0, component="home")
        from repro.container.servlet import HttpServletRequest

        refused = server.handle(HttpServletRequest(uri=deployment.url_for("home")), 10.0)
        served = server.handle(
            HttpServletRequest(uri=deployment.url_for("product_detail")), 10.0
        )
        assert refused.refused_by_outage and refused.rejected
        assert not served.rejected and served.response.status == 200

    def test_outage_windows_expire(self):
        engine, deployment, _ = _build_stack(monitored=False)
        server = deployment.server
        server.begin_outage(0.0, 10.0)
        assert server.outage_for(5.0) is not None
        assert server.outage_for(10.0) is None
        from repro.container.servlet import HttpServletRequest

        outcome = server.handle(HttpServletRequest(uri=deployment.url_for("home")), 11.0)
        assert not outcome.rejected

    def test_outage_validation(self):
        engine, deployment, _ = _build_stack(monitored=False)
        with pytest.raises(ValueError):
            deployment.server.begin_outage(10.0, 10.0)


class TestRejuvenationActions:
    def _leak(self, deployment, component: str, bytes_per_object: int, count: int):
        servlet = deployment.servlet(component)
        for _ in range(count):
            leaked = deployment.runtime.allocate(
                "LeakedBuffer", bytes_per_object, owner=component
            )
            servlet.retain_in_component_state(leaked)

    def test_micro_reboot_reclaims_only_the_guilty_component(self):
        engine, deployment, framework = _build_stack()
        controller = RejuvenationController(
            deployment, framework.manager, engine, NoActionPolicy()
        )
        self._leak(deployment, "home", 10_000, 20)
        self._leak(deployment, "product_detail", 10_000, 30)
        owned_before = deployment.runtime.heap.used_by_owner()

        event = controller.execute(
            RejuvenationAction(kind=MICRO_REBOOT, downtime_seconds=1.0, component="home"),
            at_time=0.0,
        )
        owned_after = deployment.runtime.heap.used_by_owner()
        assert event.reclaimed_bytes == 200_000
        assert owned_after["home"] == owned_before["home"] - 200_000
        # The guilty component keeps its instance root (it is a GC root).
        assert owned_after["home"] == deployment.servlet("home").instance_state_bytes
        # Every other owner is untouched.
        assert owned_after["product_detail"] == owned_before["product_detail"]
        assert controller.total_downtime_seconds == 1.0

    def test_full_restart_drops_all_component_state_and_sessions(self):
        engine, deployment, framework = _build_stack()
        controller = RejuvenationController(
            deployment, framework.manager, engine, NoActionPolicy()
        )
        self._leak(deployment, "home", 10_000, 20)
        self._leak(deployment, "product_detail", 10_000, 30)
        deployment.server.sessions.new_session(0.0)
        deployment.server.sessions.new_session(0.0)
        assert deployment.server.sessions.active_count == 2

        event = controller.execute(
            RejuvenationAction(kind=FULL_RESTART, downtime_seconds=30.0), at_time=5.0
        )
        owned = deployment.runtime.heap.used_by_owner()
        assert owned["home"] == deployment.servlet("home").instance_state_bytes
        assert owned["product_detail"] == deployment.servlet(
            "product_detail"
        ).instance_state_bytes
        assert deployment.server.sessions.active_count == 0
        assert event.reclaimed_bytes >= 500_000
        # The outage window is installed for the configured downtime.
        assert deployment.server.outage_for(20.0) is not None
        assert deployment.server.outage_for(40.0) is None

    def test_micro_reboot_requires_a_component(self):
        engine, deployment, framework = _build_stack()
        controller = RejuvenationController(
            deployment, framework.manager, engine, NoActionPolicy()
        )
        with pytest.raises(ValueError):
            controller.execute(
                RejuvenationAction(kind=MICRO_REBOOT, downtime_seconds=1.0), at_time=0.0
            )


class TestNoopControllerIdentity:
    def test_noop_policy_run_is_value_identical_to_no_controller(self):
        def run(policy):
            return run_experiment(
                ExperimentConfig(
                    name="identity",
                    seed=11,
                    scale=TINY,
                    constant_ebs=25,
                    duration=90.0,
                    snapshot_interval=10.0,
                    rejuvenation=policy,
                )
            )

        without = run(None)
        with_noop = run(NoActionPolicy())

        assert with_noop.completed_requests == without.completed_requests
        assert with_noop.error_count == without.error_count
        assert with_noop.rejected_requests == without.rejected_requests
        assert with_noop.interaction_counts == without.interaction_counts
        assert with_noop.mean_response_time == without.mean_response_time
        assert np.array_equal(with_noop.heap_series.values, without.heap_series.values)
        assert np.array_equal(with_noop.throughput.values, without.throughput.values)
        for component, series in without.component_series.items():
            assert np.array_equal(
                with_noop.component_series[component].values, series.values
            )
        assert with_noop.rejuvenation is not None
        assert with_noop.rejuvenation.actions == 0
        assert with_noop.rejuvenation.total_downtime_seconds == 0.0
        assert without.rejuvenation is None

    def test_rejuvenation_requires_monitoring(self):
        with pytest.raises(ValueError, match="monitored"):
            run_experiment(
                ExperimentConfig(
                    name="bad",
                    scale=TINY,
                    monitored=False,
                    duration=10.0,
                    rejuvenation=NoActionPolicy(),
                )
            )


class TestRejuvenationScenario:
    @pytest.fixture(scope="class")
    def scenario(self):
        return fig_rejuvenation(duration_scale=0.02, seed=42, scale=TINY)

    def test_microreboot_downtime_beats_full_restart(self, scenario):
        micro = scenario.downtime_seconds("proactive-microreboot")
        full = scenario.downtime_seconds("time-based")
        assert scenario.results["time-based"].rejuvenation.actions >= 1
        assert scenario.results["proactive-microreboot"].rejuvenation.actions >= 1
        assert micro < full

    def test_rejuvenation_removes_heap_exposure(self, scenario):
        assert scenario.exposure("no-action") > 0.0
        assert scenario.exposure("time-based") <= scenario.exposure("no-action")
        assert scenario.exposure("proactive-microreboot") <= scenario.exposure("no-action")
        # Micro-reboots protect the heap as well as full restarts do.
        assert scenario.exposure("proactive-microreboot") == pytest.approx(
            scenario.exposure("time-based"), abs=scenario.duration * 0.1
        )

    def test_microreboots_target_the_leaking_component(self, scenario):
        events = scenario.results["proactive-microreboot"].rejuvenation.events
        assert events
        assert all(event.kind == MICRO_REBOOT for event in events)
        assert all(event.component == COMPONENT_A for event in events)
        assert all(event.reclaimed_bytes > 0 for event in events)

    def test_full_restarts_reclaim_whole_server_state(self, scenario):
        events = scenario.results["time-based"].rejuvenation.events
        assert events
        assert all(event.kind == FULL_RESTART for event in events)
        assert all(event.component is None for event in events)

    def test_scenario_is_deterministic(self, scenario):
        again = fig_rejuvenation(duration_scale=0.02, seed=42, scale=TINY)
        assert again.summary_rows() == scenario.summary_rows()

    def test_report_renders(self, scenario):
        text = rejuvenation_report(scenario)
        assert "per-policy availability" in text
        assert "no-action" in text
        assert "proactive-microreboot" in text
        assert "executed actions" in text
