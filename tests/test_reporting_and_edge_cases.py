"""Edge-case tests: SQL corner cases, reporting helpers, front-end formatting,
workload population shrinking and framework error paths."""

from __future__ import annotations

import pytest

from repro.core.frontend import _format_bytes, _format_table
from repro.db.engine import Database, SqlExecutionError
from repro.db.table import Column, ColumnType
from repro.experiments.reporting import downsample_series, format_table, kb
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import TimeSeries
from repro.tpcw.application import build_deployment
from repro.tpcw.population import PopulationScale
from repro.tpcw.workload import WorkloadGenerator, WorkloadPhase


class TestSqlEdgeCases:
    @pytest.fixture
    def database(self):
        database = Database("edge")
        database.create_table(
            "a",
            [Column("id", ColumnType.INTEGER, primary_key=True), Column("b_id", ColumnType.INTEGER),
             Column("v", ColumnType.INTEGER)],
        )
        database.create_table(
            "b",
            [Column("id", ColumnType.INTEGER, primary_key=True), Column("name", ColumnType.VARCHAR)],
        )
        for index in range(4):
            database.table("b").insert({"id": index, "name": f"b{index}"})
            database.table("a").insert({"id": index, "b_id": index % 2, "v": index * 10})
        return database

    def test_join_without_alias(self, database):
        rows = database.execute(
            "SELECT a.v, b.name FROM a JOIN b ON a.b_id = b.id WHERE b.name = 'b0'"
        ).rows
        assert {row["v"] for row in rows} == {0, 20}

    def test_join_to_missing_value_produces_no_rows(self, database):
        database.table("a").insert({"id": 99, "b_id": 1234, "v": 1})
        rows = database.execute("SELECT a.id FROM a JOIN b ON a.b_id = b.id WHERE a.id = 99").rows
        assert rows == []

    def test_group_by_requires_plain_columns_in_group(self, database):
        with pytest.raises(SqlExecutionError):
            database.execute("SELECT v, COUNT(*) AS n FROM a GROUP BY b_id")

    def test_select_star_with_aggregate_rejected(self, database):
        with pytest.raises(SqlExecutionError):
            database.execute("SELECT * FROM a GROUP BY b_id")

    def test_null_comparisons(self, database):
        database.table("a").insert({"id": 50, "b_id": None, "v": None})
        equal_null = database.execute("SELECT id FROM a WHERE b_id = NULL").rows
        assert {row["id"] for row in equal_null} == {50}
        greater = database.execute("SELECT id FROM a WHERE v > 5").rows
        assert 50 not in {row["id"] for row in greater}

    def test_update_with_index_condition(self, database):
        database.table("a").create_index("b_id")
        updated = database.execute("UPDATE a SET v = 0 WHERE b_id = ?", [1]).rowcount
        assert updated == 2
        assert all(
            row["v"] == 0
            for row in database.execute("SELECT v FROM a WHERE b_id = 1").rows
        )

    def test_order_by_ascending_with_nulls_last(self, database):
        database.table("a").insert({"id": 60, "b_id": 0, "v": None})
        rows = database.execute("SELECT id, v FROM a ORDER BY v ASC").rows
        assert rows[-1]["id"] == 60


class TestReportingHelpers:
    def test_format_bytes_ranges(self):
        assert _format_bytes(512) == "512 B"
        assert _format_bytes(2048) == "2.0 KB"
        assert _format_bytes(3 * 1024 * 1024) == "3.00 MB"

    def test_format_table_alignment(self):
        table = _format_table(
            [{"component": "home", "monitoring": "on"}], ["component", "monitoring"]
        )
        lines = table.splitlines()
        assert lines[0].startswith("component")
        assert len(lines) == 3
        assert _format_table([], ["a"]) == "(no data)"

    def test_experiment_format_table_missing_keys(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "b" in text.splitlines()[0]

    def test_downsample_handles_empty_series(self):
        assert downsample_series(TimeSeries()) == []

    def test_kb_conversion(self):
        assert kb(2048) == 2.0


class TestWorkloadPopulationControl:
    def test_shrinking_eb_population_stops_browsers(self):
        engine = SimulationEngine()
        deployment = build_deployment(scale=PopulationScale.tiny(), seed=21, clock=engine.clock)
        generator = WorkloadGenerator(engine, deployment, think_time_mean=3.0)
        generator.set_active_browsers(20)
        engine.run_until(30.0)
        assert generator.active_browsers == 20
        generator.set_active_browsers(5)
        assert generator.active_browsers == 5
        before = generator.completed_requests
        generator.run(60.0)
        assert generator.completed_requests > before

    def test_zero_browsers_is_valid(self):
        engine = SimulationEngine()
        deployment = build_deployment(scale=PopulationScale.tiny(), seed=21, clock=engine.clock)
        generator = WorkloadGenerator(engine, deployment)
        generator.set_active_browsers(0)
        generator.run(30.0)
        assert generator.completed_requests == 0

    def test_invalid_workload_parameters(self):
        engine = SimulationEngine()
        deployment = build_deployment(scale=PopulationScale.tiny(), seed=21, clock=engine.clock)
        with pytest.raises(ValueError):
            WorkloadGenerator(engine, deployment, think_time_mean=0.0)
        generator = WorkloadGenerator(engine, deployment)
        with pytest.raises(ValueError):
            generator.set_active_browsers(-1)
        with pytest.raises(ValueError):
            generator.run(0.0)
        with pytest.raises(ValueError):
            generator.schedule_phases([])
        with pytest.raises(ValueError):
            WorkloadPhase(-1.0, 5)
        with pytest.raises(ValueError):
            WorkloadPhase(0.0, -5)


class TestFrameworkErrorPaths:
    def test_schedule_snapshots_parameter_validation(self, monitored_deployment):
        _, framework = monitored_deployment
        with pytest.raises(ValueError):
            framework.schedule_snapshots(duration=0.0)
        with pytest.raises(ValueError):
            framework.schedule_snapshots(duration=100.0, interval=0.0)
        assert framework.schedule_snapshots(duration=120.0, interval=60.0) == 2

    def test_component_series_for_unknown_component_is_empty(self, monitored_deployment):
        _, framework = monitored_deployment
        series = framework.component_series("does_not_exist")
        assert len(series) == 0

    def test_overhead_sample_cost_propagates_from_config(self, engine, tiny_deployment):
        from repro.core.framework import FrameworkConfig, MonitoringFramework

        framework = MonitoringFramework(
            tiny_deployment, engine=engine, config=FrameworkConfig(sample_cost_seconds=0.25)
        )
        framework.install()
        assert framework.overhead.sample_cost_seconds == 0.25
        framework.uninstall()
