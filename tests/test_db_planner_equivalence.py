"""Planner equivalence suite: planned executor vs. the preserved seed executor.

The compiled planner (:mod:`repro.db.planner`) promises bit-identical
results to the interpreting executor it replaced: same rows, same row
*order*, same ``rows_scanned``/``index_lookups`` accounting and therefore
the same simulated cost — that is what keeps every seeded experiment
trajectory unchanged.  This suite drives both executors over the same table
storage and asserts exactly that, for

* every SELECT shape the TPC-W servlets issue (with representative
  parameters sampled from the population), and
* a randomized corpus of generated statements — single-table, single-join
  and double-join along the schema's foreign keys, with mixed WHERE
  operators, ORDER BY ASC/DESC (including multi-key) and LIMIT.

The reference implementation is ``perf/seed_reference``'s
``SeedRowHandlingDatabase`` (wrapper-dict rows, per-row column resolution),
which shares the planned database's tables so both sides see identical data.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.db.engine import Database
from repro.db.sql import parse_sql
from repro.perf.seed_reference import make_seed_row_database_class
from repro.sim.random import RandomStreams
from repro.tpcw.population import PopulationScale, populate_database
from repro.tpcw.schema import SUBJECTS, create_tpcw_schema


@pytest.fixture(scope="module")
def databases():
    """(planned, seed-reference) databases sharing one populated table set."""
    planned = Database("tpcw")
    create_tpcw_schema(planned)
    populate_database(planned, scale=PopulationScale.tiny(), streams=RandomStreams(42))
    seed = make_seed_row_database_class()("tpcw")
    # SELECT-only suite: sharing the Table objects guarantees identical data
    # (and identical internal row ids / index sets) on both sides.
    seed._tables = planned._tables
    return planned, seed


def assert_equivalent(databases, sql, params=()):
    planned_db, seed_db = databases
    planned = planned_db.execute(sql, list(params))
    reference = seed_db.execute(sql, list(params))
    assert planned.rows == reference.rows, sql
    assert planned.rowcount == reference.rowcount, sql
    assert planned.rows_scanned == reference.rows_scanned, sql
    assert planned.cost_seconds == reference.cost_seconds, sql
    # Second execution exercises the plan-cache hit path.
    again = planned_db.execute(sql, list(params))
    assert again.rows == reference.rows, sql


# --------------------------------------------------------------------------- #
# Servlet repertoire
# --------------------------------------------------------------------------- #
SERVLET_QUERIES = [
    # home
    ("SELECT c_fname, c_lname, c_discount FROM customer WHERE c_id = ?", [3]),
    (
        "SELECT i_related1, i_related2, i_related3, i_related4, i_related5 "
        "FROM item WHERE i_id = ?",
        [5],
    ),
    ("SELECT i_id, i_title, i_thumbnail, i_cost FROM item WHERE i_id = ?", [7]),
    ("SELECT COUNT(*) AS n FROM item", []),
    # product_detail / admin_request
    (
        "SELECT i_id, i_title, i_a_id, i_srp, i_cost, i_stock, i_desc, i_backing, "
        "i_pub_date, i_subject FROM item WHERE i_id = ?",
        [11],
    ),
    ("SELECT a_fname, a_lname, a_bio FROM author WHERE a_id = ?", [2]),
    ("SELECT i_id, i_title, i_cost, i_image, i_thumbnail FROM item WHERE i_id = ?", [4]),
    # search_results (three search modes)
    (
        "SELECT i_id, i_title, i_srp FROM item WHERE i_subject = ? "
        "ORDER BY i_title LIMIT 50",
        [SUBJECTS[0]],
    ),
    (
        "SELECT i.i_id, i.i_title, i.i_srp FROM item i "
        "JOIN author a ON i.i_a_id = a.a_id WHERE a_lname = ? "
        "ORDER BY i_title LIMIT 50",
        ["SMITH"],
    ),
    (
        "SELECT i_id, i_title, i_srp FROM item WHERE i_title LIKE ? "
        "ORDER BY i_title LIMIT 50",
        ["%the%"],
    ),
    # new_products: the planner's top-k join shape
    (
        "SELECT i.i_id, i.i_title, i.i_pub_date, i.i_srp, a.a_fname, a.a_lname "
        "FROM item i JOIN author a ON i.i_a_id = a.a_id "
        "WHERE i_subject = ? ORDER BY i_pub_date DESC LIMIT 50",
        [SUBJECTS[1]],
    ),
    # best_sellers: double join + GROUP BY + aggregate ORDER BY
    (
        "SELECT i.i_id, i.i_title, a.a_fname, a.a_lname, SUM(ol.ol_qty) AS sold "
        "FROM order_line ol "
        "JOIN item i ON ol.ol_i_id = i.i_id "
        "JOIN author a ON i.i_a_id = a.a_id "
        "WHERE i_subject = ? "
        "GROUP BY i.i_id, i.i_title, a.a_fname, a.a_lname "
        "ORDER BY sold DESC LIMIT 50",
        [SUBJECTS[2]],
    ),
    # order_display / order_inquiry
    ("SELECT c_id FROM customer WHERE c_uname = ?", ["user1"]),
    (
        "SELECT o_id, o_date, o_total, o_status, o_ship_type FROM orders "
        "WHERE o_c_id = ? ORDER BY o_date DESC LIMIT 1",
        [2],
    ),
    (
        "SELECT ol.ol_i_id, ol.ol_qty, i.i_title FROM order_line ol "
        "JOIN item i ON ol.ol_i_id = i.i_id WHERE ol_o_id = ?",
        [3],
    ),
    # buy_request / buy_confirm / registration
    (
        "SELECT c_id, c_fname, c_lname, c_addr_id, c_discount "
        "FROM customer WHERE c_uname = ?",
        ["user2"],
    ),
    (
        "SELECT addr_street1, addr_city, addr_state, addr_zip "
        "FROM address WHERE addr_id = ?",
        [1],
    ),
    (
        "SELECT scl.scl_i_id, scl.scl_qty, i.i_cost FROM shopping_cart_line scl "
        "JOIN item i ON scl.scl_i_id = i.i_id WHERE scl_sc_id = ?",
        [1],
    ),
    ("SELECT i_stock FROM item WHERE i_id = ?", [9]),
    ("SELECT MAX(o_id) AS max_id FROM orders", []),
    ("SELECT MAX(sc_id) AS max_id FROM shopping_cart", []),
    # admin_confirm
    (
        "SELECT ol_i_id, SUM(ol_qty) AS sold FROM order_line "
        "GROUP BY ol_i_id ORDER BY sold DESC LIMIT 5",
        [],
    ),
    # search_request banner
    ("SELECT i_id, i_title, i_thumbnail FROM item WHERE i_id = ?", [13]),
]


@pytest.mark.parametrize("sql,params", SERVLET_QUERIES)
def test_servlet_query_shapes_equivalent(databases, sql, params):
    assert_equivalent(databases, sql, params)


# --------------------------------------------------------------------------- #
# Randomized corpus
# --------------------------------------------------------------------------- #
#: Foreign-key edges of the TPC-W schema: (child, fk column, parent, pk).
FK_EDGES = [
    ("item", "i_a_id", "author", "a_id"),
    ("order_line", "ol_i_id", "item", "i_id"),
    ("order_line", "ol_o_id", "orders", "o_id"),
    ("orders", "o_c_id", "customer", "c_id"),
    ("customer", "c_addr_id", "address", "addr_id"),
    ("address", "addr_co_id", "country", "co_id"),
    ("shopping_cart_line", "scl_i_id", "item", "i_id"),
]

#: Columns worth filtering/ordering on per table (mixed types, some indexed,
#: some not — unindexed equality exercises the lazy hash-index path).
INTERESTING_COLUMNS = {
    "item": ["i_subject", "i_a_id", "i_cost", "i_srp", "i_stock", "i_title", "i_pub_date"],
    "author": ["a_lname", "a_fname"],
    "customer": ["c_uname", "c_discount", "c_addr_id", "c_lname"],
    "orders": ["o_c_id", "o_status", "o_total", "o_ship_type"],
    "order_line": ["ol_o_id", "ol_i_id", "ol_qty", "ol_discount"],
    "address": ["addr_state", "addr_co_id", "addr_city"],
    "country": ["co_name", "co_currency"],
    "shopping_cart_line": ["scl_sc_id", "scl_i_id", "scl_qty"],
}


def _sample_value(rng, table, column):
    """A probe value for ``column``: usually present in the data, sometimes not."""
    from repro.db.table import ColumnType

    rows = list(table.rows())
    if rows and rng.random() < 0.85:
        row = rows[int(rng.integers(0, len(rows)))]
        return row[column]
    # Miss probes: type-correct values unlikely to be present.
    if table.column(column).type is ColumnType.VARCHAR:
        return "ZZ-NO-SUCH"
    return int(rng.integers(10_000, 20_000))


def _render_value(value):
    if value is None:
        return "NULL"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return repr(value)


def _random_statement(rng, database):
    """One generated SELECT: 0-2 joins, random filters, ORDER BY, LIMIT."""
    joins = int(rng.integers(0, 3))
    if joins == 0:
        base = list(INTERESTING_COLUMNS)[int(rng.integers(0, len(INTERESTING_COLUMNS)))]
        chain = []
    elif joins == 1:
        child, fk, parent, pk = FK_EDGES[int(rng.integers(0, len(FK_EDGES)))]
        base, chain = child, [(parent, pk, fk)]
    else:
        # order_line -> item -> author is the only natural two-hop chain.
        base = "order_line"
        chain = [("item", "i_id", "ol_i_id"), ("author", "a_id", "i_a_id")]

    alias = {0: base[0], 1: chain[0][0][0] if chain else "", 2: "x"}
    base_alias = "t0"
    names = [base] + [parent for parent, _, _ in chain]
    aliases = [f"t{i}" for i in range(len(names))]

    select_cols = []
    for idx, name in enumerate(names):
        cols = INTERESTING_COLUMNS.get(name) or database.table(name).column_names()
        picked = cols[int(rng.integers(0, len(cols)))]
        select_cols.append(f"{aliases[idx]}.{picked}")
    pk0 = database.table(base).primary_key
    select_cols.append(f"{aliases[0]}.{pk0}")

    sql = f"SELECT {', '.join(dict.fromkeys(select_cols))} FROM {base} {aliases[0]}"
    prev_alias = aliases[0]
    prev_table = base
    for idx, (parent, pk, fk) in enumerate(chain, start=1):
        sql += f" JOIN {parent} {aliases[idx]} ON {prev_alias}.{fk} = {aliases[idx]}.{pk}"
        prev_alias, prev_table = aliases[idx], parent

    params = []
    where_terms = []
    n_conditions = int(rng.integers(0, 3))
    for _ in range(n_conditions):
        target = int(rng.integers(0, len(names)))
        table_name = names[target]
        cols = INTERESTING_COLUMNS.get(table_name) or database.table(table_name).column_names()
        column = cols[int(rng.integers(0, len(cols)))]
        value = _sample_value(rng, database.table(table_name), column)
        op = ["=", "=", "<", ">", "<=", ">="][int(rng.integers(0, 6))]
        if isinstance(value, str) and rng.random() < 0.3:
            op = "LIKE"
            value = f"%{value[:2]}%" if value else "%"
        if op in ("<", ">", "<=", ">=") and not isinstance(value, (int, float)):
            op = "="
        if rng.random() < 0.5:
            where_terms.append(f"{aliases[target]}.{column} {op} ?")
            params.append(value)
        else:
            where_terms.append(f"{aliases[target]}.{column} {op} {_render_value(value)}")
    if where_terms:
        sql += " WHERE " + " AND ".join(where_terms)

    if rng.random() < 0.7:
        n_keys = 1 + int(rng.integers(0, 2))
        keys = []
        for _ in range(n_keys):
            target = int(rng.integers(0, len(names)))
            cols = INTERESTING_COLUMNS.get(names[target]) or database.table(
                names[target]
            ).column_names()
            column = cols[int(rng.integers(0, len(cols)))]
            direction = " DESC" if rng.random() < 0.5 else ""
            keys.append(f"{aliases[target]}.{column}{direction}")
        sql += " ORDER BY " + ", ".join(dict.fromkeys(keys))
    if rng.random() < 0.6:
        sql += f" LIMIT {int(rng.integers(0, 40))}"
    return sql, params


#: Numeric columns per table, for SUM/AVG (MIN/MAX/COUNT take any column).
AGG_NUMERIC_COLUMNS = {
    "item": ["i_cost", "i_srp", "i_stock"],
    "orders": ["o_total"],
    "order_line": ["ol_qty", "ol_discount"],
    "customer": ["c_discount"],
    "shopping_cart_line": ["scl_qty"],
}


def _random_aggregate_statement(rng, database):
    """One generated aggregate SELECT: GROUP BY 0-2 keys, 1-3 aggregates."""
    joins = int(rng.integers(0, 3))
    if joins == 0:
        base = list(AGG_NUMERIC_COLUMNS)[int(rng.integers(0, len(AGG_NUMERIC_COLUMNS)))]
        chain = []
    elif joins == 1:
        child, fk, parent, pk = FK_EDGES[int(rng.integers(0, len(FK_EDGES)))]
        base, chain = child, [(parent, pk, fk)]
    else:
        base = "order_line"
        chain = [("item", "i_id", "ol_i_id"), ("author", "a_id", "i_a_id")]
    names = [base] + [parent for parent, _, _ in chain]
    aliases = [f"t{i}" for i in range(len(names))]

    def _pick_column(target):
        cols = INTERESTING_COLUMNS.get(names[target]) or database.table(
            names[target]
        ).column_names()
        return cols[int(rng.integers(0, len(cols)))]

    group_refs = []
    for _ in range(int(rng.integers(0, 3))):
        target = int(rng.integers(0, len(names)))
        group_refs.append(f"{aliases[target]}.{_pick_column(target)}")
    group_refs = list(dict.fromkeys(group_refs))

    select_items = list(group_refs)
    order_candidates = [ref.split(".")[1] for ref in group_refs]
    numeric_targets = [
        (idx, column)
        for idx, name in enumerate(names)
        for column in AGG_NUMERIC_COLUMNS.get(name, [])
    ]
    for agg_index in range(1 + int(rng.integers(0, 3))):
        alias_name = f"agg{agg_index}"
        choice = int(rng.integers(0, 6))
        if choice == 0 or (choice in (2, 3) and not numeric_targets):
            select_items.append(f"COUNT(*) AS {alias_name}")
        elif choice == 1:
            target = int(rng.integers(0, len(names)))
            select_items.append(
                f"COUNT({aliases[target]}.{_pick_column(target)}) AS {alias_name}"
            )
        elif choice in (2, 3):
            function = "SUM" if choice == 2 else "AVG"
            target, column = numeric_targets[int(rng.integers(0, len(numeric_targets)))]
            select_items.append(f"{function}({aliases[target]}.{column}) AS {alias_name}")
        else:
            function = "MIN" if choice == 4 else "MAX"
            target = int(rng.integers(0, len(names)))
            select_items.append(
                f"{function}({aliases[target]}.{_pick_column(target)}) AS {alias_name}"
            )
        order_candidates.append(alias_name)

    sql = "SELECT " + ", ".join(select_items) + f" FROM {base} {aliases[0]}"
    prev_alias = aliases[0]
    for idx, (parent, pk, fk) in enumerate(chain, start=1):
        sql += f" JOIN {parent} {aliases[idx]} ON {prev_alias}.{fk} = {aliases[idx]}.{pk}"
        prev_alias = aliases[idx]

    params = []
    where_terms = []
    for _ in range(int(rng.integers(0, 3))):
        target = int(rng.integers(0, len(names)))
        column = _pick_column(target)
        value = _sample_value(rng, database.table(names[target]), column)
        op = ["=", "=", "<", ">", "<=", ">="][int(rng.integers(0, 6))]
        if op in ("<", ">", "<=", ">=") and not isinstance(value, (int, float)):
            op = "="
        if rng.random() < 0.5:
            where_terms.append(f"{aliases[target]}.{column} {op} ?")
            params.append(value)
        else:
            where_terms.append(f"{aliases[target]}.{column} {op} {_render_value(value)}")
    if where_terms:
        sql += " WHERE " + " AND ".join(where_terms)
    if group_refs:
        sql += " GROUP BY " + ", ".join(group_refs)
    if order_candidates and rng.random() < 0.8:
        key = order_candidates[int(rng.integers(0, len(order_candidates)))]
        direction = " DESC" if rng.random() < 0.5 else ""
        sql += f" ORDER BY {key}{direction}"
        if rng.random() < 0.6:
            sql += f" LIMIT {int(rng.integers(1, 30))}"
    return sql, params


@pytest.mark.parametrize("corpus_seed", [42, 7, 2026])
def test_randomized_statement_corpus_equivalent(databases, corpus_seed):
    planned_db, _ = databases
    rng = np.random.default_rng(corpus_seed)
    for _ in range(120):
        sql, params = _random_statement(rng, planned_db)
        assert_equivalent(databases, sql, params)


def test_corpus_exercises_topk_and_lazy_paths(databases):
    """Sanity: the generated corpus actually hits the specialised operators."""
    planned_db, _ = databases
    rng = np.random.default_rng(42)
    topk = lazy = 0
    for _ in range(120):
        sql, params = _random_statement(rng, planned_db)
        planned_db.execute(sql, params)
        entry = planned_db._plan_cache.get(id(parse_sql(sql)))
        if entry is None:
            continue
        plan = entry[1]
        topk += bool(plan.topk_eligible)
        lazy += bool(plan.lazy_base_lookups) or any(
            step.lazy_index is not None for step in plan.join_steps
        )
    assert topk > 5
    assert lazy > 5


@pytest.mark.parametrize("corpus_seed", [13, 99, 1234])
def test_randomized_aggregate_corpus_equivalent(databases, corpus_seed):
    planned_db, _ = databases
    rng = np.random.default_rng(corpus_seed)
    for _ in range(80):
        sql, params = _random_aggregate_statement(rng, planned_db)
        assert_equivalent(databases, sql, params)


def test_streaming_aggregates_match_materialized(databases):
    """A/B the streaming fold against the retained materialized path."""
    import repro.db.planner as planner_module

    planned_db, _ = databases
    rng = np.random.default_rng(11)
    statements = [_random_aggregate_statement(rng, planned_db) for _ in range(60)]
    statements.extend(
        (sql, params) for sql, params in SERVLET_QUERIES if "GROUP BY" in sql or "(" in sql
    )
    original = planner_module.STREAMING_AGGREGATES
    try:
        planner_module.STREAMING_AGGREGATES = False
        expected = [planned_db.execute(sql, params).rows for sql, params in statements]
        planner_module.STREAMING_AGGREGATES = True
        actual = [planned_db.execute(sql, params).rows for sql, params in statements]
    finally:
        planner_module.STREAMING_AGGREGATES = original
    assert actual == expected


def test_aggregate_corpus_exercises_group_by(databases):
    """Sanity: the aggregate generator produces real GROUP BY + aggregate mix."""
    planned_db, _ = databases
    rng = np.random.default_rng(13)
    grouped = global_agg = 0
    for _ in range(80):
        sql, _params = _random_aggregate_statement(rng, planned_db)
        grouped += "GROUP BY" in sql
        global_agg += "GROUP BY" not in sql
    assert grouped > 10
    assert global_agg > 10
