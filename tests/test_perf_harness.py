"""Tests for the perf harness (``repro bench``) and the fast-path caches."""

from __future__ import annotations

import json

import pytest

from repro.perf.registry import (
    BenchOptions,
    BenchResult,
    all_bench_names,
    run_benches,
    write_json,
)
from repro.perf.timer import BenchTimer, measure_rate, measure_seconds


class TestTimer:
    def test_bench_timer_measures_elapsed(self):
        with BenchTimer() as timer:
            sum(range(1000))
        assert timer.seconds >= 0.0

    def test_measure_seconds_reports_best_and_mean(self):
        stats = measure_seconds(lambda: None, repeats=3)
        assert stats["best_seconds"] <= stats["mean_seconds"] + 1e-12
        assert len(stats["repeats"]) == 3

    def test_measure_rate_reports_ops_per_second(self):
        stats = measure_rate(lambda: 1000, repeats=2)
        assert stats["best_ops_per_second"] > 0

    def test_measure_rejects_bad_repeats(self):
        with pytest.raises(ValueError):
            measure_seconds(lambda: None, repeats=0)
        with pytest.raises(ValueError):
            measure_rate(lambda: 1, repeats=0)


class TestRegistry:
    def test_expected_benches_registered(self):
        names = all_bench_names()
        for expected in [
            "event_loop",
            "woven_dispatch",
            "snapshot_sizing",
            "fig3_e2e",
            "fig4_e2e",
            "request_path",
            "adaptive_e2e",
            "learning_e2e",
        ]:
            assert expected in names

    def test_unknown_bench_rejected(self):
        with pytest.raises(KeyError):
            run_benches(["no-such-bench"])

    def test_bench_result_pass_logic(self):
        met = BenchResult(name="x", speedup_vs_seed=3.5, target_speedup=3.0)
        missed = BenchResult(name="x", speedup_vs_seed=2.0, target_speedup=3.0)
        informational = BenchResult(name="x", speedup_vs_seed=2.0, target_speedup=None)
        incomparable = BenchResult(name="x", speedup_vs_seed=None, target_speedup=3.0)
        assert met.passed is True
        assert missed.passed is False
        assert informational.passed is None
        assert incomparable.passed is None

    def test_options_resolve_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SEED", "7")
        monkeypatch.setenv("REPRO_BENCH_DURATION_SCALE", "0.01")
        monkeypatch.setenv("REPRO_BENCH_TINY", "1")
        options = BenchOptions.from_environment()
        assert options.seed == 7
        assert options.duration_scale == 0.01
        assert options.tiny is True

    def test_json_artifact_schema(self, tmp_path):
        results = [
            BenchResult(
                name="demo",
                metrics={"ops": 1.0},
                speedup_vs_seed=4.0,
                target_speedup=3.0,
                config={"tiny": True},
            )
        ]
        path = tmp_path / "BENCH_perf.json"
        write_json(str(path), results, BenchOptions(tiny=True))
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro-bench/v1"
        assert payload["options"]["tiny"] is True
        assert payload["benches"][0]["name"] == "demo"
        assert payload["benches"][0]["passed"] is True
        assert payload["all_targets_met"] is True

    def test_json_artifact_merges_into_existing(self, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        first = [
            BenchResult(name="alpha", metrics={"ops": 1.0}, speedup_vs_seed=2.0),
            BenchResult(name="beta", metrics={"ops": 2.0}, speedup_vs_seed=3.0),
        ]
        write_json(str(path), first, BenchOptions(tiny=True))
        # A partial re-run updates only its own entry and keeps the rest.
        rerun = [BenchResult(name="beta", metrics={"ops": 9.0}, speedup_vs_seed=4.0)]
        write_json(str(path), rerun, BenchOptions(tiny=True))
        payload = json.loads(path.read_text())
        by_name = {bench["name"]: bench for bench in payload["benches"]}
        assert sorted(by_name) == ["alpha", "beta"]
        assert by_name["alpha"]["speedup_vs_seed"] == 2.0  # preserved
        assert by_name["beta"]["speedup_vs_seed"] == 4.0  # replaced
        assert by_name["beta"]["metrics"]["ops"] == 9.0
        # Order: existing entries stay in place, new names append.
        assert [bench["name"] for bench in payload["benches"]] == ["alpha", "beta"]
        extra = [BenchResult(name="gamma", metrics={}, speedup_vs_seed=1.0)]
        write_json(str(path), extra, BenchOptions(tiny=True))
        payload = json.loads(path.read_text())
        assert [bench["name"] for bench in payload["benches"]] == [
            "alpha",
            "beta",
            "gamma",
        ]

    def test_json_artifact_merge_respects_preserved_failures(self, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        failing = [
            BenchResult(name="alpha", speedup_vs_seed=1.0, target_speedup=3.0)
        ]
        write_json(str(path), failing, BenchOptions(tiny=True))
        assert json.loads(path.read_text())["all_targets_met"] is False
        # A later partial run of a different bench must not hide the failure.
        other = [BenchResult(name="beta", speedup_vs_seed=5.0, target_speedup=3.0)]
        write_json(str(path), other, BenchOptions(tiny=True))
        payload = json.loads(path.read_text())
        assert payload["all_targets_met"] is False

    def test_json_artifact_rekeys_by_name_and_options(self, tmp_path, capsys):
        path = tmp_path / "BENCH_perf.json"
        full = [BenchResult(name="alpha", speedup_vs_seed=2.0, target_speedup=None)]
        write_json(str(path), full, BenchOptions(tiny=False))
        # Re-running the same bench under *different* options must not
        # replace the full-scale record: both entries coexist, keyed by
        # (name, options), and the mixture is flagged on stderr.
        tiny = [BenchResult(name="alpha", speedup_vs_seed=1.5, target_speedup=None)]
        write_json(str(path), tiny, BenchOptions(tiny=True))
        err = capsys.readouterr().err
        assert "mixes configurations" in err and "alpha" in err
        payload = json.loads(path.read_text())
        entries = [b for b in payload["benches"] if b["name"] == "alpha"]
        assert len(entries) == 2
        by_tiny = {bench["options"]["tiny"]: bench for bench in entries}
        assert by_tiny[False]["speedup_vs_seed"] == 2.0
        assert by_tiny[True]["speedup_vs_seed"] == 1.5
        # Same (name, options) still replaces in place.
        write_json(
            str(path),
            [BenchResult(name="alpha", speedup_vs_seed=1.7, target_speedup=None)],
            BenchOptions(tiny=True),
        )
        payload = json.loads(path.read_text())
        entries = [b for b in payload["benches"] if b["name"] == "alpha"]
        assert len(entries) == 2
        by_tiny = {bench["options"]["tiny"]: bench for bench in entries}
        assert by_tiny[True]["speedup_vs_seed"] == 1.7

    def test_microbenches_run_tiny(self):
        # The micro (non-e2e) benches must run green at tiny scale; the
        # speedup assertions proper live in the acceptance run, not in CI
        # unit tests, but an outright regression below 1x would be a bug.
        results = run_benches(
            ["event_loop", "woven_dispatch", "snapshot_sizing"],
            BenchOptions(tiny=True),
        )
        by_name = {result.name: result for result in results}
        assert by_name["event_loop"].speedup_vs_seed > 1.0
        assert by_name["woven_dispatch"].speedup_vs_seed > 1.0
        assert by_name["snapshot_sizing"].speedup_vs_seed > 1.0


class TestCompareArtifacts:
    @staticmethod
    def _write(path, entries):
        payload = {"schema": "repro-bench/v1", "benches": entries}
        path.write_text(json.dumps(payload))

    @staticmethod
    def _entry(name, speedup, passed=None, tiny=True):
        return {
            "name": name,
            "speedup_vs_seed": speedup,
            "passed": passed,
            "options": {"seed": 42, "duration_scale": 0.05, "tiny": tiny},
        }

    def test_regression_detection_and_tolerance(self, tmp_path):
        from repro.perf.registry import compare_artifacts

        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        self._write(old, [self._entry("a", 3.0, passed=True), self._entry("b", 2.0)])
        self._write(new, [self._entry("a", 2.5, passed=True), self._entry("b", 1.85)])
        rows = {row.name: row for row in compare_artifacts(str(old), str(new))}
        assert rows["a"].regression  # -16.7 % > 10 % tolerance
        assert not rows["b"].regression  # -7.5 % within tolerance
        assert rows["b"].delta_percent == pytest.approx(-7.5)

    def test_drop_that_still_meets_target_is_not_a_regression(self, tmp_path):
        from repro.perf.registry import compare_artifacts

        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        # Recorded 6.0x against a 3.0x target: falling to 3.2x is a big drop
        # but still comfortably passing — the gate must not ratchet past the
        # bench's own target.
        entry = self._entry("a", 6.0, passed=True)
        entry["target_speedup"] = 3.0
        self._write(old, [entry])
        self._write(new, [self._entry("a", 3.2, passed=True)])
        (row,) = compare_artifacts(str(old), str(new))
        assert not row.regression
        # Below the target AND below tolerance -> regression.
        self._write(new, [self._entry("a", 2.5, passed=True)])
        (row,) = compare_artifacts(str(old), str(new))
        assert row.regression

    def test_previously_failing_bench_is_not_gated(self, tmp_path):
        from repro.perf.registry import compare_artifacts

        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        self._write(old, [self._entry("a", 2.0, passed=False)])
        self._write(new, [self._entry("a", 0.5, passed=False)])
        (row,) = compare_artifacts(str(old), str(new))
        assert not row.regression

    def test_option_mismatch_is_not_comparable(self, tmp_path):
        from repro.perf.registry import compare_artifacts

        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        self._write(old, [self._entry("a", 3.0, passed=True, tiny=False)])
        self._write(new, [self._entry("a", 1.0, passed=True, tiny=True)])
        (row,) = compare_artifacts(str(old), str(new))
        assert not row.regression
        assert "options differ" in row.note

    def test_empty_artifacts_rejected(self, tmp_path):
        from repro.perf.registry import compare_artifacts

        old = tmp_path / "old.json"
        old.write_text("{}")
        new = tmp_path / "new.json"
        self._write(new, [self._entry("a", 1.0)])
        with pytest.raises(ValueError):
            compare_artifacts(str(old), str(new))


class TestComponentSizeCache:
    def test_cache_hits_until_mutation(self):
        from repro.core.sizing import ComponentSizeCache, retained_component_size
        from repro.jvm.heap import Heap

        heap = Heap()
        root = heap.allocate("C", 100, root=True)
        children = [heap.allocate("child", 64) for _ in range(5)]
        for child in children:
            root.add_reference(child)
        cache = ComponentSizeCache(heap=heap)

        expected = retained_component_size([root], heap=heap)
        assert cache.component_size("c", [root]) == expected
        assert cache.component_size("c", [root]) == expected
        assert cache.stats == {"hits": 1, "misses": 1}

        # Reference mutation invalidates.
        root.add_reference(heap.allocate("leak", 1024))
        grown = cache.component_size("c", [root])
        assert grown == expected + 1024
        assert cache.stats["misses"] == 2

        # Freeing a referenced object invalidates via the liveness epoch.
        heap.free(children[0])
        shrunk = cache.component_size("c", [root])
        assert shrunk == grown - 64
        assert cache.stats["misses"] == 3

        # Unrelated allocations do NOT invalidate.
        heap.allocate("noise", 4096)
        cache.component_size("c", [root])
        assert cache.stats["misses"] == 3

    def test_explicit_invalidation(self):
        from repro.core.sizing import ComponentSizeCache
        from repro.jvm.heap import Heap

        heap = Heap()
        root = heap.allocate("C", 100, root=True)
        cache = ComponentSizeCache(heap=heap)
        cache.component_size("c", [root])
        cache.invalidate("c")
        cache.component_size("c", [root])
        assert cache.stats == {"hits": 0, "misses": 2}


class TestEngineFastPath:
    def test_schedule_callback_interleaves_with_events(self):
        from repro.sim.engine import SimulationEngine

        engine = SimulationEngine()
        order = []
        engine.schedule_at(2.0, lambda: order.append("event"))
        engine.schedule_callback(1.0, lambda: order.append("fast1"))
        engine.schedule_callback(3.0, lambda: order.append("fast2"))
        assert engine.pending_events == 3
        engine.run()
        assert order == ["fast1", "event", "fast2"]
        assert engine.executed_events == 3
        assert engine.pending_events == 0

    def test_schedule_callback_rejects_past(self):
        from repro.sim.engine import SimulationEngine

        engine = SimulationEngine()
        engine.clock.advance_to(10.0)
        with pytest.raises(ValueError):
            engine.schedule_callback(5.0, lambda: None)

    def test_pending_events_is_live_counter(self):
        from repro.sim.engine import SimulationEngine

        engine = SimulationEngine()
        events = [engine.schedule_at(float(i + 1), lambda: None) for i in range(5)]
        assert engine.pending_events == 5
        events[0].cancel()
        events[0].cancel()  # double cancel must not double-decrement
        assert engine.pending_events == 4
        engine.run()
        assert engine.pending_events == 0
        # Cancelling an already-executed event is a no-op.
        events[1].cancel()
        assert engine.pending_events == 0

    def test_run_until_honours_fast_events(self):
        from repro.sim.engine import SimulationEngine

        engine = SimulationEngine()
        fired = []
        engine.schedule_callback(1.0, lambda: fired.append(1))
        engine.schedule_callback(100.0, lambda: fired.append(2))
        executed = engine.run_until(50.0)
        assert executed == 1
        assert fired == [1]
        assert engine.pending_events == 1
        assert engine.now == 50.0
