"""Unit tests for the analytic M/M/c + leak-exhaustion model (ISSUE 5).

Erlang formulas against known closed-form values, metric identities,
fluid-limit leak arithmetic, the realized-exhaustion reader, the tolerance
band — and an empirical cross-test pinning the ``N/2 + 1`` mean injection
period against the actual :class:`RandomCountdownTrigger` draws.
"""

from __future__ import annotations

import math

import pytest

from repro.faults.base import RandomCountdownTrigger
from repro.sim.metrics import TimeSeries
from repro.sim.random import RandomStreams
from repro.slo.analytic import (
    TTE_TOLERANCE_FACTOR,
    LeakWorkloadModel,
    erlang_b,
    erlang_c,
    mmc_metrics,
    realized_exhaustion_time,
    within_tolerance,
)


def make_series(points) -> TimeSeries:
    series = TimeSeries("test")
    for t, v in points:
        series.record(float(t), float(v))
    return series


# --------------------------------------------------------------------------- #
# Erlang formulas
# --------------------------------------------------------------------------- #
class TestErlang:
    def test_erlang_b_single_server(self):
        # Known closed form: B(1, a) = a / (1 + a).
        assert erlang_b(1, 1.0) == pytest.approx(0.5)
        assert erlang_b(1, 3.0) == pytest.approx(0.75)

    def test_erlang_b_two_servers_known_value(self):
        # B(2, 1) = (1/2) / (1 + 1 + 1/2) = 0.2.
        assert erlang_b(2, 1.0) == pytest.approx(0.2)

    def test_erlang_c_single_server_equals_utilization(self):
        # M/M/1: P(wait) = ρ.
        for rho in (0.1, 0.5, 0.9):
            assert erlang_c(1, rho) == pytest.approx(rho)

    def test_erlang_c_two_servers_known_value(self):
        # M/M/2 at a = 1 (ρ = 0.5): the textbook 1/3.
        assert erlang_c(2, 1.0) == pytest.approx(1.0 / 3.0)

    def test_erlang_c_bounds_and_edges(self):
        assert erlang_c(4, 0.0) == 0.0
        assert erlang_c(4, 4.0) == 1.0  # unstable
        assert erlang_c(4, 17.0) == 1.0
        for load in (0.5, 1.5, 3.0, 3.9):
            assert 0.0 <= erlang_c(4, load) <= 1.0

    def test_erlang_c_monotone_in_offered_load(self):
        values = [erlang_c(8, load) for load in (0.5, 2.0, 4.0, 6.0, 7.5)]
        assert values == sorted(values)

    def test_erlang_c_decreases_with_more_servers(self):
        assert erlang_c(4, 2.0) > erlang_c(8, 2.0) > erlang_c(16, 2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            erlang_b(0, 1.0)
        with pytest.raises(ValueError):
            erlang_c(2, -0.1)


class TestMmcMetrics:
    def test_basic_identities(self):
        metrics = mmc_metrics(arrival_rate=8.0, service_rate=2.0, servers=10)
        assert metrics.offered_load == pytest.approx(4.0)
        assert metrics.utilization == pytest.approx(0.4)
        assert metrics.stable
        assert metrics.wait_probability == pytest.approx(erlang_c(10, 4.0))
        # Little's law consistency: Lq = P(wait) * ρ / (1 - ρ), Wq = Lq / λ.
        rho = metrics.utilization
        assert metrics.mean_queue_length == pytest.approx(
            metrics.wait_probability * rho / (1.0 - rho)
        )
        assert metrics.mean_wait_seconds == pytest.approx(
            metrics.mean_queue_length / 8.0
        )

    def test_unstable_system(self):
        metrics = mmc_metrics(arrival_rate=30.0, service_rate=2.0, servers=10)
        assert not metrics.stable
        assert metrics.wait_probability == 1.0
        assert math.isinf(metrics.mean_queue_length)
        assert math.isinf(metrics.mean_wait_seconds)

    def test_idle_system(self):
        metrics = mmc_metrics(arrival_rate=0.0, service_rate=2.0, servers=4)
        assert metrics.wait_probability == 0.0
        assert metrics.mean_wait_seconds == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            mmc_metrics(-1.0, 2.0, 4)
        with pytest.raises(ValueError):
            mmc_metrics(1.0, 0.0, 4)
        with pytest.raises(ValueError):
            mmc_metrics(1.0, 2.0, 0)


# --------------------------------------------------------------------------- #
# Leak workload model
# --------------------------------------------------------------------------- #
def thread_model(**overrides) -> LeakWorkloadModel:
    params = dict(
        resource="threads",
        capacity=190.0,
        baseline=150.0,
        units_per_injection=1.0,
        period_n=10,
        trigger_visits_per_second=3.4,
        failing_request_rate=0.5,
    )
    params.update(overrides)
    return LeakWorkloadModel(**params)


class TestLeakWorkloadModel:
    def test_mean_visits_per_injection_is_half_n_plus_one(self):
        assert thread_model(period_n=10).mean_visits_per_injection == 6.0
        assert thread_model(period_n=0).mean_visits_per_injection == 1.0

    def test_mean_period_matches_the_real_countdown_trigger(self):
        # Empirical pin: the fluid model's N/2 + 1 must match the actual
        # RandomCountdownTrigger (draw n ~ U[0, N], fire on the (n+1)-th
        # visit) to within a few percent over many seeded draws.
        streams = RandomStreams(7)
        trigger = RandomCountdownTrigger(10, streams, stream_name="pin")
        visits = 60_000
        fires = sum(1 for _ in range(visits) if trigger.should_fire())
        empirical_period = visits / fires
        assert empirical_period == pytest.approx(6.0, rel=0.03)

    def test_growth_and_time_to_exhaustion(self):
        model = thread_model()
        # 3.4 visits/s / 6 visits-per-injection = 0.5667 threads/s.
        assert model.growth_per_second == pytest.approx(3.4 / 6.0)
        assert model.time_to_exhaustion() == pytest.approx(40.0 / (3.4 / 6.0))

    def test_exhaustion_fraction_moves_the_threshold(self):
        full = thread_model(capacity=200.0, baseline=0.0)
        partial = thread_model(capacity=200.0, baseline=0.0, exhaustion_fraction=0.5)
        assert partial.time_to_exhaustion() == pytest.approx(
            full.time_to_exhaustion() / 2.0
        )

    def test_no_growth_means_no_exhaustion(self):
        assert thread_model(trigger_visits_per_second=0.0).time_to_exhaustion() is None

    def test_already_exhausted_is_zero(self):
        assert thread_model(baseline=500.0).time_to_exhaustion() == 0.0

    def test_predicted_failures_only_after_exhaustion(self):
        model = thread_model(failing_request_rate=2.0)
        tte = model.time_to_exhaustion()
        assert model.predicted_failed_requests(tte * 0.5) == 0.0
        assert model.predicted_failed_requests(tte + 30.0) == pytest.approx(60.0)
        assert model.predicted_unavailable_seconds(tte + 30.0, 1.5) == pytest.approx(90.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            thread_model(capacity=0.0)
        with pytest.raises(ValueError):
            thread_model(units_per_injection=0.0)
        with pytest.raises(ValueError):
            thread_model(exhaustion_fraction=1.5)
        with pytest.raises(ValueError):
            thread_model().predicted_failed_requests(0.0)


# --------------------------------------------------------------------------- #
# Realized side + tolerance band
# --------------------------------------------------------------------------- #
class TestRealizedAndTolerance:
    def test_first_crossing_is_reported(self):
        series = make_series([(0, 10), (10, 50), (20, 95), (30, 101), (40, 130)])
        assert realized_exhaustion_time(series, 100.0) == 30.0
        assert realized_exhaustion_time(series, 100.0, fraction=0.95) == 20.0
        assert realized_exhaustion_time(series, 100.0, fraction=0.5) == 10.0

    def test_never_crossing_is_none(self):
        series = make_series([(0, 10), (10, 20)])
        assert realized_exhaustion_time(series, 100.0) is None
        assert realized_exhaustion_time(TimeSeries("empty"), 100.0) is None

    def test_validation(self):
        series = make_series([(0, 10)])
        with pytest.raises(ValueError):
            realized_exhaustion_time(series, 0.0)
        with pytest.raises(ValueError):
            realized_exhaustion_time(series, 10.0, fraction=0.0)

    def test_within_tolerance_band(self):
        assert within_tolerance(50.0, 60.0) is True
        assert within_tolerance(31.0, 60.0) is True  # just inside 2x
        assert within_tolerance(29.0, 60.0) is False
        assert within_tolerance(130.0, 60.0) is False
        assert within_tolerance(None, 60.0) is None
        assert within_tolerance(50.0, None) is None
        assert within_tolerance(0.0, 0.0) is True
        assert within_tolerance(0.0, 5.0) is False
        with pytest.raises(ValueError):
            within_tolerance(1.0, 1.0, factor=0.5)

    def test_band_is_symmetric(self):
        factor = TTE_TOLERANCE_FACTOR
        assert within_tolerance(10.0, 10.0 * factor * 0.999)
        assert within_tolerance(10.0 * factor * 0.999, 10.0)
        assert not within_tolerance(10.0, 10.0 * factor * 1.01)
        assert not within_tolerance(10.0 * factor * 1.01, 10.0)
