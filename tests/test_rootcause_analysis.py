"""Tests for the root-cause strategies and the analysis utilities."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.statistics import normalize_scores, relative_difference, summary
from repro.analysis.timeseries import final_fraction_mean, growth_of, moving_average, series_slope
from repro.analysis.trend import linear_slope, mann_kendall, theil_sen_slope
from repro.core.resource_map import ComponentSample, ResourceComponentMap
from repro.core.rootcause import (
    PaperMapStrategy,
    TrendStrategy,
    WeightedCompositeStrategy,
)
from repro.sim.metrics import TimeSeries


def _map_with_components(growths: dict, points: int = 30, noise: float = 0.0, seed: int = 0):
    """Build a resource map with linear growth per component (+ optional noise)."""
    rng = np.random.default_rng(seed)
    resource_map = ResourceComponentMap()
    for component, total_growth in growths.items():
        for index in range(points):
            value = 2048.0 + total_growth * index / (points - 1)
            if noise:
                value += rng.normal(0.0, noise)
            resource_map.add_sample(
                ComponentSample(
                    component,
                    timestamp=float(index * 60),
                    values={"object_size": value},
                )
            )
    return resource_map


class TestTrendAnalysis:
    def test_mann_kendall_detects_increasing_trend(self):
        values = np.linspace(0.0, 100.0, 40) + np.random.default_rng(1).normal(0, 2, 40)
        result = mann_kendall(values)
        assert result.trending_up
        assert result.p_value < 0.01

    def test_mann_kendall_flat_series_not_significant(self):
        values = np.random.default_rng(2).normal(50.0, 1.0, 40)
        result = mann_kendall(values)
        assert not result.significant or abs(result.z_score) < 3

    def test_mann_kendall_short_series(self):
        assert not mann_kendall([1.0, 2.0]).significant

    def test_linear_and_theil_sen_slopes(self):
        times = np.arange(0, 50, dtype=float)
        values = 3.0 * times + 10.0
        assert linear_slope(times, values) == pytest.approx(3.0)
        assert theil_sen_slope(times, values) == pytest.approx(3.0)

    def test_theil_sen_robust_to_outliers(self):
        times = np.arange(0, 50, dtype=float)
        values = 2.0 * times
        values[10] += 10_000  # gross outlier
        assert abs(theil_sen_slope(times, values) - 2.0) < 0.2
        assert abs(linear_slope(times, values) - 2.0) > 0.5

    def test_slope_input_validation(self):
        with pytest.raises(ValueError):
            linear_slope([1, 2], [1])
        assert linear_slope([1.0], [5.0]) == 0.0
        assert theil_sen_slope([], []) == 0.0


class TestTimeseriesAndStats:
    def test_growth_and_slope_helpers(self):
        series = TimeSeries()
        for t in range(10):
            series.record(float(t), 5.0 * t)
        assert growth_of(series) == pytest.approx(45.0)
        assert series_slope(series) == pytest.approx(5.0)

    def test_moving_average_smooths(self):
        series = TimeSeries()
        for t in range(20):
            series.record(float(t), 10.0 + (-1.0 if t % 2 else 1.0))
        smoothed = moving_average(series, window_points=5)
        assert np.std(smoothed.values) < np.std(series.values)
        assert len(smoothed) == len(series)

    def test_final_fraction_mean(self):
        series = TimeSeries()
        for t in range(10):
            series.record(float(t), float(t))
        assert final_fraction_mean(series, 0.2) == pytest.approx(8.5)
        with pytest.raises(ValueError):
            final_fraction_mean(series, 0.0)

    def test_normalize_scores(self):
        assert normalize_scores({"a": 3.0, "b": 1.0}) == {"a": 0.75, "b": 0.25}
        assert normalize_scores({"a": 0.0, "b": 0.0}) == {"a": 0.0, "b": 0.0}
        normalized = normalize_scores({"a": -5.0, "b": 5.0})
        assert normalized == {"a": 0.0, "b": 1.0}

    def test_summary_and_relative_difference(self):
        stats = summary([1.0, 2.0, 3.0])
        assert stats["mean"] == 2.0 and stats["count"] == 3
        assert summary([])["count"] == 0
        assert relative_difference(95.0, 100.0) == pytest.approx(-0.05)
        assert relative_difference(1.0, 0.0) == float("inf")


class TestStrategies:
    def test_paper_map_ranks_by_consumption(self):
        resource_map = _map_with_components({"A": 4_000_000, "B": 500_000, "C": 0})
        report = PaperMapStrategy().analyze(resource_map)
        assert report.ranking()[:2] == ["A", "B"]
        assert report.top().responsibility > 0.8
        assert report.responsibility("C") == 0.0

    def test_paper_map_single_guilty_component_gets_full_responsibility(self):
        resource_map = _map_with_components({"A": 1_000_000, "B": 0, "C": 0})
        report = PaperMapStrategy().analyze(resource_map)
        assert report.top().component == "A"
        assert report.top().responsibility == pytest.approx(1.0)

    def test_paper_map_ties_broken_by_usage(self):
        resource_map = ResourceComponentMap()
        for component, invocations in [("busy", 50), ("quiet", 5)]:
            for index in range(invocations):
                resource_map.add_sample(
                    ComponentSample(component, float(index), values={"object_size": 1000.0})
                )
        report = PaperMapStrategy().analyze(resource_map)
        assert report.ranking()[0] == "busy"

    def test_trend_strategy_ignores_noisy_flat_components(self):
        resource_map = _map_with_components(
            {"leaky": 2_000_000, "noisy": 0}, points=40, noise=3000.0, seed=3
        )
        report = TrendStrategy().analyze(resource_map)
        assert report.top().component == "leaky"
        assert report.responsibility("noisy") < 0.05

    def test_trend_strategy_requires_minimum_points(self):
        resource_map = _map_with_components({"A": 1_000_000}, points=3)
        report = TrendStrategy(min_points=5).analyze(resource_map)
        assert report.top().score == 0.0

    def test_composite_strategy_combines(self):
        resource_map = _map_with_components({"A": 3_000_000, "B": 100_000}, points=30)
        report = WeightedCompositeStrategy().analyze(resource_map)
        assert report.top().component == "A"
        assert report.strategy == "composite"
        details = report.top().details
        assert "paper-map_responsibility" in details and "trend_responsibility" in details

    def test_composite_validation(self):
        with pytest.raises(ValueError):
            WeightedCompositeStrategy(strategies=[PaperMapStrategy()], weights=[1.0, 2.0])
        with pytest.raises(ValueError):
            WeightedCompositeStrategy(strategies=[PaperMapStrategy()], weights=[0.0])

    def test_trend_strategy_validation(self):
        with pytest.raises(ValueError):
            TrendStrategy(alpha=1.5)
        with pytest.raises(ValueError):
            TrendStrategy(min_points=2)

    def test_report_rows_and_accessors(self):
        resource_map = _map_with_components({"A": 1_000_000, "B": 10_000})
        report = PaperMapStrategy().analyze(resource_map)
        rows = report.to_rows()
        assert rows[0]["rank"] == 1 and rows[0]["component"] == "A"
        assert report.responsibility("missing") == 0.0


# --------------------------------------------------------------------------- #
# Property-based tests
# --------------------------------------------------------------------------- #
@settings(max_examples=40, deadline=None)
@given(
    st.dictionaries(
        st.sampled_from(["a", "b", "c", "d", "e"]),
        # Growths either exactly zero or large enough not to vanish next to
        # the 2048-byte baseline used when synthesising the series.
        st.one_of(st.just(0.0), st.floats(min_value=1.0, max_value=1e9)),
        min_size=1,
        max_size=5,
    )
)
def test_property_responsibilities_sum_to_one_or_zero(growths):
    """Responsibilities are a probability distribution whenever any growth exists."""
    resource_map = _map_with_components(growths, points=5)
    report = PaperMapStrategy().analyze(resource_map)
    total = sum(suspicion.responsibility for suspicion in report.suspicions)
    if any(value > 0 for value in growths.values()):
        assert total == pytest.approx(1.0)
    else:
        assert total == 0.0


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=3, max_size=50))
def test_property_mann_kendall_symmetry(values):
    """Reversing a series flips the sign of the Mann-Kendall statistic."""
    forward = mann_kendall(values)
    backward = mann_kendall(list(reversed(values)))
    assert forward.statistic == pytest.approx(-backward.statistic)
