"""Unit tests for the query planner: plan cache, lazy indexes, operators."""

from __future__ import annotations

import pytest

from repro.db.engine import Database, SqlExecutionError
from repro.db.sql import parse_sql
from repro.db.table import Column, ColumnType


def build_database() -> Database:
    database = Database("planner")
    database.create_table(
        "item",
        [
            Column("i_id", ColumnType.INTEGER, primary_key=True),
            Column("i_title", ColumnType.VARCHAR),
            Column("i_subject", ColumnType.VARCHAR),
            Column("i_cost", ColumnType.FLOAT),
            Column("i_a_id", ColumnType.INTEGER),
        ],
    )
    database.create_table(
        "author",
        [
            Column("a_id", ColumnType.INTEGER, primary_key=True),
            Column("a_lname", ColumnType.VARCHAR),
        ],
    )
    for author_id, last in [(1, "SMITH"), (2, "JONES"), (3, "BRONTE")]:
        database.table("author").insert({"a_id": author_id, "a_lname": last})
    for item_id in range(1, 13):
        database.table("item").insert(
            {
                "i_id": item_id,
                "i_title": f"Book {item_id:02d}",
                "i_subject": "ARTS" if item_id % 2 == 0 else "HISTORY",
                "i_cost": float(item_id % 5),
                "i_a_id": 1 + item_id % 3,
            }
        )
    return database


class TestPlanCache:
    def test_plan_reused_across_executions(self):
        database = build_database()
        sql = "SELECT i_id FROM item WHERE i_subject = ? ORDER BY i_cost LIMIT 3"
        statement = parse_sql(sql)
        database.execute(statement, ["ARTS"])
        entry = database._plan_cache[id(statement)]
        database.execute(statement, ["HISTORY"])
        assert database._plan_cache[id(statement)] is entry  # same plan object

    def test_ddl_invalidates_plans(self):
        database = build_database()
        sql = "SELECT i_id FROM item ORDER BY i_cost LIMIT 2"
        statement = parse_sql(sql)
        database.execute(statement)
        assert database._plan_cache
        database.create_table("extra", [Column("x", ColumnType.INTEGER, primary_key=True)])
        assert not database._plan_cache  # epoch bump cleared the cache

    def test_create_index_recompiles_plan(self):
        database = build_database()
        sql = "SELECT i_id FROM item WHERE i_cost = ? ORDER BY i_id LIMIT 5"
        statement = parse_sql(sql)
        before = database.execute(statement, [2.0])
        plan_before = database._plan_cache[id(statement)][1]
        # i_cost was unindexed: the plan charges a full scan.
        assert before.rows_scanned == 12
        database.table("item").create_index("i_cost")
        after = database.execute(statement, [2.0])
        plan_after = database._plan_cache[id(statement)][1]
        assert plan_after is not plan_before  # schema_version bump recompiled
        assert after.rows == before.rows
        # Declared index now prunes -> accounting changes like the interpreter's.
        assert after.rows_scanned == len(after.rows)

    def test_statements_executed_directly_still_work(self):
        database = build_database()
        result = database.execute(
            "SELECT a_lname FROM author ORDER BY a_lname DESC LIMIT 2"
        )
        assert [row["a_lname"] for row in result.rows] == ["SMITH", "JONES"]


class TestLazyHashIndexes:
    def test_lazy_index_is_invisible_to_cost_model(self):
        database = build_database()
        table = database.table("item")
        sql = "SELECT i_id FROM item WHERE i_subject = ? ORDER BY i_id LIMIT 4"
        result = database.execute(sql, ["ARTS"])
        # The planner built a lazy hash index for the equality residual...
        assert table.has_hash_index("i_subject")
        # ...but the declared-plan accounting still reports a full scan.
        assert not table.has_index("i_subject")
        assert result.rows_scanned == 12
        assert [row["i_id"] for row in result.rows] == [2, 4, 6, 8]

    def test_lazy_index_is_maintained_by_mutations(self):
        database = build_database()
        sql = "SELECT i_id FROM item WHERE i_subject = ? ORDER BY i_id LIMIT 20"
        assert [r["i_id"] for r in database.execute(sql, ["ARTS"]).rows] == [2, 4, 6, 8, 10, 12]
        database.execute(
            "INSERT INTO item (i_id, i_title, i_subject, i_cost, i_a_id) "
            "VALUES (?, ?, ?, ?, ?)",
            [99, "New", "ARTS", 1.0, 1],
        )
        database.execute("UPDATE item SET i_subject = ? WHERE i_id = ?", ["ARTS", 1])
        database.execute("DELETE FROM item WHERE i_id = ?", [2])
        assert [r["i_id"] for r in database.execute(sql, ["ARTS"]).rows] == [
            1,
            4,
            6,
            8,
            10,
            12,
            99,
        ]

    def test_declared_index_promotes_lazy_index(self):
        database = build_database()
        table = database.table("item")
        index = table.ensure_hash_index("i_subject")
        table.create_index("i_subject")
        assert table.has_index("i_subject")
        # Promoted, not rebuilt: the same index object now serves lookups.
        assert table._secondary["i_subject"] is index

    def test_join_on_unindexed_key_uses_lazy_index(self):
        database = build_database()
        # i_a_id is unindexed: the interpreter would scan item per author row.
        result = database.execute(
            "SELECT a.a_lname, i.i_id FROM author a "
            "JOIN item i ON i.i_a_id = a.a_id WHERE a_lname = ? ORDER BY i_id LIMIT 3",
            ["SMITH"],
        )
        assert database.table("item").has_hash_index("i_a_id")
        # Interpreter accounting: author full scan (3 rows) + a full item scan
        # (12 rows) per author row — the a_lname filter is residual, applied
        # after the join, so all three author rows probe.
        assert result.rows_scanned == 3 + 3 * 12
        assert [row["i_id"] for row in result.rows] == [3, 6, 9]


class TestTopK:
    def test_topk_matches_full_sort_with_ties(self):
        database = build_database()
        # i_cost has many ties; LIMIT must keep the full sort's stable order.
        with_limit = database.execute(
            "SELECT i_id FROM item ORDER BY i_cost DESC LIMIT 5"
        )
        without_limit = database.execute("SELECT i_id FROM item ORDER BY i_cost DESC")
        assert with_limit.rows == without_limit.rows[:5]

    def test_mixed_direction_order_by_falls_back(self):
        database = build_database()
        statement = parse_sql(
            "SELECT i_id FROM item ORDER BY i_subject ASC, i_cost DESC LIMIT 4"
        )
        result = database.execute(statement)
        plan = database._plan_cache[id(statement)][1]
        assert not plan.topk_eligible
        expected = sorted(
            (
                (row["i_subject"], -row["i_cost"], row["i_id"])
                for row in database.execute("SELECT i_subject, i_cost, i_id FROM item").rows
            ),
        )
        assert [row["i_id"] for row in result.rows] == [row_id for _, _, row_id in expected[:4]]

    def test_limit_zero(self):
        database = build_database()
        assert database.execute("SELECT i_id FROM item ORDER BY i_id LIMIT 0").rows == []


class TestErrorBehaviour:
    def test_unknown_names_raise(self):
        database = build_database()
        with pytest.raises(SqlExecutionError):
            database.execute("SELECT nope FROM item ORDER BY i_id")
        with pytest.raises(SqlExecutionError):
            database.execute("SELECT i_id FROM item WHERE ghost.i_id = 1 ORDER BY i_id")
        with pytest.raises(SqlExecutionError):
            database.execute("SELECT i_id FROM missing ORDER BY i_id")

    def test_missing_parameters_raise_per_execution(self):
        database = build_database()
        sql = "SELECT i_id FROM item WHERE i_subject = ? ORDER BY i_id"
        with pytest.raises(SqlExecutionError):
            database.execute(sql)
        # A correct execution afterwards still works (plan was not poisoned).
        assert database.execute(sql, ["ARTS"]).rowcount == 6

    def test_plain_column_outside_group_by_raises(self):
        database = build_database()
        with pytest.raises(SqlExecutionError):
            database.execute(
                "SELECT i_title, COUNT(*) AS n FROM item GROUP BY i_subject"
            )
