"""Tests for the experiment harness (environment, runner, scenarios, reporting).

Scenario tests run heavily scaled-down versions of the paper's experiments
(tiny database, few EBs, minutes instead of an hour) — enough to assert the
*shape* of every figure without slowing the unit-test suite down.
"""

from __future__ import annotations

import pytest

from repro.container.server import ServerConfig
from repro.experiments.environment import PAPER_TESTBED, environment_rows, simulated_environment
from repro.experiments.reporting import (
    downsample_series,
    fig3_report,
    fig6_report,
    format_table,
    leak_scenario_report,
)
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.experiments.scenarios import (
    COMPONENT_A,
    COMPONENT_B,
    COMPONENT_C,
    COMPONENT_D,
    fig3_overhead,
    fig4_single_leak,
    fig5_multi_leak,
    fig6_manager_map,
    fig7_injection_sizes,
    strategy_ablation,
)
from repro.faults.injector import FaultSpec
from repro.faults.memory_leak import KB
from repro.sim.metrics import TimeSeries
from repro.tpcw.population import PopulationScale
from repro.tpcw.workload import WorkloadPhase

TINY = PopulationScale.tiny()


class TestEnvironment:
    def test_paper_testbed_matches_table1(self):
        assert PAPER_TESTBED["application_server"]["software"] == "Tomcat 5.5.26"
        assert "1GB heap" in PAPER_TESTBED["application_server"]["jvm"]
        assert PAPER_TESTBED["database_server"]["software"] == "MySql 5.0.67"

    def test_simulated_environment_reflects_config(self):
        environment = simulated_environment(ServerConfig(app_cpu_cores=8, heap_bytes=512 * 1024 * 1024))
        assert "8-way" in environment["application_server"]["hardware"]
        assert "512 MB heap" in environment["application_server"]["jvm"]

    def test_environment_rows_cover_all_tiers_and_attributes(self):
        rows = environment_rows()
        assert len(rows) == 12
        assert {row["tier"] for row in rows} == {"clients", "application_server", "database_server"}
        assert all(row["paper"] and row["reproduction"] for row in rows)


class TestRunner:
    def test_unmonitored_run_collects_blackbox_only(self):
        config = ExperimentConfig(
            name="t", seed=1, scale=TINY, constant_ebs=8, duration=120.0, monitored=False
        )
        result = run_experiment(config)
        assert result.completed_requests > 20
        assert result.root_cause is None
        assert result.overhead_seconds == 0.0
        assert result.blackbox is not None
        assert result.blackbox.sample_count() >= 1

    def test_monitored_run_produces_map_and_series(self):
        config = ExperimentConfig(
            name="t",
            seed=1,
            scale=TINY,
            constant_ebs=8,
            duration=180.0,
            monitored=True,
            snapshot_interval=30.0,
            faults=[FaultSpec("home", "memory-leak", {"leak_bytes": 50 * KB, "period_n": 5})],
        )
        result = run_experiment(config)
        assert result.root_cause is not None
        assert result.root_cause.top().component == "home"
        assert len(result.component_series["home"]) >= 3
        assert result.overhead_seconds > 0
        assert result.fault_descriptions and "memory-leak" in result.fault_descriptions[0]
        assert result.component_growth()["home"] > 0
        assert result.mean_throughput() > 0

    def test_monitored_components_subset(self):
        config = ExperimentConfig(
            name="t",
            seed=1,
            scale=TINY,
            constant_ebs=8,
            duration=90.0,
            monitored=True,
            monitored_components=["home"],
        )
        result = run_experiment(config)
        status = result.framework.manager.component_status()
        assert status["home"] is True
        assert status["product_detail"] is False

    def test_pinpoint_trace_collection(self):
        config = ExperimentConfig(
            name="t",
            seed=2,
            scale=TINY,
            constant_ebs=6,
            duration=90.0,
            monitored=False,
            collect_pinpoint_traces=True,
        )
        result = run_experiment(config)
        assert result.pinpoint is not None
        assert result.pinpoint.total_requests == result.completed_requests

    def test_phases_default_to_constant_ebs(self):
        config = ExperimentConfig(constant_ebs=17)
        phases = config.effective_phases()
        assert phases == [WorkloadPhase(0.0, 17)]


class TestScenarios:
    def test_fig3_shape_monitored_below_unmonitored(self):
        result = fig3_overhead(duration_scale=0.05, seed=5, scale=TINY,
                               warmup_ebs=10, mid_ebs=20, high_ebs=40)
        warm, mid, end = result.phase_times
        pair_high = result.throughput_pair(mid, end)
        pair_mid = result.throughput_pair(warm, mid)
        # Throughput grows with the EB count and monitoring never helps.
        assert pair_high["unmonitored"] > pair_mid["unmonitored"]
        assert result.monitored.overhead_seconds > 0
        assert result.overhead_percent() < 25.0
        assert len(result.throughput_rows()) > 0

    def test_fig4_single_leak_blames_component_a(self):
        scenario = fig4_single_leak(duration_scale=0.08, seed=7, scale=TINY, ebs=40)
        report = scenario.root_cause
        assert report.top().component == COMPONENT_A
        assert report.top().responsibility > 0.95
        growth = scenario.growth()
        assert growth[COMPONENT_A] > 200 * KB
        flat = [name for name in growth if name != COMPONENT_A]
        assert all(growth[name] < 0.05 * growth[COMPONENT_A] for name in flat)

    def test_fig5_multi_leak_ordering(self):
        scenario = fig5_multi_leak(duration_scale=0.08, seed=7, scale=TINY, ebs=40)
        growth = scenario.growth()
        # A and B grow the most, C less, D effectively flat.
        assert growth[COMPONENT_A] > growth[COMPONENT_C]
        assert growth[COMPONENT_B] > growth[COMPONENT_C]
        assert growth[COMPONENT_D] <= growth[COMPONENT_C]
        ranking = scenario.root_cause.ranking()
        assert set(ranking[:2]) == {COMPONENT_A, COMPONENT_B}
        # Fig. 6 is derived from the same run.
        rows = fig6_manager_map(scenario)
        by_component = {row["component"]: row for row in rows}
        assert "most suspicious" in by_component[COMPONENT_A]["quadrant"]

    def test_fig7_largest_leak_wins(self):
        scenario = fig7_injection_sizes(duration_scale=0.08, seed=7, scale=TINY, ebs=40)
        ranking = scenario.root_cause.ranking()
        assert ranking[0] == COMPONENT_C
        assert ranking[1] == COMPONENT_A
        growth = scenario.growth()
        assert growth[COMPONENT_C] > growth[COMPONENT_A] > growth[COMPONENT_B]

    def test_strategy_ablation_rows(self):
        scenario = fig4_single_leak(duration_scale=0.05, seed=3, scale=TINY, ebs=30)
        rows = strategy_ablation(scenario)
        assert {row["strategy"] for row in rows} == {"paper-map", "trend", "composite"}
        assert all(row["top_component"] == COMPONENT_A for row in rows)


class TestReporting:
    def test_format_table_and_downsample(self):
        table = format_table([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}])
        assert "a" in table.splitlines()[0]
        assert len(table.splitlines()) == 4
        assert format_table([]) == "(no data)"
        series = TimeSeries()
        for index in range(100):
            series.record(float(index), float(index))
        assert len(downsample_series(series, points=10)) <= 11

    def test_fig_reports_render(self):
        fig3 = fig3_overhead(duration_scale=0.04, seed=5, scale=TINY,
                             warmup_ebs=5, mid_ebs=10, high_ebs=20)
        text = fig3_report(fig3)
        assert "Fig. 3" in text and "measured overhead" in text

        scenario = fig4_single_leak(duration_scale=0.05, seed=3, scale=TINY, ebs=30)
        leak_text = leak_scenario_report(scenario, "Fig. 4", "A grows, others flat")
        assert "root-cause ranking" in leak_text and COMPONENT_A in leak_text

        fig6_text = fig6_report(fig6_manager_map(scenario))
        assert "Fig. 6" in fig6_text
