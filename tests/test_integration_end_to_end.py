"""End-to-end integration tests across every subsystem.

These tests exercise the full pipeline — TPC-W deployment, AOP weaving, JMX
agents/manager, fault injection, workload generation, root-cause analysis,
baselines — the way the examples and benchmarks use it.
"""

from __future__ import annotations

import pytest

from repro.baselines.blackbox import BlackBoxMonitor
from repro.baselines.pinpoint import PinpointAnalyzer
from repro.core.framework import FrameworkConfig, MonitoringFramework
from repro.core.rootcause import TrendStrategy
from repro.faults.injector import FaultInjector, FaultSpec
from repro.faults.memory_leak import KB
from repro.sim.engine import SimulationEngine
from repro.tpcw.application import build_deployment
from repro.tpcw.population import PopulationScale
from repro.tpcw.workload import WorkloadGenerator, WorkloadPhase


def _run_monitored_leak_run(seed=3, duration=240.0, ebs=15, leak_component="home"):
    engine = SimulationEngine()
    deployment = build_deployment(scale=PopulationScale.tiny(), seed=seed, clock=engine.clock)
    framework = MonitoringFramework(
        deployment, engine=engine, config=FrameworkConfig(snapshot_interval=30.0)
    )
    framework.install()
    injector = FaultInjector(deployment)
    injector.inject_spec(
        FaultSpec(leak_component, "memory-leak", {"leak_bytes": 100 * KB, "period_n": 5})
    )
    blackbox = BlackBoxMonitor(deployment.runtime, deployment.datasource)
    for t in range(30, int(duration) + 1, 30):
        engine.schedule_at(float(t), lambda when=float(t): blackbox.sample(when))
    pinpoint = PinpointAnalyzer()
    generator = WorkloadGenerator(engine, deployment)
    generator.on_request = lambda interaction, outcome: pinpoint.record_request(
        [interaction], failed=not outcome.ok
    )
    generator.schedule_phases([WorkloadPhase(0.0, ebs)])
    framework.schedule_snapshots(duration=duration, interval=30.0)
    generator.run(duration)
    return deployment, framework, generator, blackbox, pinpoint


class TestEndToEnd:
    def test_framework_vs_baselines_on_a_memory_leak(self):
        deployment, framework, generator, blackbox, pinpoint = _run_monitored_leak_run()

        # The AOP/JMX framework names the leaking component.
        report = framework.root_cause()
        assert report.top().component == "home"
        assert report.top().responsibility > 0.9

        # The black-box monitor sees the heap trend but cannot attribute it.
        blackbox_report = blackbox.analyze()
        assert blackbox_report.aging_detected
        assert blackbox_report.root_cause_component is None

        # Pinpoint sees no failed requests, hence no suspect at all.
        pinpoint_report = pinpoint.analyze()
        assert pinpoint_report.failed_requests == 0
        assert pinpoint_report.top() is None

        # Workload health.
        assert generator.error_count == 0
        assert generator.completed_requests > 200

    def test_trend_strategy_agrees_with_paper_strategy(self):
        deployment, framework, *_ = _run_monitored_leak_run(seed=11)
        paper_report = framework.root_cause()
        trend_report = TrendStrategy(min_points=4).analyze(framework.manager.map)
        assert trend_report.top().component == paper_report.top().component == "home"

    def test_manager_notification_fires_during_run(self):
        engine = SimulationEngine()
        deployment = build_deployment(scale=PopulationScale.tiny(), seed=5, clock=engine.clock)
        framework = MonitoringFramework(
            deployment,
            engine=engine,
            config=FrameworkConfig(snapshot_interval=30.0, alert_growth_bytes=300 * KB),
        )
        framework.install()
        alerts = []
        framework.manager.add_notification_listener(lambda n, h: alerts.append(n))
        FaultInjector(deployment).inject_spec(
            FaultSpec("product_detail", "memory-leak", {"leak_bytes": 100 * KB, "period_n": 3})
        )
        generator = WorkloadGenerator(engine, deployment)
        generator.schedule_phases([WorkloadPhase(0.0, 15)])
        framework.schedule_snapshots(duration=200.0, interval=25.0)
        generator.run(200.0)
        assert len(alerts) == 1
        assert alerts[0].attributes["component"] == "product_detail"

    def test_runtime_deactivation_mid_run_reduces_overhead(self):
        engine = SimulationEngine()
        deployment = build_deployment(scale=PopulationScale.tiny(), seed=9, clock=engine.clock)
        framework = MonitoringFramework(deployment, engine=engine)
        framework.install()
        generator = WorkloadGenerator(engine, deployment)
        generator.schedule_phases([WorkloadPhase(0.0, 10)])
        # Switch the whole framework off halfway through the run.
        engine.schedule_at(100.0, framework.disable_all, priority=-10)
        generator.run(200.0)
        overhead_at_end = framework.overhead.total_seconds
        by_component = framework.overhead.by_component()
        assert overhead_at_end > 0
        # After deactivation no further samples were charged: the totals match
        # the invocation counts observed by the ACs (all before t=100).
        total_invocations = sum(
            ac.invocation_count for ac in framework.aspect_components.values()
        )
        assert framework.overhead.sample_count == 4 * total_invocations
        assert set(by_component) <= set(deployment.interaction_names())

    def test_multi_fault_kinds_coexist(self):
        engine = SimulationEngine()
        deployment = build_deployment(scale=PopulationScale.tiny(), seed=13, clock=engine.clock)
        framework = MonitoringFramework(
            deployment,
            engine=engine,
            config=FrameworkConfig(monitor_cpu=True, monitor_threads=True, monitor_connections=True),
        )
        framework.install()
        injector = FaultInjector(deployment)
        injector.inject_plan(
            [
                FaultSpec("home", "memory-leak", {"leak_bytes": 50 * KB, "period_n": 5}),
                FaultSpec("product_detail", "thread-leak", {"period_n": 5}),
                FaultSpec("search_results", "cpu-hog", {"increment_seconds": 0.005, "period_n": 5}),
            ]
        )
        generator = WorkloadGenerator(engine, deployment)
        generator.schedule_phases([WorkloadPhase(0.0, 12)])
        framework.schedule_snapshots(duration=200.0, interval=50.0)
        generator.run(200.0)

        # Memory root cause still points at the memory leaker.
        assert framework.root_cause("object_size").top().component == "home"
        # The thread leak shows up in the runtime's thread accounting.
        assert deployment.runtime.threads.count_by_owner("product_detail") > 0
        # The CPU hog raised the component's demand.
        assert deployment.servlet("search_results").base_cpu_demand_seconds > 0.22
