"""Tests for object sizing, overhead accounting and the resource-component map."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.overhead import OverheadAccount
from repro.core.resource_map import ComponentSample, ResourceComponentMap
from repro.core.sizing import deep_object_size, retained_component_size
from repro.jvm.heap import Heap
from repro.jvm.objects import JavaObject


class TestSizing:
    def test_one_level_only(self):
        root = JavaObject("Root", 100)
        child = JavaObject("Child", 50)
        grandchild = JavaObject("GrandChild", 1000)
        root.add_reference(child)
        child.add_reference(grandchild)
        # The grandchild must NOT be counted (no recursion, per the paper).
        assert deep_object_size(root) == 150

    def test_duplicate_references_counted_once(self):
        root = JavaObject("Root", 10)
        child = JavaObject("Child", 5)
        root.add_reference(child)
        root.add_reference(child)
        assert deep_object_size(root) == 15

    def test_dead_children_skipped_with_heap(self):
        heap = Heap(10_000)
        root = heap.allocate("Root", 10, root=True)
        child = heap.allocate("Child", 100)
        root.add_reference(child)
        assert deep_object_size(root, heap) == 110
        heap.free(child)
        assert deep_object_size(root, heap) == 10

    def test_retained_component_size_over_multiple_roots(self):
        shared = JavaObject("Shared", 40)
        first = JavaObject("A", 10)
        second = JavaObject("B", 20)
        first.add_reference(shared)
        second.add_reference(shared)
        # Shared child counted once; duplicate root list counted once.
        assert retained_component_size([first, second, first]) == 70


class TestOverheadAccount:
    def test_charge_and_consume(self):
        account = OverheadAccount(sample_cost_seconds=0.002)
        account.charge_sample("home")
        account.charge_sample("home", samples=3)
        assert account.sample_count == 4
        assert account.pending_seconds == pytest.approx(0.008)
        assert account.consume_pending() == pytest.approx(0.008)
        assert account.consume_pending() == 0.0
        assert account.total_seconds == pytest.approx(0.008)
        assert account.by_component() == {"home": pytest.approx(0.008)}

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            OverheadAccount(sample_cost_seconds=-1)
        account = OverheadAccount()
        with pytest.raises(ValueError):
            account.charge("x", -0.1)
        with pytest.raises(ValueError):
            account.charge_sample("x", samples=-1)


class TestResourceComponentMap:
    def _sample(self, component, t, size):
        return ComponentSample(
            component=component,
            timestamp=t,
            deltas={"object_size": 0.0},
            values={"object_size": size},
        )

    def test_samples_accumulate_usage_and_consumption(self):
        resource_map = ResourceComponentMap()
        for index in range(10):
            resource_map.add_sample(self._sample("home", float(index), 1000.0 + 100 * index))
        stats = resource_map.stats("home")
        assert stats.invocations == 10
        assert resource_map.consumption("home") == pytest.approx(900.0)
        assert resource_map.usage_frequency("home") == pytest.approx(10 / 9.0)
        assert len(resource_map.series("home")) == 10

    def test_snapshot_observations_do_not_count_as_usage(self):
        resource_map = ResourceComponentMap()
        resource_map.record_observation("home", "object_size", 0.0, 100.0)
        resource_map.record_observation("home", "object_size", 60.0, 500.0)
        assert resource_map.stats("home").invocations == 0
        assert resource_map.consumption("home") == pytest.approx(400.0)

    def test_consumption_falls_back_to_positive_deltas(self):
        resource_map = ResourceComponentMap()
        sample = ComponentSample("cart", 1.0, deltas={"heap_used": 300.0}, values={})
        resource_map.add_sample(sample)
        assert resource_map.consumption("cart", "heap_used") == pytest.approx(300.0)

    def test_quadrants_classification(self):
        resource_map = ResourceComponentMap()
        # A: high usage + high consumption, B: high usage only,
        # C: low usage + high consumption, D: neither.
        for index in range(20):
            resource_map.add_sample(self._sample("A", float(index), 1000.0 * index))
            resource_map.add_sample(self._sample("B", float(index), 100.0))
        resource_map.add_sample(self._sample("C", 0.0, 0.0))
        resource_map.add_sample(self._sample("C", 19.0, 30000.0))
        resource_map.add_sample(self._sample("D", 10.0, 10.0))
        quadrants = resource_map.quadrants()
        assert "most suspicious" in quadrants["A"]
        assert quadrants["B"] == "high-usage / low-consumption"
        assert quadrants["C"] == "low-usage / high-consumption"
        assert quadrants["D"] == "low-usage / low-consumption"

    def test_application_components_excludes_pseudo(self):
        resource_map = ResourceComponentMap()
        resource_map.register_component("home")
        resource_map.record_observation("<jvm>", "heap_used", 0.0, 1.0)
        assert resource_map.application_components() == ["home"]
        assert "<jvm>" in resource_map.components()

    def test_to_rows_contains_expected_columns(self):
        resource_map = ResourceComponentMap()
        resource_map.add_sample(self._sample("home", 0.0, 10.0))
        rows = resource_map.to_rows()
        assert rows[0]["component"] == "home"
        assert {"invocations", "usage_per_second", "object_size_consumed", "quadrant"} <= set(rows[0])


# --------------------------------------------------------------------------- #
# Property-based tests
# --------------------------------------------------------------------------- #
@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=10_000), min_size=0, max_size=30),
    st.integers(min_value=0, max_value=10_000),
)
def test_property_deep_size_is_shallow_plus_children(child_sizes, root_size):
    """deep size == root shallow + sum of distinct children shallow sizes."""
    root = JavaObject("Root", root_size)
    children = [JavaObject(f"C{index}", size) for index, size in enumerate(child_sizes)]
    for child in children:
        root.add_reference(child)
    assert deep_object_size(root) == root_size + sum(child_sizes)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from(["a", "b", "c"]), st.floats(min_value=0, max_value=1e6)),
        min_size=1,
        max_size=60,
    )
)
def test_property_map_invocations_match_sample_counts(samples):
    """Per-component invocation counts equal the number of samples folded in."""
    resource_map = ResourceComponentMap()
    expected = {}
    for index, (component, size) in enumerate(samples):
        resource_map.add_sample(
            ComponentSample(component, float(index), values={"object_size": size})
        )
        expected[component] = expected.get(component, 0) + 1
    for component, count in expected.items():
        assert resource_map.stats(component).invocations == count
    assert resource_map.sample_count == len(samples)
