"""Multi-segment workload runs and out-of-order throughput accounting.

Covers the two seed bugs fixed in this PR:

* ``EmulatedBrowser._issue_request`` used to drop (not park) the next
  request once it fell past ``end_time``, so a second
  :meth:`WorkloadGenerator.run` resumed with a dead browser population.
* ``WindowedRate.mark`` eagerly flushed windows on the highest completion
  timestamp seen, silently attributing out-of-order completions to the
  wrong (current) window.
"""

from __future__ import annotations

import pytest

from repro.sim.engine import SimulationEngine
from repro.sim.metrics import WindowedRate
from repro.tpcw.application import build_deployment
from repro.tpcw.population import PopulationScale
from repro.tpcw.workload import WorkloadGenerator, WorkloadPhase


def _generator(seed: int = 3) -> WorkloadGenerator:
    engine = SimulationEngine()
    deployment = build_deployment(scale=PopulationScale.tiny(), seed=seed, clock=engine.clock)
    return WorkloadGenerator(engine, deployment, think_time_mean=5.0)


class TestMultiSegmentRuns:
    def test_second_segment_resumes_population(self):
        generator = _generator()
        generator.schedule_phases([WorkloadPhase(0.0, 10)])
        generator.run(120.0)
        first = generator.completed_requests
        assert first > 50
        assert generator.active_browsers == 0  # stopped between segments

        generator.run(120.0)
        second = generator.completed_requests - first
        # The revived population keeps producing load at a comparable rate.
        assert second > first * 0.5
        assert generator.active_browsers == 0

    def test_browsers_are_parked_not_dropped(self):
        generator = _generator()
        generator.schedule_phases([WorkloadPhase(0.0, 5)])
        generator.run(60.0)
        parked = [browser for browser in generator._browsers if browser.parked_time is not None]
        # Every browser's next request fell past end_time and was parked.
        assert parked, "expected at least one parked browser after a segment"
        for browser in parked:
            assert browser.parked_time > 0.0

    def test_three_segments_accumulate(self):
        generator = _generator(seed=9)
        generator.schedule_phases([WorkloadPhase(0.0, 5)])
        totals = []
        for _ in range(3):
            generator.run(60.0)
            totals.append(generator.completed_requests)
        assert totals[0] > 0
        assert totals[2] > totals[1] > totals[0]

    def test_ramp_down_is_not_resurrected_by_next_segment(self):
        # A browser removed by set_active_browsers must stay removed even if
        # it had a parked request: deliberate stop() drops the parked state.
        generator = _generator()
        generator.schedule_phases([WorkloadPhase(0.0, 10)])
        generator.run(60.0)
        parked = [b for b in generator._browsers if b.parked_time is not None]
        assert len(parked) == 10
        generator.set_active_browsers(4)  # ramp down between segments
        live = [
            b for b in generator._browsers if b.active or b.parked_time is not None
        ]
        assert len(live) == 4
        generator.run(60.0)
        # Only the remaining population was revived; no extra browsers built.
        assert len(generator._browsers) == 10
        revived = {b.browser_id for b in generator._browsers if b.requests_issued > 0}
        assert len(revived) == 10  # all issued in segment 1...
        active_like = [
            b for b in generator._browsers if b.active or b.parked_time is not None
        ]
        assert len(active_like) == 4  # ...but only 4 carried into segment 2

    def test_growing_between_segments_counts_parked_browsers(self):
        generator = _generator()
        generator.schedule_phases([WorkloadPhase(0.0, 5)])
        generator.run(60.0)
        generator.set_active_browsers(8)  # 5 parked survive, only 3 added
        assert len(generator._browsers) == 8

    def test_trace_keeps_request_event_names(self):
        engine = SimulationEngine(trace=True)
        deployment = build_deployment(
            scale=PopulationScale.tiny(), seed=3, clock=engine.clock
        )
        generator = WorkloadGenerator(engine, deployment, think_time_mean=5.0)
        generator.schedule_phases([WorkloadPhase(0.0, 3)])
        generator.run(60.0)
        request_events = [name for name in engine.trace if name.endswith(".request")]
        assert len(request_events) >= generator.completed_requests - 3

    def test_segment_shorter_than_parked_delay_keeps_browsers_parked(self):
        # A micro-segment that cannot reach any parked request must keep the
        # population parked (not schedule-and-lose it).
        generator = _generator()
        generator.schedule_phases([WorkloadPhase(0.0, 5)])
        generator.run(60.0)
        first = generator.completed_requests
        generator.run(0.001)  # too short for any parked request to fire
        parked = [b for b in generator._browsers if b.parked_time is not None]
        assert len(parked) == 5
        generator.run(120.0)
        assert generator.completed_requests > first  # population survived

    def test_single_segment_unchanged_without_second_run(self):
        generator = _generator()
        generator.schedule_phases([WorkloadPhase(0.0, 10)])
        generator.run(120.0)
        assert generator.active_browsers == 0
        assert generator.error_count == 0


class TestWindowedRateOutOfOrder:
    def test_in_order_marks_match_seed_behaviour(self):
        rate = WindowedRate(window=10.0)
        for t in [1.0, 2.0, 3.0, 4.0, 5.0]:
            rate.mark(t)
        series = rate.finish(20.0)
        assert len(series) == 2
        assert series.values[0] == pytest.approx(0.5)
        assert series.values[1] == pytest.approx(0.0)
        assert list(series.times) == [5.0, 15.0]

    def test_out_of_order_marks_land_in_their_own_window(self):
        rate = WindowedRate(window=10.0)
        rate.mark(25.0)  # completes late in window 2
        rate.mark(5.0)   # completes earlier — seed put this in window 2!
        rate.mark(15.0)
        series = rate.finish(30.0)
        assert list(series.values) == pytest.approx([0.1, 0.1, 0.1])

    def test_boundary_mark_goes_to_later_window(self):
        rate = WindowedRate(window=10.0)
        rate.mark(10.0)
        series = rate.finish(20.0)
        assert list(series.values) == pytest.approx([0.0, 0.1])

    def test_stragglers_after_finish_are_clamped_forward(self):
        rate = WindowedRate(window=10.0)
        rate.mark(5.0)
        rate.finish(10.0)  # window 0 emitted
        rate.mark(7.0)     # straggler for an already-emitted window
        series = rate.finish(20.0)
        # The straggler is clamped into the oldest open window, not lost.
        assert list(series.values) == pytest.approx([0.1, 0.1])

    def test_pending_marks_counter(self):
        rate = WindowedRate(window=10.0)
        rate.mark(5.0, count=3)
        assert rate.pending_marks == 3
        rate.finish(10.0)
        assert rate.pending_marks == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            WindowedRate(window=10.0).mark(1.0, count=-1)
