"""Tests for the deployment controller, canary analyzer and the fig_canary
scenario (catch + rollback vs. blind rollout)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments.deploy import (
    BASELINE_VERSION,
    CanaryAnalyzer,
    ComponentVersion,
    DeploymentPlan,
)
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.experiments.scenarios import (
    CANARY_MODES,
    COMPONENT_A,
    fig_canary,
)
from repro.faults.injector import FaultSpec
from repro.tpcw.population import PopulationScale


class TestPlanValidation:
    def test_component_version_rejects_mismatched_fault_specs(self):
        with pytest.raises(ValueError, match="fault spec targets"):
            ComponentVersion(
                component="home",
                version="v2",
                faults=(FaultSpec(component="search", kind="memory-leak", params={}),),
            )

    def test_plan_rejects_bad_parameters(self):
        version = ComponentVersion(component="home", version="v2")
        with pytest.raises(ValueError, match="start_time"):
            DeploymentPlan(version=version, start_time=-1.0)
        with pytest.raises(ValueError, match="deploy_downtime_seconds"):
            DeploymentPlan(version=version, start_time=0.0, deploy_downtime_seconds=0.0)
        with pytest.raises(ValueError, match="bake_seconds"):
            DeploymentPlan(version=version, start_time=0.0, bake_seconds=0.0)

    def test_analyzer_rejects_trivial_ratio_threshold(self):
        with pytest.raises(ValueError, match="growth_ratio_threshold"):
            CanaryAnalyzer(growth_ratio_threshold=1.0)

    def test_canary_rollout_requires_monitoring(self):
        version = ComponentVersion(component="home", version="v2")
        with pytest.raises(ValueError, match="monitored"):
            run_experiment(
                ExperimentConfig(
                    name="unmonitored-canary",
                    seed=1,
                    scale=PopulationScale.tiny(),
                    constant_ebs=10,
                    duration=30.0,
                    monitored=False,
                    shards=2,
                    rollout=DeploymentPlan(version=version, start_time=5.0, bake_seconds=10.0),
                )
            )


class TestHealthyPromotion:
    def test_clean_build_is_promoted_to_every_shard(self):
        """A canary with no fault load bakes clean and rolls fleet-wide."""
        version = ComponentVersion(component="home", version="v2-clean")
        config = ExperimentConfig(
            name="promote-test",
            seed=9,
            scale=PopulationScale.tiny(),
            constant_ebs=30,
            duration=120.0,
            mix_name="shopping",
            monitored=True,
            shards=3,
            snapshot_interval=5.0,
            rollout=DeploymentPlan(
                version=version,
                start_time=20.0,
                stagger_seconds=10.0,
                deploy_downtime_seconds=1.0,
                canary=True,
                canary_shard=2,
                bake_seconds=30.0,
            ),
        )
        result = run_experiment(config)
        rollout = result.rollout
        assert rollout is not None
        assert rollout.verdict is not None and rollout.verdict.promote
        assert not rollout.rolled_back
        assert set(rollout.versions.values()) == {"v2-clean"}
        actions = [event["action"] for event in rollout.events]
        assert actions.count("deploy") == 3
        assert "promote" in actions and "rollback" not in actions


class TestFigCanary:
    @pytest.fixture(scope="class")
    def scenario(self, tmp_path_factory):
        stream = tmp_path_factory.mktemp("obs") / "stream.jsonl"
        result = fig_canary(
            duration_scale=0.05,
            seed=42,
            scale=PopulationScale.tiny(),
            stream_metrics=str(stream),
        )
        return result, stream

    def test_modes_and_validation(self, scenario):
        result, _ = scenario
        assert tuple(result.results) == CANARY_MODES
        with pytest.raises(ValueError, match="duration_scale"):
            fig_canary(duration_scale=0.0)
        with pytest.raises(ValueError, match="shards"):
            fig_canary(shards=2)

    def test_canary_is_caught_and_rolled_back(self, scenario):
        result, _ = scenario
        verdict = result.verdict()
        assert verdict is not None
        assert not verdict.promote
        assert verdict.trending_up
        assert verdict.growth_ratio > 2.0
        rollout = result.results["canary"].rollout
        assert rollout.rolled_back
        # Only the canary shard ever saw the leaky build, and it is back on
        # baseline by the end of the run.
        assert set(rollout.versions.values()) == {BASELINE_VERSION}
        touched = {event["shard"] for event in rollout.events}
        assert touched == {result.shards - 1}
        assert result.leaky_shards("canary") == 0

    def test_blind_rollout_ships_the_leak_fleet_wide(self, scenario):
        result, _ = scenario
        rollout = result.results["blind"].rollout
        assert not rollout.rolled_back
        assert result.leaky_shards("blind") == result.shards
        assert sum(1 for e in rollout.events if e["action"] == "deploy") == result.shards

    def test_canary_strictly_beats_blind_on_sla_cost(self, scenario):
        result, _ = scenario
        assert result.canary_wins()
        assert result.sla_cost("canary") < result.sla_cost("blind")
        # The caught canary pays two outage windows on one shard; the blind
        # rollout pays one on every shard.
        assert result.deploy_downtime("canary") < result.deploy_downtime("blind")

    def test_scenario_is_deterministic_per_seed(self, scenario):
        result, _ = scenario
        rerun = fig_canary(duration_scale=0.05, seed=42, scale=PopulationScale.tiny())
        assert rerun.summary_rows() == result.summary_rows()
        first = result.results["canary"].metrics.snapshot_json(at=result.duration)
        second = rerun.results["canary"].metrics.snapshot_json(at=rerun.duration)
        assert first == second

    def test_stream_final_record_matches_post_hoc_ledger(self, scenario):
        result, stream = scenario
        records = [json.loads(line) for line in stream.read_text().splitlines() if line]
        assert len(records) > 1
        assert records[-1]["time_s"] == pytest.approx(result.duration)
        assert records[-1]["counters"] == dict(result.results["canary"].accounting)
        deploys = records[-1]["deploys"]
        assert [event["action"] for event in deploys] == ["deploy", "rollback"]


class TestCanaryEdgeCases:
    """Regression tests for the three canary edge-case fixes."""

    def _config(self, **rollout_kwargs):
        version = rollout_kwargs.pop(
            "version", ComponentVersion(component="home", version="v2-clean")
        )
        defaults = dict(
            version=version,
            start_time=20.0,
            canary=True,
            canary_shard=2,
            deploy_downtime_seconds=1.0,
        )
        defaults.update(rollout_kwargs)
        return ExperimentConfig(
            name="edge-case",
            seed=7,
            scale=PopulationScale.tiny(),
            constant_ebs=30,
            duration=60.0,
            monitored=True,
            shards=3,
            snapshot_interval=5.0,
            rollout=DeploymentPlan(**defaults),
        )

    def test_negative_canary_shard_is_rejected_at_plan_construction(self):
        """A negative index used to wrap silently onto the last shard."""
        version = ComponentVersion(component="home", version="v2")
        with pytest.raises(ValueError, match="canary_shard must be >= 0"):
            DeploymentPlan(version=version, start_time=0.0, canary=True, canary_shard=-1)

    def test_out_of_range_canary_shard_names_the_shard_count(self):
        with pytest.raises(ValueError, match=r"canary shard 5 outside the cluster \(shards: 3\)"):
            run_experiment(self._config(canary_shard=5))

    def test_bake_past_run_end_rules_at_end_of_run_as_truncated(self):
        """A bake window past the run end used to leave the canary unruled."""
        result = run_experiment(self._config(bake_seconds=500.0))
        rollout = result.rollout
        assert rollout.verdict is not None
        assert rollout.verdict.truncated_bake
        # A clean build still promotes on the shortened evidence.
        assert rollout.verdict.promote
        assert not rollout.rolled_back

    def test_starved_bake_window_refuses_to_rule_and_rolls_back(self):
        """Fewer than two samples used to promote on no evidence at all."""
        config = self._config(bake_seconds=4.0)
        config.snapshot_interval = 15.0
        result = run_experiment(config)
        rollout = result.rollout
        verdict = rollout.verdict
        assert verdict is not None
        assert verdict.insufficient_data
        assert not verdict.promote
        assert "refusing to rule" in verdict.reason
        assert rollout.rolled_back
        assert set(rollout.versions.values()) == {BASELINE_VERSION}


class TestCanaryCli:
    def test_canary_command_smoke(self, tmp_path, capsys):
        stream = tmp_path / "stream.jsonl"
        exit_code = main(
            [
                "canary",
                "--tiny",
                "--duration-scale", "0.02",
                "--seed", "42",
                "--stream-metrics", str(stream),
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "canary+rollback SLA cost < blind rollout" in out
        assert "True" in out
        assert "final counters match the post-hoc ledger" in out
        assert stream.exists()
