"""Tests for the JMX substrate: object names, MBeans, server, notifications, connector."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jmx.connector import JmxConnector, JmxConnectorError
from repro.jmx.mbean import MBean, MBeanAttributeError, MBeanOperationError, attribute, operation
from repro.jmx.mbean_server import (
    InstanceAlreadyExistsError,
    InstanceNotFoundError,
    MBeanServer,
    REGISTRATION_NOTIFICATION,
)
from repro.jmx.notifications import NotificationBroadcaster, type_filter
from repro.jmx.object_name import MalformedObjectNameError, ObjectName


class _SampleBean(MBean, NotificationBroadcaster):
    """Small MBean used throughout these tests."""

    description = "sample"

    def __init__(self) -> None:
        NotificationBroadcaster.__init__(self)
        self._level = 3
        self.reset_calls = 0

    @attribute
    def Level(self) -> int:
        return self._level

    @attribute(writable=True)
    def Threshold(self) -> int:
        return getattr(self, "_threshold", 10)

    def set_Threshold(self, value: int) -> None:
        self._threshold = value

    @operation
    def reset(self) -> str:
        self.reset_calls += 1
        return "ok"

    @operation
    def add(self, a: int, b: int) -> int:
        return a + b


class TestObjectName:
    def test_parse_canonical_form(self):
        name = ObjectName("repro.agents:type=memory,name=a1")
        assert name.domain == "repro.agents"
        assert name.get("type") == "memory"
        assert name.canonical == "repro.agents:name=a1,type=memory"

    def test_constructor_with_properties(self):
        name = ObjectName.of("d", type="x", id="1")
        assert name == ObjectName("d:type=x,id=1")
        assert hash(name) == hash(ObjectName("d:id=1,type=x"))

    def test_malformed_names(self):
        for bad in ["nodomain", "d:", "d:novalue", "d:k=", "d:k=v,k=w", ":k=v", "d:*,k=v"]:
            with pytest.raises(MalformedObjectNameError):
                ObjectName(bad)

    def test_pattern_matching_property_list_wildcard(self):
        pattern = ObjectName("repro.agents:type=memory,*")
        assert pattern.is_pattern
        assert pattern.matches(ObjectName("repro.agents:type=memory,name=a1"))
        assert not pattern.matches(ObjectName("repro.agents:type=cpu,name=a1"))

    def test_pattern_matching_value_wildcards(self):
        pattern = ObjectName("repro.*:component=TPCW_*,*")
        assert pattern.matches(ObjectName("repro.aspects:component=TPCW_home,x=1"))
        assert not pattern.matches(ObjectName("other:component=TPCW_home"))

    def test_exact_name_requires_same_property_set(self):
        exact = ObjectName("d:a=1")
        assert not exact.matches(ObjectName("d:a=1,b=2"))
        assert exact.matches(ObjectName("d:a=1"))


class TestMBean:
    def test_attribute_read(self):
        bean = _SampleBean()
        assert bean.get_attribute("Level") == 3
        assert bean.get_attributes(["Level", "Threshold"]) == {"Level": 3, "Threshold": 10}

    def test_unknown_attribute(self):
        with pytest.raises(MBeanAttributeError):
            _SampleBean().get_attribute("Nope")

    def test_read_only_attribute_rejects_write(self):
        with pytest.raises(MBeanAttributeError):
            _SampleBean().set_attribute("Level", 5)

    def test_writable_attribute(self):
        bean = _SampleBean()
        bean.set_attribute("Threshold", 42)
        assert bean.get_attribute("Threshold") == 42

    def test_operation_invocation(self):
        bean = _SampleBean()
        assert bean.invoke("reset") == "ok"
        assert bean.invoke("add", 2, 3) == 5
        with pytest.raises(MBeanOperationError):
            bean.invoke("missing")

    def test_mbean_info_lists_surface(self):
        info = _SampleBean().mbean_info()
        assert "Level" in info.attribute_names()
        assert info.attributes["Threshold"]["writable"] is True
        assert set(info.operation_names()) >= {"reset", "add"}


class TestMBeanServer:
    def test_register_query_invoke(self):
        server = MBeanServer()
        bean = _SampleBean()
        server.register("d:type=sample,id=1", bean)
        assert server.mbean_count == 1
        assert server.get_attribute("d:type=sample,id=1", "Level") == 3
        server.invoke("d:type=sample,id=1", "reset")
        assert bean.reset_calls == 1

    def test_duplicate_registration_rejected(self):
        server = MBeanServer()
        server.register("d:a=1", _SampleBean())
        with pytest.raises(InstanceAlreadyExistsError):
            server.register("d:a=1", _SampleBean())

    def test_register_pattern_rejected(self):
        with pytest.raises(ValueError):
            MBeanServer().register("d:a=1,*", _SampleBean())

    def test_unregister(self):
        server = MBeanServer()
        server.register("d:a=1", _SampleBean())
        server.unregister("d:a=1")
        assert not server.is_registered("d:a=1")
        with pytest.raises(InstanceNotFoundError):
            server.get_mbean("d:a=1")

    def test_query_names_with_pattern(self):
        server = MBeanServer()
        server.register("repro.agents:type=memory", _SampleBean())
        server.register("repro.agents:type=cpu", _SampleBean())
        server.register("repro.core:type=manager", _SampleBean())
        names = server.query_names("repro.agents:*")
        assert [n.get("type") for n in names] == ["cpu", "memory"]
        assert len(server.query_names()) == 3

    def test_registration_notifications(self):
        server = MBeanServer()
        events = []
        server.add_notification_listener(
            lambda notification, handback: events.append(notification.type),
            type_filter(REGISTRATION_NOTIFICATION),
        )
        server.register("d:a=1", _SampleBean())
        server.unregister("d:a=1")
        assert events == [REGISTRATION_NOTIFICATION]

    def test_add_mbean_listener_routes_to_broadcaster(self):
        server = MBeanServer()
        bean = _SampleBean()
        server.register("d:a=1", bean)
        got = []
        server.add_mbean_listener("d:a=1", lambda notification, handback: got.append(handback), handback="hb")
        bean.send_notification("custom", source="d:a=1")
        assert got == ["hb"]


class TestNotifications:
    def test_filter_and_handback(self):
        broadcaster = NotificationBroadcaster()
        received = []
        broadcaster.add_notification_listener(
            lambda n, h: received.append((n.type, h)), type_filter("a"), handback=1
        )
        broadcaster.send_notification("a", source="s")
        broadcaster.send_notification("b", source="s")
        assert received == [("a", 1)]
        assert broadcaster.emitted_count == 2

    def test_sequence_numbers_increase(self):
        broadcaster = NotificationBroadcaster()
        first = broadcaster.send_notification("t", source="s")
        second = broadcaster.send_notification("t", source="s")
        assert second.sequence_number == first.sequence_number + 1

    def test_remove_listener(self):
        broadcaster = NotificationBroadcaster()
        listener = lambda n, h: None  # noqa: E731
        broadcaster.add_notification_listener(listener)
        assert broadcaster.remove_notification_listener(listener) == 1
        with pytest.raises(ValueError):
            broadcaster.remove_notification_listener(listener)


class TestConnector:
    def test_proxy_reads_and_invokes(self):
        server = MBeanServer()
        server.register("d:a=1", _SampleBean())
        connector = JmxConnector(server, call_latency=0.001)
        proxy = connector.proxy("d:a=1")
        assert proxy.get("Level") == 3
        assert proxy.call("add", 1, 2) == 3
        proxy.set("Threshold", 9)
        assert proxy.get("Threshold") == 9
        assert connector.call_count >= 4
        assert connector.total_latency == pytest.approx(connector.call_count * 0.001)

    def test_closed_connector_rejects_calls(self):
        server = MBeanServer()
        server.register("d:a=1", _SampleBean())
        connector = JmxConnector(server)
        connector.close()
        with pytest.raises(JmxConnectorError):
            connector.query_names()

    def test_proxy_for_missing_mbean(self):
        connector = JmxConnector(MBeanServer())
        with pytest.raises(JmxConnectorError):
            connector.proxy("d:a=1")

    def test_mbean_info_over_connector(self):
        server = MBeanServer()
        server.register("d:a=1", _SampleBean())
        info = JmxConnector(server).mbean_info("d:a=1")
        assert info["class_name"] == "_SampleBean"
        assert "Level" in info["attributes"]


# --------------------------------------------------------------------------- #
# Property-based tests
# --------------------------------------------------------------------------- #
_ident = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789_", min_size=1, max_size=10)


@settings(max_examples=60, deadline=None)
@given(domain=_ident, properties=st.dictionaries(_ident, _ident, min_size=1, max_size=4))
def test_property_object_name_roundtrip(domain, properties):
    """Canonical form parses back to an equal ObjectName."""
    name = ObjectName.of(domain, **properties)
    reparsed = ObjectName(name.canonical)
    assert reparsed == name
    assert reparsed.properties == name.properties


@settings(max_examples=60, deadline=None)
@given(domain=_ident, properties=st.dictionaries(_ident, _ident, min_size=1, max_size=4))
def test_property_pattern_with_property_wildcard_matches_self(domain, properties):
    """``domain:*`` matches every concrete name in that domain."""
    concrete = ObjectName.of(domain, **properties)
    pattern = ObjectName(f"{domain}:*")
    assert pattern.matches(concrete)
