"""Golden-snapshot tests for the report artifact renderers.

The Markdown/CSV artifacts must be byte-stable per (scenario, seed): floats
are fixed to 6 decimal places and default columns are the sorted union of
row keys, so regenerating an artifact from the same run produces the same
bytes.  The checked-in goldens under ``tests/golden/`` pin both the
formatting discipline and the scenarios' summary numbers at the CI smoke
scale; an intentional change regenerates them (see the module docstring of
each golden's generator below).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.reporting import (
    canary_report,
    canary_report_artifacts,
    fleet_report,
    fleet_report_artifacts,
    rows_to_csv,
    rows_to_markdown,
)
from repro.experiments.scenarios import fig_canary, fig_fleet
from repro.tpcw.population import PopulationScale

GOLDEN_DIR = Path(__file__).parent / "golden"


class TestArtifactFormatting:
    def test_floats_fixed_to_six_decimals(self):
        rows = [{"ratio": 1.0 / 3.0, "count": 2}]
        markdown = rows_to_markdown(rows)
        assert "0.333333" in markdown
        assert "0.3333333" not in markdown
        csv_text = rows_to_csv(rows)
        assert "0.333333" in csv_text

    def test_default_columns_are_sorted_union_of_keys(self):
        rows = [{"zeta": 1, "alpha": 2}, {"mid": 3}]
        markdown = rows_to_markdown(rows)
        assert markdown.splitlines()[0] == "| alpha | mid | zeta |"
        csv_text = rows_to_csv(rows)
        assert csv_text.splitlines()[0] == "alpha,mid,zeta"
        # Missing keys render as empty cells, not KeyErrors.
        assert csv_text.splitlines()[2] == ",3,"

    def test_explicit_columns_respected(self):
        rows = [{"b": 1.5, "a": 2}]
        assert rows_to_csv(rows, columns=["b", "a"]).splitlines()[0] == "b,a"
        assert rows_to_markdown(rows, columns=["b"]).splitlines()[0] == "| b |"

    def test_bools_render_as_python_literals(self):
        text = rows_to_csv([{"holds": True}])
        assert text.splitlines()[1] == "True"

    def test_empty_rows(self):
        assert rows_to_markdown([]) == "(no data)\n"
        assert rows_to_csv([]) == "\n"


class TestGoldenSnapshots:
    """Regenerate the smoke-scale artifacts and compare byte-for-byte.

    Goldens were generated with::

        fleet  = fig_fleet(duration_scale=0.02, seed=42, scale=tiny, shards=2)
        canary = fig_canary(duration_scale=0.02, seed=42, scale=tiny)
    """

    @pytest.fixture(scope="class")
    def fleet(self):
        return fig_fleet(
            duration_scale=0.02, seed=42, scale=PopulationScale.tiny(), shards=2
        )

    @pytest.fixture(scope="class")
    def canary(self):
        return fig_canary(duration_scale=0.02, seed=42, scale=PopulationScale.tiny())

    def test_fleet_artifacts_match_golden(self, fleet):
        artifacts = fleet_report_artifacts(fleet)
        assert artifacts["markdown"] == (GOLDEN_DIR / "fleet_summary.md").read_text()
        assert artifacts["csv"] == (GOLDEN_DIR / "fleet_summary.csv").read_text()

    def test_canary_artifacts_match_golden(self, canary):
        artifacts = canary_report_artifacts(canary)
        assert artifacts["markdown"] == (GOLDEN_DIR / "canary_summary.md").read_text()
        assert artifacts["csv"] == (GOLDEN_DIR / "canary_summary.csv").read_text()

    def test_fleet_report_renders_over_the_same_run(self, fleet):
        text = fleet_report(fleet)
        assert "Fleet rejuvenation at 2 shards" in text
        assert "rolling" in text and "holds" in text

    def test_canary_report_renders_over_the_same_run(self, canary):
        text = canary_report(canary)
        assert "Canary deployment at 3 shards" in text
        assert "canary analyzer verdict" in text
        assert "canary+rollback SLA cost < blind rollout" in text
