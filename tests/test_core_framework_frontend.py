"""Tests for the assembled monitoring framework and the External Front-end."""

from __future__ import annotations

import pytest

from repro.core.framework import FrameworkConfig, MonitoringFramework
from repro.core.manager_agent import MANAGER_OBJECT_NAME
from repro.faults.memory_leak import KB, MemoryLeakFault
from repro.tpcw.application import TpcwApplication
from repro.tpcw.workload import WorkloadGenerator, WorkloadPhase


class TestMonitoringFramework:
    def test_install_registers_everything(self, monitored_deployment):
        deployment, framework = monitored_deployment
        assert framework.is_installed
        # One AC proxy per component plus agents plus the manager.
        names = [str(name) for name in framework.mbean_server.query_names()]
        assert str(MANAGER_OBJECT_NAME) in names
        assert sum(1 for name in names if "AspectComponent" in name) == 14
        assert any("type=object-size" in name for name in names)
        assert any("type=heap" in name for name in names)
        # Every servlet's service method is woven.
        assert framework.weaver.woven_count == 14

    def test_double_install_rejected(self, monitored_deployment):
        _, framework = monitored_deployment
        with pytest.raises(RuntimeError):
            framework.install()

    def test_requests_generate_samples_and_overhead(self, monitored_deployment):
        deployment, framework = monitored_deployment
        app = TpcwApplication(deployment)
        outcome = app.visit("home")
        assert outcome.monitoring_overhead_seconds > 0
        assert framework.manager.map.sample_count == 1
        assert framework.aspect_components["home"].invocation_count == 1

    def test_disable_component_stops_its_overhead(self, monitored_deployment):
        deployment, framework = monitored_deployment
        app = TpcwApplication(deployment)
        framework.disable_component("home")
        outcome = app.visit("home")
        assert outcome.monitoring_overhead_seconds == 0.0
        assert framework.aspect_components["home"].invocation_count == 0
        framework.enable_component("home")
        assert app.visit("home").monitoring_overhead_seconds > 0

    def test_disable_all_and_enable_all(self, monitored_deployment):
        deployment, framework = monitored_deployment
        framework.disable_all()
        assert all(not ac.enabled for ac in framework.aspect_components.values())
        framework.enable_all()
        assert all(ac.enabled for ac in framework.aspect_components.values())

    def test_uninstall_restores_servlets(self, engine, tiny_deployment):
        framework = MonitoringFramework(tiny_deployment, engine=engine)
        framework.install()
        framework.uninstall()
        assert not framework.is_installed
        app = TpcwApplication(tiny_deployment)
        outcome = app.visit("home")
        assert outcome.monitoring_overhead_seconds == 0.0
        # uninstall is idempotent
        framework.uninstall()

    def test_snapshot_records_component_series(self, monitored_deployment):
        deployment, framework = monitored_deployment
        sizes = framework.snapshot(timestamp=1.0)
        assert set(sizes) == set(deployment.interaction_names())
        assert len(framework.component_series("home")) == 1

    def test_schedule_snapshots_requires_engine(self, tiny_deployment):
        framework = MonitoringFramework(tiny_deployment)
        framework.install()
        with pytest.raises(RuntimeError):
            framework.schedule_snapshots(duration=100.0)
        framework.uninstall()

    def test_extended_agents_installed_on_request(self, engine, tiny_deployment):
        framework = MonitoringFramework(
            tiny_deployment,
            engine=engine,
            config=FrameworkConfig(monitor_cpu=True, monitor_threads=True, monitor_connections=True),
        )
        framework.install()
        agent_types = {agent.agent_type for agent in framework.agents}
        assert {"cpu", "threads", "connections"} <= agent_types
        framework.uninstall()

    def test_leak_detection_end_to_end_with_workload(self, engine, monitored_deployment):
        deployment, framework = monitored_deployment
        deployment.servlet("home").attach_fault(
            MemoryLeakFault(leak_bytes=100 * KB, period_n=5, streams=deployment.streams)
        )
        generator = WorkloadGenerator(engine, deployment)
        generator.schedule_phases([WorkloadPhase(0.0, 15)])
        framework.schedule_snapshots(duration=240.0, interval=30.0)
        generator.run(240.0)

        report = framework.root_cause()
        assert report.top().component == "home"
        assert report.top().responsibility > 0.9
        growth = framework.manager.map.consumption("home")
        assert growth > 500 * KB
        # The map rows place home in the most suspicious quadrant.
        rows = {row["component"]: row for row in framework.resource_map_rows()}
        assert "most suspicious" in rows["home"]["quadrant"]


class TestFrontEnd:
    def test_status_and_reports(self, monitored_deployment):
        deployment, framework = monitored_deployment
        frontend = framework.frontend
        assert frontend is not None
        app = TpcwApplication(deployment)
        app.visit("home")
        framework.snapshot(timestamp=10.0)

        status = frontend.component_status()
        assert status["home"] is True
        assert len(frontend.list_agents()) >= 2

        status_report = frontend.status_report()
        assert "Monitoring framework status" in status_report
        assert "home" in status_report

        map_report = frontend.map_report()
        assert "Resource-component map" in map_report
        assert "quadrant" in map_report

        cause_report = frontend.root_cause_report()
        assert "Root cause ranking" in cause_report
        assert "responsibility" in cause_report

    def test_frontend_controls_components(self, monitored_deployment):
        deployment, framework = monitored_deployment
        frontend = framework.frontend
        assert frontend.deactivate("home") is True
        assert framework.aspect_components["home"].enabled is False
        assert frontend.activate("home") is True
        assert frontend.deactivate_all() == 14
        assert frontend.activate_all() == 14

    def test_frontend_snapshot_trigger(self, monitored_deployment):
        deployment, framework = monitored_deployment
        sizes = framework.frontend.take_snapshot(timestamp=5.0)
        assert "home" in sizes
