"""Tests for the baseline monitors and rejuvenation policies."""

from __future__ import annotations

import pytest

from repro.baselines.blackbox import BlackBoxMonitor
from repro.baselines.pinpoint import PinpointAnalyzer
from repro.baselines.rejuvenation import (
    ProactiveRejuvenationPolicy,
    TimeBasedRejuvenationPolicy,
)
from repro.db.engine import Database
from repro.db.jdbc import DataSource
from repro.db.table import Column, ColumnType
from repro.jvm.runtime import JvmRuntime
from repro.sim.metrics import TimeSeries


class TestBlackBoxMonitor:
    def _datasource(self):
        database = Database("x")
        database.create_table("t", [Column("id", ColumnType.INTEGER, primary_key=True)])
        return DataSource(database, pool_size=4)

    def test_detects_heap_trend_but_names_no_component(self):
        runtime = JvmRuntime(heap_bytes=100 * 1024 * 1024)
        monitor = BlackBoxMonitor(runtime, self._datasource())
        # Steadily leak rooted memory and sample.
        for step in range(20):
            runtime.allocate("Leak", 1024 * 1024, owner="whoever", root=True)
            monitor.sample(timestamp=float(step * 60))
        report = monitor.analyze()
        assert report.aging_detected
        assert "heap_used" in report.trending_metrics
        assert report.root_cause_component is None
        assert report.time_to_exhaustion_seconds is not None
        assert report.time_to_exhaustion_seconds > 0

    def test_no_trend_no_alarm(self):
        runtime = JvmRuntime()
        monitor = BlackBoxMonitor(runtime)
        for step in range(10):
            monitor.sample(timestamp=float(step))
        report = monitor.analyze()
        assert not report.aging_detected
        assert report.time_to_exhaustion_seconds is None

    def test_unknown_metric_rejected(self):
        monitor = BlackBoxMonitor(JvmRuntime())
        with pytest.raises(KeyError):
            monitor.trend_of("nope")

    def test_thread_trend_detection(self):
        runtime = JvmRuntime()
        monitor = BlackBoxMonitor(runtime)
        for step in range(15):
            runtime.threads.spawn(f"leak-{step}", owner="c")
            monitor.sample(timestamp=float(step * 30))
        report = monitor.analyze()
        assert "threads" in report.trending_metrics


class TestPinpointAnalyzer:
    def test_blind_to_failure_free_aging(self):
        analyzer = PinpointAnalyzer()
        for _ in range(100):
            analyzer.record_request(["home"], failed=False)
            analyzer.record_request(["product_detail"], failed=False)
        report = analyzer.analyze()
        assert report.failed_requests == 0
        assert report.top() is None

    def test_correlates_failures_with_component(self):
        analyzer = PinpointAnalyzer()
        for index in range(200):
            analyzer.record_request(["home"], failed=False)
            analyzer.record_request(["buy_confirm"], failed=index % 2 == 0)
        report = analyzer.analyze()
        assert report.top() == "buy_confirm"
        assert report.scores["buy_confirm"] > report.scores["home"]

    def test_coupled_components_get_equal_blame(self):
        analyzer = PinpointAnalyzer()
        for index in range(100):
            analyzer.record_request(["cart", "checkout"], failed=index % 4 == 0)
        report = analyzer.analyze()
        # The limitation the paper calls out: components always used together
        # are indistinguishable to a failure-correlation ranker.
        assert report.scores["cart"] == pytest.approx(report.scores["checkout"])

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            PinpointAnalyzer().record_request([], failed=True)


class TestRejuvenationPolicies:
    def _leaking_heap_series(self, slope_bytes_per_second: float, duration: float) -> TimeSeries:
        series = TimeSeries("heap")
        t = 0.0
        while t <= duration:
            series.record(t, 100e6 + slope_bytes_per_second * t)
            t += 60.0
        return series

    def test_time_based_policy_counts_periodic_restarts(self):
        policy = TimeBasedRejuvenationPolicy(interval=3600.0, restart_downtime=120.0)
        series = self._leaking_heap_series(10_000.0, 4 * 3600.0)
        outcome = policy.evaluate(series, window_seconds=4 * 3600.0, heap_capacity=1e9)
        assert outcome.actions == 4
        assert outcome.downtime_seconds == 480.0

    def test_proactive_policy_cheaper_when_leak_is_slow(self):
        slow_leak = self._leaking_heap_series(1_000.0, 4 * 3600.0)
        time_based = TimeBasedRejuvenationPolicy(interval=3600.0).evaluate(
            slow_leak, 4 * 3600.0, heap_capacity=1e9
        )
        proactive = ProactiveRejuvenationPolicy().evaluate(slow_leak, 4 * 3600.0, heap_capacity=1e9)
        assert proactive.downtime_seconds < time_based.downtime_seconds

    def test_proactive_policy_reacts_to_imminent_exhaustion(self):
        fast_leak = self._leaking_heap_series(400_000.0, 1800.0)
        outcome = ProactiveRejuvenationPolicy(horizon=3600.0).evaluate(
            fast_leak, 1800.0, heap_capacity=0.9e9
        )
        assert outcome.actions >= 1

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            TimeBasedRejuvenationPolicy(interval=0)
        with pytest.raises(ValueError):
            ProactiveRejuvenationPolicy(horizon=0)
