"""Tests for the baseline monitors and rejuvenation policies."""

from __future__ import annotations

import pytest

from repro.baselines.blackbox import BlackBoxMonitor
from repro.baselines.pinpoint import PinpointAnalyzer
from repro.baselines.rejuvenation import (
    FULL_RESTART,
    MICRO_REBOOT,
    NoActionPolicy,
    PolicyObservation,
    ProactiveRejuvenationPolicy,
    RejuvenationAction,
    TimeBasedRejuvenationPolicy,
    exposure_seconds,
)
from repro.db.engine import Database
from repro.db.jdbc import DataSource
from repro.db.table import Column, ColumnType
from repro.jvm.runtime import JvmRuntime
from repro.sim.metrics import TimeSeries


class TestBlackBoxMonitor:
    def _datasource(self):
        database = Database("x")
        database.create_table("t", [Column("id", ColumnType.INTEGER, primary_key=True)])
        return DataSource(database, pool_size=4)

    def test_detects_heap_trend_but_names_no_component(self):
        runtime = JvmRuntime(heap_bytes=100 * 1024 * 1024)
        monitor = BlackBoxMonitor(runtime, self._datasource())
        # Steadily leak rooted memory and sample.
        for step in range(20):
            runtime.allocate("Leak", 1024 * 1024, owner="whoever", root=True)
            monitor.sample(timestamp=float(step * 60))
        report = monitor.analyze()
        assert report.aging_detected
        assert "heap_used" in report.trending_metrics
        assert report.root_cause_component is None
        assert report.time_to_exhaustion_seconds is not None
        assert report.time_to_exhaustion_seconds > 0

    def test_no_trend_no_alarm(self):
        runtime = JvmRuntime()
        monitor = BlackBoxMonitor(runtime)
        for step in range(10):
            monitor.sample(timestamp=float(step))
        report = monitor.analyze()
        assert not report.aging_detected
        assert report.time_to_exhaustion_seconds is None

    def test_unknown_metric_rejected(self):
        monitor = BlackBoxMonitor(JvmRuntime())
        with pytest.raises(KeyError):
            monitor.trend_of("nope")

    def test_thread_trend_detection(self):
        runtime = JvmRuntime()
        monitor = BlackBoxMonitor(runtime)
        for step in range(15):
            runtime.threads.spawn(f"leak-{step}", owner="c")
            monitor.sample(timestamp=float(step * 30))
        report = monitor.analyze()
        assert "threads" in report.trending_metrics


class TestPinpointAnalyzer:
    def test_blind_to_failure_free_aging(self):
        analyzer = PinpointAnalyzer()
        for _ in range(100):
            analyzer.record_request(["home"], failed=False)
            analyzer.record_request(["product_detail"], failed=False)
        report = analyzer.analyze()
        assert report.failed_requests == 0
        assert report.top() is None

    def test_correlates_failures_with_component(self):
        analyzer = PinpointAnalyzer()
        for index in range(200):
            analyzer.record_request(["home"], failed=False)
            analyzer.record_request(["buy_confirm"], failed=index % 2 == 0)
        report = analyzer.analyze()
        assert report.top() == "buy_confirm"
        assert report.scores["buy_confirm"] > report.scores["home"]

    def test_coupled_components_get_equal_blame(self):
        analyzer = PinpointAnalyzer()
        for index in range(100):
            analyzer.record_request(["cart", "checkout"], failed=index % 4 == 0)
        report = analyzer.analyze()
        # The limitation the paper calls out: components always used together
        # are indistinguishable to a failure-correlation ranker.
        assert report.scores["cart"] == pytest.approx(report.scores["checkout"])

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            PinpointAnalyzer().record_request([], failed=True)


class TestRejuvenationPolicies:
    def _leaking_heap_series(self, slope_bytes_per_second: float, duration: float) -> TimeSeries:
        series = TimeSeries("heap")
        t = 0.0
        while t <= duration:
            series.record(t, 100e6 + slope_bytes_per_second * t)
            t += 60.0
        return series

    def test_time_based_policy_counts_periodic_restarts(self):
        policy = TimeBasedRejuvenationPolicy(interval=3600.0, restart_downtime=120.0)
        series = self._leaking_heap_series(10_000.0, 4 * 3600.0)
        outcome = policy.evaluate(series, window_seconds=4 * 3600.0, heap_capacity=1e9)
        assert outcome.actions == 4
        assert outcome.downtime_seconds == 480.0

    def test_proactive_policy_cheaper_when_leak_is_slow(self):
        slow_leak = self._leaking_heap_series(1_000.0, 4 * 3600.0)
        time_based = TimeBasedRejuvenationPolicy(interval=3600.0).evaluate(
            slow_leak, 4 * 3600.0, heap_capacity=1e9
        )
        proactive = ProactiveRejuvenationPolicy().evaluate(slow_leak, 4 * 3600.0, heap_capacity=1e9)
        assert proactive.downtime_seconds < time_based.downtime_seconds

    def test_proactive_policy_reacts_to_imminent_exhaustion(self):
        fast_leak = self._leaking_heap_series(400_000.0, 1800.0)
        outcome = ProactiveRejuvenationPolicy(horizon=3600.0).evaluate(
            fast_leak, 1800.0, heap_capacity=0.9e9
        )
        assert outcome.actions >= 1

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            TimeBasedRejuvenationPolicy(interval=0)
        with pytest.raises(ValueError):
            ProactiveRejuvenationPolicy(horizon=0)

    def test_exposure_counts_final_sample_above_threshold(self):
        # Regression: the step integration used to iterate range(len - 1),
        # so a run that *ends* in the danger zone reported zero exposure.
        series = TimeSeries("heap")
        for t in (0.0, 60.0, 120.0):
            series.record(t, 0.95e9)
        # Median-spacing fallback: two 60 s steps plus one 60 s final credit.
        assert exposure_seconds(series, 1e9) == pytest.approx(180.0)
        # Observation-window extension: the final sample covers up to the end.
        assert exposure_seconds(series, 1e9, window_end=200.0) == pytest.approx(200.0)
        # ... but never past the stated window: a window ending exactly at
        # (or before) the final sample credits it nothing extra.
        assert exposure_seconds(series, 1e9, window_end=120.0) == pytest.approx(120.0)
        assert exposure_seconds(series, 1e9, window_end=90.0) == pytest.approx(120.0)

    def test_exposure_single_sample_needs_window_end(self):
        series = TimeSeries("heap")
        series.record(10.0, 0.99e9)
        assert exposure_seconds(series, 1e9) == 0.0
        assert exposure_seconds(series, 1e9, window_end=70.0) == pytest.approx(60.0)

    def test_exposure_below_threshold_unaffected(self):
        series = self._leaking_heap_series(10_000.0, 4 * 3600.0)
        assert exposure_seconds(series, 1e9) == 0.0

    def test_exhausted_heap_recycles_at_least_as_often_as_nearly_exhausted(self):
        # Regression: when the heap is already at/above capacity the
        # predicted time-to-exhaustion is 0, and the periodic-recycling term
        # used to be skipped entirely, reporting one action for an
        # arbitrarily long window.
        window = 7200.0
        capacity = 1e9

        def series(start: float, end: float) -> TimeSeries:
            out = TimeSeries("heap")
            for step in range(13):
                t = step * window / 12.0
                out.record(t, start + (end - start) * step / 12.0)
            return out

        policy = ProactiveRejuvenationPolicy(horizon=1800.0)
        nearly = policy.evaluate(series(0.80e9, 0.999e9), window, capacity)
        exhausted = policy.evaluate(series(0.90e9, 1.05e9), window, capacity)
        assert nearly.actions > 1
        assert exhausted.actions >= nearly.actions


class TestRejuvenationPolicyDecide:
    """Live-mode decisions consumed by the RejuvenationController."""

    def _observation(self, series: TimeSeries, now: float, **kwargs) -> PolicyObservation:
        return PolicyObservation(
            now=now, heap_series=series, heap_capacity=1e9, **kwargs
        )

    def _rising_series(self, slope: float, until: float) -> TimeSeries:
        series = TimeSeries("heap")
        t = 0.0
        while t <= until:
            series.record(t, 0.5e9 + slope * t)
            t += 60.0
        return series

    def test_no_action_policy_never_acts(self):
        series = self._rising_series(1e6, 1800.0)
        assert NoActionPolicy().decide(self._observation(series, 1800.0)) is None

    def test_time_based_waits_for_interval(self):
        policy = TimeBasedRejuvenationPolicy(interval=600.0, restart_downtime=30.0)
        series = TimeSeries("heap")
        assert policy.decide(self._observation(series, 300.0)) is None
        action = policy.decide(self._observation(series, 600.0))
        assert action is not None
        assert action.kind == FULL_RESTART
        assert action.downtime_seconds == 30.0
        # After an executed action, the clock restarts from the action's end.
        assert policy.decide(self._observation(series, 900.0, last_action_end=630.0)) is None
        assert policy.decide(self._observation(series, 1230.0, last_action_end=630.0)) is not None

    def test_proactive_targets_the_suspect(self):
        policy = ProactiveRejuvenationPolicy(horizon=3600.0, microreboot_downtime=2.0)
        series = self._rising_series(400_000.0, 900.0)
        action = policy.decide(
            self._observation(series, 900.0, suspect_component="product_detail")
        )
        assert action is not None
        assert action.kind == MICRO_REBOOT
        assert action.component == "product_detail"
        assert action.downtime_seconds == 2.0

    def test_proactive_without_suspect_does_nothing(self):
        policy = ProactiveRejuvenationPolicy(horizon=3600.0)
        series = self._rising_series(400_000.0, 900.0)
        assert policy.decide(self._observation(series, 900.0)) is None

    def test_proactive_flat_heap_does_nothing(self):
        policy = ProactiveRejuvenationPolicy(horizon=3600.0)
        series = TimeSeries("heap")
        for t in (0.0, 60.0, 120.0, 180.0):
            series.record(t, 0.5e9)
        assert policy.decide(
            self._observation(series, 180.0, suspect_component="home")
        ) is None

    def test_action_validation(self):
        with pytest.raises(ValueError):
            RejuvenationAction(kind="reboot-the-universe", downtime_seconds=1.0)
        with pytest.raises(ValueError):
            RejuvenationAction(kind=FULL_RESTART, downtime_seconds=-1.0)
