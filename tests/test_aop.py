"""Tests for the AOP substrate: pointcuts, aspects, weaver, registry."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aop.aspect import Aspect, after, after_returning, after_throwing, around, before
from repro.aop.joinpoint import Signature, declaring_type_of
from repro.aop.pointcut import PointcutSyntaxError, parse_pointcut
from repro.aop.registry import AspectRegistry
from repro.aop.weaver import Weaver, WeavingError


class _Servlet:
    """A stand-in application component with a Java-style class name."""

    java_class_name = "org.tpcw.servlet.TPCW_home_interaction"
    component_name = "home"

    def __init__(self) -> None:
        self.calls = 0

    def service(self, value):
        self.calls += 1
        if value == "boom":
            raise RuntimeError("servlet failure")
        return value * 2

    def helper(self):
        return "helper"


class _RecordingAspect(Aspect):
    """Aspect recording the advice sequence for assertions."""

    def __init__(self) -> None:
        super().__init__()
        self.events = []

    @before("execution(org.tpcw..*.service)")
    def record_before(self, join_point):
        self.events.append(("before", join_point.component))

    @after("execution(org.tpcw..*.service)")
    def record_after(self, join_point):
        self.events.append(("after", join_point.exception is not None))

    @after_returning("execution(org.tpcw..*.service)")
    def record_returning(self, join_point):
        self.events.append(("after_returning", join_point.result))

    @after_throwing("execution(org.tpcw..*.service)")
    def record_throwing(self, join_point):
        self.events.append(("after_throwing", type(join_point.exception).__name__))

    @around("execution(org.tpcw..*.service)")
    def record_around(self, join_point, proceed):
        self.events.append(("around-enter", None))
        try:
            return proceed()
        finally:
            self.events.append(("around-exit", None))


class TestPointcutLanguage:
    def test_execution_with_wildcards(self):
        pointcut = parse_pointcut("execution(org.tpcw.servlet.*.do*)")
        assert pointcut.matches_signature("org.tpcw.servlet.TPCW_home", "doGet")
        assert not pointcut.matches_signature("org.tpcw.servlet.TPCW_home", "service")
        assert not pointcut.matches_signature("org.other.TPCW_home", "doGet")

    def test_dotdot_crosses_packages(self):
        pointcut = parse_pointcut("execution(org.tpcw..*.service)")
        assert pointcut.matches_signature("org.tpcw.servlet.deep.Nested", "service")
        assert not pointcut.matches_signature("com.example.Foo", "service")

    def test_aspectj_style_return_type_and_args_tolerated(self):
        pointcut = parse_pointcut("execution(* org.tpcw..*.service(..))")
        assert pointcut.matches_signature("org.tpcw.servlet.TPCW_home", "service")

    def test_boolean_combinators_and_parentheses(self):
        pointcut = parse_pointcut(
            "(execution(a.b.*.x) || execution(a.c.*.y)) && !within(a.b.Bad)"
        )
        assert pointcut.matches_signature("a.b.Good", "x")
        assert not pointcut.matches_signature("a.b.Bad", "x")
        assert pointcut.matches_signature("a.c.Z", "y")
        assert not pointcut.matches_signature("a.c.Z", "x")

    def test_within_matches_any_method(self):
        pointcut = parse_pointcut("within(org.tpcw.servlet.*)")
        assert pointcut.matches_signature("org.tpcw.servlet.Foo", "anything")

    def test_operator_composition(self):
        a = parse_pointcut("execution(x.A.m)")
        b = parse_pointcut("execution(x.B.m)")
        assert (a | b).matches_signature("x.B", "m")
        assert not (a & b).matches_signature("x.B", "m")
        assert (~a).matches_signature("x.B", "m")

    def test_syntax_errors(self):
        for bad in ["", "execution()", "execution(nomethod)", "foo(a.b.c)",
                    "execution(a.b.c.m) &&", "execution(a.b!c.m)"]:
            with pytest.raises(PointcutSyntaxError):
                parse_pointcut(bad)

    def test_declaring_type_prefers_java_class_name(self):
        assert declaring_type_of(_Servlet()) == "org.tpcw.servlet.TPCW_home_interaction"

        class Plain:
            pass

        assert declaring_type_of(Plain()).endswith("Plain")

    def test_signature_full_name(self):
        assert Signature("a.B", "m").full_name == "a.B.m"


class TestWeaver:
    def test_advice_order_and_results(self):
        aspect = _RecordingAspect()
        weaver = Weaver()
        weaver.register_aspect(aspect)
        servlet = _Servlet()
        woven = weaver.weave_object(servlet)
        assert woven == ["service"]
        assert weaver.is_woven(servlet, "service")

        result = servlet.service(21)
        assert result == 42
        assert aspect.events == [
            ("around-enter", None),
            ("before", "home"),
            ("after_returning", 42),
            ("after", False),
            ("around-exit", None),
        ]

    def test_exception_path_runs_throwing_and_after(self):
        aspect = _RecordingAspect()
        weaver = Weaver()
        weaver.register_aspect(aspect)
        servlet = _Servlet()
        weaver.weave_object(servlet)
        with pytest.raises(RuntimeError):
            servlet.service("boom")
        kinds = [event[0] for event in aspect.events]
        assert kinds == ["around-enter", "before", "after_throwing", "after", "around-exit"]

    def test_unwoven_method_untouched(self):
        weaver = Weaver()
        weaver.register_aspect(_RecordingAspect())
        servlet = _Servlet()
        weaver.weave_object(servlet)
        assert servlet.helper() == "helper"
        assert not weaver.is_woven(servlet, "helper")

    def test_disabled_aspect_is_passthrough(self):
        aspect = _RecordingAspect()
        weaver = Weaver()
        weaver.register_aspect(aspect)
        servlet = _Servlet()
        weaver.weave_object(servlet)
        aspect.disable()
        assert servlet.service(2) == 4
        assert aspect.events == []
        aspect.enable()
        servlet.service(2)
        assert aspect.events != []

    def test_unweave_restores_original(self):
        weaver = Weaver()
        weaver.register_aspect(_RecordingAspect())
        servlet = _Servlet()
        weaver.weave_object(servlet)
        assert weaver.unweave_object(servlet) == ["service"]
        assert weaver.woven_count == 0
        assert servlet.service(3) == 6  # plain call, no advice errors

    def test_double_weave_rejected(self):
        weaver = Weaver()
        weaver.register_aspect(_RecordingAspect())
        servlet = _Servlet()
        weaver.weave_object(servlet)
        with pytest.raises(WeavingError):
            weaver.weave_object(servlet)

    def test_join_point_timestamp_from_clock(self):
        class FakeClock:
            now = 123.5

        captured = []

        class TimestampAspect(Aspect):
            @before("execution(org.tpcw..*.service)")
            def capture(self, join_point):
                captured.append(join_point.timestamp)

        weaver = Weaver(clock=FakeClock())
        weaver.register_aspect(TimestampAspect())
        servlet = _Servlet()
        weaver.weave_object(servlet)
        servlet.service(1)
        assert captured == [123.5]

    def test_register_duplicate_aspect_rejected(self):
        weaver = Weaver()
        aspect = _RecordingAspect()
        weaver.register_aspect(aspect)
        with pytest.raises(WeavingError):
            weaver.register_aspect(aspect)
        weaver.unregister_aspect(aspect)
        with pytest.raises(WeavingError):
            weaver.unregister_aspect(aspect)

    def test_woven_signatures_listing(self):
        weaver = Weaver()
        weaver.register_aspect(_RecordingAspect())
        servlet = _Servlet()
        weaver.weave_object(servlet)
        assert weaver.woven_signatures() == [
            "org.tpcw.servlet.TPCW_home_interaction.service"
        ]


class TestAspectRegistry:
    def test_add_get_remove(self):
        registry = AspectRegistry()
        aspect = _RecordingAspect()
        name = registry.add(aspect)
        assert name in registry
        assert registry.get(name) is aspect
        registry.remove(name)
        assert len(registry) == 0
        with pytest.raises(KeyError):
            registry.get(name)

    def test_duplicate_name_rejected(self):
        registry = AspectRegistry()
        registry.add(_RecordingAspect(), name="x")
        with pytest.raises(KeyError):
            registry.add(_RecordingAspect(), name="x")

    def test_bulk_enable_disable(self):
        registry = AspectRegistry()
        aspects = [_RecordingAspect() for _ in range(3)]
        for index, aspect in enumerate(aspects):
            registry.add(aspect, name=f"a{index}")
        registry.disable_all()
        assert registry.enabled_names() == []
        registry.enable("a1")
        assert registry.enabled_names() == ["a1"]
        registry.enable_all()
        assert registry.status() == {"a0": True, "a1": True, "a2": True}


# --------------------------------------------------------------------------- #
# Property-based tests
# --------------------------------------------------------------------------- #
_segment = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=8)


@settings(max_examples=60, deadline=None)
@given(package=st.lists(_segment, min_size=1, max_size=4), method=_segment)
def test_property_exact_execution_pointcut_matches_only_itself(package, method):
    """A pointcut with no wildcards matches exactly its own signature."""
    declaring_type = ".".join(package + ["Klass"])
    pointcut = parse_pointcut(f"execution({declaring_type}.{method})")
    assert pointcut.matches_signature(declaring_type, method)
    assert not pointcut.matches_signature(declaring_type + "x", method)
    assert not pointcut.matches_signature(declaring_type, method + "x")


@settings(max_examples=60, deadline=None)
@given(package=st.lists(_segment, min_size=1, max_size=4), method=_segment)
def test_property_star_method_pattern_matches_any_method(package, method):
    """``Type.*`` matches every method of that type."""
    declaring_type = ".".join(package + ["Klass"])
    pointcut = parse_pointcut(f"execution({declaring_type}.*)")
    assert pointcut.matches_signature(declaring_type, method)
