"""Unit tests for the SLA / adaptive-rejuvenation subsystem (ISSUE 3).

Covers the three ``repro.slo`` pieces in isolation:

* predictors — time-to-exhaustion math on synthetic known-slope series, the
  prediction/settlement error tracking (bias, MAE, calibration), the stale-
  regime discard and the warm-up trim;
* cost model — strict monotonicity in every currency, error-budget burn,
  validation;
* adaptive policy — decide protocol, horizon widening under optimistic
  predictions, shrinking under calibrated ones, clamp bounds, per-resource
  isolation.
"""

from __future__ import annotations

import pytest

from repro.baselines.rejuvenation import (
    MICRO_REBOOT,
    PolicyObservation,
    RejuvenationAction,
)
from repro.sim.metrics import TimeSeries
from repro.slo.adaptive_policy import AdaptiveRejuvenationPolicy
from repro.slo.cost_model import SlaCostModel, SlaObservation
from repro.slo.predictors import (
    EwmaSlopePredictor,
    SlidingWindowLinearPredictor,
    TheilSenPredictor,
)


def make_series(times, values, name="test"):
    series = TimeSeries(name)
    for t, v in zip(times, values):
        series.record(float(t), float(v))
    return series


def linear_series(slope, intercept=0.0, n=20, dt=1.0):
    times = [i * dt for i in range(n)]
    return make_series(times, [intercept + slope * t for t in times])


# --------------------------------------------------------------------------- #
# Predictors
# --------------------------------------------------------------------------- #
class TestPredictorEstimation:
    @pytest.mark.parametrize(
        "predictor_class",
        [SlidingWindowLinearPredictor, TheilSenPredictor, EwmaSlopePredictor],
    )
    def test_exact_on_known_slope(self, predictor_class):
        # 2 units/second from 0: capacity 100 is exhausted at t=50.
        series = linear_series(slope=2.0, n=20)
        predictor = predictor_class()
        tte = predictor.time_to_exhaustion(series, capacity=100.0, now=19.0)
        assert tte == pytest.approx(50.0 - 19.0, rel=1e-6)

    @pytest.mark.parametrize(
        "predictor_class",
        [SlidingWindowLinearPredictor, TheilSenPredictor, EwmaSlopePredictor],
    )
    def test_no_prediction_without_upward_trend(self, predictor_class):
        predictor = predictor_class()
        flat = make_series([0, 1, 2, 3], [5, 5, 5, 5])
        shrinking = make_series([0, 1, 2, 3], [9, 8, 7, 6])
        assert predictor.time_to_exhaustion(flat, 100.0, 3.0) is None
        assert predictor.time_to_exhaustion(shrinking, 100.0, 3.0) is None

    def test_too_few_samples(self):
        predictor = TheilSenPredictor(min_samples=5)
        series = linear_series(slope=1.0, n=4)
        assert predictor.time_to_exhaustion(series, 100.0, 3.0) is None

    def test_exhausted_resource_predicts_zero(self):
        series = linear_series(slope=2.0, n=20)  # last value 38
        predictor = TheilSenPredictor()
        assert predictor.time_to_exhaustion(series, capacity=30.0, now=19.0) == 0.0

    def test_window_restricts_fit(self):
        # Slope doubles at t=10; a 5-second window sees only the fast phase.
        times = list(range(21))
        values = [t if t <= 10 else 10 + 4 * (t - 10) for t in times]
        series = make_series(times, values)
        windowed = TheilSenPredictor(window_seconds=5.0)
        unwindowed = TheilSenPredictor()
        fast = windowed.time_to_exhaustion(series, 100.0, 20.0)
        slow = unwindowed.time_to_exhaustion(series, 100.0, 20.0)
        assert fast == pytest.approx((100.0 - 50.0) / 4.0, rel=1e-6)
        assert slow > fast

    def test_warmup_plateau_is_trimmed(self):
        # Ten idle samples then a clean 2/s trend: the idle head must not
        # dilute the slope.
        times = list(range(20))
        values = [3.0] * 10 + [3.0 + 2.0 * (t - 9) for t in range(10, 20)]
        series = make_series(times, values)
        predictor = SlidingWindowLinearPredictor()
        tte = predictor.time_to_exhaustion(series, capacity=45.0, now=19.0)
        # True remaining time at rate 2/s from value 23: 11 seconds.
        assert tte == pytest.approx(11.0, rel=0.05)

    def test_ewma_tracks_rate_change_faster_than_uniform(self):
        times = list(range(21))
        values = [t if t <= 10 else 10 + 4 * (t - 10) for t in times]
        series = make_series(times, values)
        ewma = EwmaSlopePredictor(alpha=0.5)
        uniform = SlidingWindowLinearPredictor()
        assert ewma.slope(series.times, series.values) > uniform.slope(
            series.times, series.values
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            TheilSenPredictor(min_samples=1)
        with pytest.raises(ValueError):
            TheilSenPredictor(window_seconds=0.0)
        with pytest.raises(ValueError):
            EwmaSlopePredictor(alpha=1.0)


class TestPredictionErrorTracking:
    def test_bias_and_mae_on_known_errors(self):
        predictor = TheilSenPredictor()
        # Three predictions of the same exhaustion event at t=100.
        predictor.note(made_at=10.0, predicted_tte=100.0)  # error +10
        predictor.note(made_at=20.0, predicted_tte=70.0)   # error -10
        predictor.note(made_at=30.0, predicted_tte=90.0)   # error +20
        settled, ratio = predictor.settle(100.0)
        assert settled == 3
        stats = predictor.stats
        assert stats.count == 3
        assert stats.bias_seconds == pytest.approx((10 - 10 + 20) / 3)
        assert stats.mae_seconds == pytest.approx((10 + 10 + 20) / 3)
        expected_ratio = (100 / 90 + 70 / 80 + 90 / 70) / 3
        assert stats.calibration == pytest.approx(expected_ratio)
        assert ratio == pytest.approx(expected_ratio)

    def test_settle_ignores_future_predictions(self):
        predictor = TheilSenPredictor()
        predictor.note(made_at=50.0, predicted_tte=10.0)
        settled, _ = predictor.settle(40.0)  # realized before the prediction
        assert settled == 0
        assert predictor.outstanding_predictions == 1

    def test_settle_discards_stale_regime(self):
        predictor = TheilSenPredictor()
        predictor.note(made_at=5.0, predicted_tte=500.0)   # pre-recycle regime
        predictor.note(made_at=50.0, predicted_tte=30.0)
        settled, ratio = predictor.settle(80.0, since=40.0)
        assert settled == 1  # the stale record is dropped, not scored
        assert predictor.stats.count == 1
        assert ratio == pytest.approx(30.0 / 30.0)
        assert predictor.outstanding_predictions == 0

    def test_predict_records_and_stats_row(self):
        predictor = SlidingWindowLinearPredictor()
        series = linear_series(slope=1.0, n=10)
        tte = predictor.predict(series, capacity=100.0, now=9.0)
        assert tte == pytest.approx(91.0, rel=1e-6)
        assert predictor.outstanding_predictions == 1
        row = predictor.stats_row()
        assert row["predictor"] == "sliding-linear"
        assert row["outstanding"] == 1
        assert row["predictions"] == 0


# --------------------------------------------------------------------------- #
# Cost model
# --------------------------------------------------------------------------- #
class TestSlaCostModel:
    def observation(self, **overrides):
        base = dict(
            duration_seconds=3600.0,
            downtime_seconds=10.0,
            exposure_seconds=30.0,
            failed_requests=5,
            refused_requests=8,
        )
        base.update(overrides)
        return SlaObservation(**base)

    def test_zero_cost_for_perfect_run(self):
        model = SlaCostModel()
        perfect = SlaObservation(duration_seconds=3600.0)
        assert model.score(perfect) == 0.0

    @pytest.mark.parametrize(
        "field,delta",
        [
            ("downtime_seconds", 1.0),
            ("exposure_seconds", 1.0),
            ("failed_requests", 1),
            ("refused_requests", 1),
        ],
    )
    def test_strictly_monotone_in_every_currency(self, field, delta):
        model = SlaCostModel()
        base = self.observation()
        worse = self.observation(**{field: getattr(base, field) + delta})
        assert model.score(worse) > model.score(base)

    def test_breakdown_sums_to_score(self):
        model = SlaCostModel()
        observation = self.observation()
        breakdown = model.breakdown(observation)
        total = sum(v for k, v in breakdown.items() if k.endswith("_cost"))
        assert total == pytest.approx(model.score(observation))

    def test_burn_hinge_only_beyond_budget(self):
        model = SlaCostModel(target_availability=0.99)  # budget: 36 s
        inside = SlaObservation(duration_seconds=3600.0, downtime_seconds=20.0)
        at_budget = SlaObservation(duration_seconds=3600.0, downtime_seconds=36.0)
        beyond = SlaObservation(duration_seconds=3600.0, downtime_seconds=72.0)
        assert model.breakdown(inside)["burn_cost"] == 0.0
        assert model.breakdown(at_budget)["burn_cost"] == 0.0
        assert model.budget_burn(beyond) == pytest.approx(2.0)
        assert model.breakdown(beyond)["burn_cost"] == pytest.approx(model.burn_weight)

    def test_failed_requests_burn_budget(self):
        model = SlaCostModel(target_availability=0.999)  # budget: 3.6 s
        observation = SlaObservation(duration_seconds=3600.0, failed_requests=36)
        assert model.budget_burn(observation) == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SlaObservation(duration_seconds=0.0)
        with pytest.raises(ValueError):
            SlaObservation(duration_seconds=10.0, downtime_seconds=-1.0)
        with pytest.raises(ValueError):
            SlaCostModel(target_availability=1.0)
        with pytest.raises(ValueError):
            SlaCostModel(burn_weight=-1.0)


# --------------------------------------------------------------------------- #
# Adaptive policy
# --------------------------------------------------------------------------- #
def observation_for(series, capacity, now, resource="heap", suspect="component_a"):
    return PolicyObservation(
        now=now,
        heap_series=series,
        heap_capacity=capacity,
        suspect_component=suspect,
        resource=resource,
    )


class TestAdaptivePolicy:
    def make_policy(self, **overrides):
        params = dict(
            predictor_factory=lambda: SlidingWindowLinearPredictor(min_samples=3),
            base_horizon=100.0,
            min_horizon=25.0,
            max_horizon=400.0,
            gain=0.5,
            microreboot_downtime=1.0,
        )
        params.update(overrides)
        return AdaptiveRejuvenationPolicy(**params)

    def test_acts_inside_horizon_with_suspect(self):
        policy = self.make_policy()
        series = linear_series(slope=2.0, n=20)  # exhaustion of 120 at t=60
        action = policy.decide(observation_for(series, capacity=120.0, now=19.0))
        assert action is not None
        assert action.kind == MICRO_REBOOT
        assert action.component == "component_a"
        assert action.resource == "heap"
        assert "heap" in action.reason

    def test_no_action_outside_horizon_or_without_suspect(self):
        policy = self.make_policy()
        far = linear_series(slope=0.1, n=20)  # exhaustion far beyond horizon
        assert policy.decide(observation_for(far, capacity=1000.0, now=19.0)) is None
        near = linear_series(slope=2.0, n=20)
        assert (
            policy.decide(observation_for(near, 120.0, 19.0, suspect=None)) is None
        )

    def test_horizon_widens_under_optimistic_predictions(self):
        policy = self.make_policy()
        predictor = policy.predictor("heap")
        predictor.note(made_at=0.0, predicted_tte=100.0)
        settled, ratio = predictor.settle(40.0)  # realized far earlier: ratio 2.5
        assert settled == 1
        policy._adapt("heap", ratio)
        assert policy.horizon("heap") == pytest.approx(150.0)

    def test_horizon_shrinks_when_calibrated_and_clamps_at_min(self):
        policy = self.make_policy()
        for _ in range(10):
            policy._adapt("heap", 1.0)
        assert policy.horizon("heap") == pytest.approx(policy.min_horizon)

    def test_horizon_clamps_at_max(self):
        policy = self.make_policy()
        for _ in range(10):
            policy._adapt("heap", 3.0)
        assert policy.horizon("heap") == pytest.approx(policy.max_horizon)

    def test_convergence_calibrated_after_optimism_returns_down(self):
        policy = self.make_policy()
        policy._adapt("heap", 3.0)
        widened = policy.horizon("heap")
        assert widened > policy.base_horizon
        for _ in range(8):
            policy._adapt("heap", 1.0)
        assert policy.horizon("heap") < widened
        assert policy.horizon("heap") == pytest.approx(policy.min_horizon)

    def test_horizons_are_per_resource(self):
        policy = self.make_policy()
        policy._adapt("heap", 3.0)
        assert policy.horizon("heap") > policy.base_horizon
        assert policy.horizon("connections") == policy.base_horizon
        assert policy.predictor("heap") is not policy.predictor("connections")

    def test_on_action_executed_settles_and_adapts(self):
        policy = self.make_policy()
        series = linear_series(slope=2.0, n=30)  # clean trend, capacity 120
        # Record a calibrated prediction stream via decide() calls.
        for now in (20.0, 24.0, 29.0):
            policy.decide(observation_for(series, 120.0, now))
        predictor = policy.predictor("heap")
        assert predictor.outstanding_predictions > 0
        action = RejuvenationAction(
            kind=MICRO_REBOOT, downtime_seconds=1.0, component="component_a"
        )
        event = object()
        policy.on_action_executed(observation_for(series, 120.0, 29.0), event)
        assert predictor.stats.count > 0
        # A perfectly linear series settles as calibrated: horizon shrank.
        assert policy.horizon("heap") < policy.base_horizon

    def test_decide_skips_recording_far_predictions(self):
        policy = self.make_policy()
        far = linear_series(slope=0.001, n=20)
        policy.decide(observation_for(far, capacity=1000.0, now=19.0))
        assert policy.predictor("heap").outstanding_predictions == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make_policy(base_horizon=0.0)
        with pytest.raises(ValueError):
            self.make_policy(min_horizon=200.0)  # min > base
        with pytest.raises(ValueError):
            self.make_policy(gain=0.0)
