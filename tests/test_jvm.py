"""Tests for the simulated JVM: objects, heap, GC, threads, runtime facade."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jvm.gc import GarbageCollector
from repro.jvm.heap import Heap, OutOfMemoryError
from repro.jvm.objects import JavaObject, sizeof_array, sizeof_string
from repro.jvm.runtime import JvmRuntime
from repro.jvm.threads import ThreadRegistry, ThreadState


class TestJavaObject:
    def test_reference_management(self):
        a = JavaObject("A", 100)
        b = JavaObject("B", 200)
        a.add_reference(b)
        assert b in a.references
        a.remove_reference(b)
        assert a.reference_count == 0

    def test_self_reference_rejected(self):
        a = JavaObject("A")
        with pytest.raises(ValueError):
            a.add_reference(a)

    def test_named_fields(self):
        a = JavaObject("A")
        b = JavaObject("B")
        a.set_field("child", b)
        assert a.get_field("child") is b
        a.set_field("child", None)
        assert a.get_field("child") is None

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            JavaObject("A", -1)

    def test_sizeof_string_scales_with_length(self):
        assert sizeof_string("") == 32
        assert sizeof_string("a" * 32) > sizeof_string("ab")
        assert sizeof_string("abcd") % 8 == 0

    def test_sizeof_array(self):
        assert sizeof_array(8, 10) >= 16 + 80
        with pytest.raises(ValueError):
            sizeof_array(-1, 3)


class TestHeap:
    def test_allocation_accounting(self):
        heap = Heap(capacity_bytes=1000)
        obj = heap.allocate("A", 100)
        assert heap.used_bytes == 100
        assert heap.free_bytes == 900
        assert heap.is_live(obj)

    def test_out_of_memory(self):
        heap = Heap(capacity_bytes=100)
        heap.allocate("A", 60)
        with pytest.raises(OutOfMemoryError):
            heap.allocate("B", 60)

    def test_free_returns_bytes(self):
        heap = Heap(1000)
        obj = heap.allocate("A", 100)
        heap.free(obj)
        assert heap.used_bytes == 0
        assert not heap.is_live(obj)
        with pytest.raises(KeyError):
            heap.free(obj)

    def test_roots_and_reachability(self):
        heap = Heap(10_000)
        root = heap.allocate("Root", 10, root=True)
        child = heap.allocate("Child", 10)
        grandchild = heap.allocate("GrandChild", 10)
        orphan = heap.allocate("Orphan", 10)
        root.add_reference(child)
        child.add_reference(grandchild)
        reachable = heap.reachable_from_roots()
        assert {root.object_id, child.object_id, grandchild.object_id} <= reachable
        assert orphan.object_id not in reachable

    def test_used_by_owner_groups(self):
        heap = Heap(10_000)
        heap.allocate("A", 100, owner="home")
        heap.allocate("B", 50, owner="home")
        heap.allocate("C", 25)
        grouped = heap.used_by_owner()
        assert grouped["home"] == 150
        assert grouped["<unowned>"] == 25

    def test_peak_usage_tracked(self):
        heap = Heap(1000)
        a = heap.allocate("A", 400)
        heap.allocate("B", 100)
        heap.free(a)
        assert heap.peak_used_bytes == 500
        assert heap.used_bytes == 100


class TestGarbageCollector:
    def test_collects_unreachable_objects(self):
        heap = Heap(100_000)
        collector = GarbageCollector(heap)
        root = heap.allocate("Root", 100, root=True)
        kept = heap.allocate("Kept", 100)
        root.add_reference(kept)
        for _ in range(10):
            heap.allocate("Garbage", 50)
        pause = collector.collect()
        assert pause > 0
        assert heap.live_object_count == 2
        assert collector.stats.total_objects_reclaimed == 10
        assert collector.stats.total_bytes_reclaimed == 500

    def test_should_collect_threshold(self):
        heap = Heap(1000)
        collector = GarbageCollector(heap)
        assert not collector.should_collect(0.5)
        heap.allocate("A", 600)
        assert collector.should_collect(0.5)
        with pytest.raises(ValueError):
            collector.should_collect(0.0)

    def test_pause_grows_with_reclaimed_bytes(self):
        heap = Heap(200 * 1024 * 1024)
        collector = GarbageCollector(heap)
        heap.allocate("small", 1024)
        small_pause = collector.collect()
        heap.allocate("big", 100 * 1024 * 1024)
        big_pause = collector.collect()
        assert big_pause > small_pause


class TestThreads:
    def test_spawn_and_terminate(self):
        registry = ThreadRegistry()
        thread = registry.spawn("worker-1", owner="pool")
        assert thread.state is ThreadState.RUNNABLE
        assert registry.live_count() == 1
        registry.terminate(thread)
        assert registry.live_count() == 0
        assert registry.remove_terminated() == 1

    def test_count_by_owner(self):
        registry = ThreadRegistry()
        registry.spawn("a", owner="home")
        registry.spawn("b", owner="home")
        registry.spawn("c", owner="cart")
        assert registry.count_by_owner("home") == 2
        assert registry.peak_count == 3

    def test_thread_lifecycle_errors(self):
        registry = ThreadRegistry()
        thread = registry.spawn("x")
        with pytest.raises(RuntimeError):
            thread.start()
        thread.park()
        assert thread.state is ThreadState.WAITING
        thread.unpark()
        assert thread.state is ThreadState.RUNNABLE
        thread.terminate()
        with pytest.raises(RuntimeError):
            thread.park()

    def test_stack_bytes_total(self):
        registry = ThreadRegistry()
        registry.spawn("a", stack_bytes=1000)
        registry.spawn("b", stack_bytes=2000)
        assert registry.stack_bytes_total() == 3000


class TestJvmRuntime:
    def test_memory_facade(self):
        runtime = JvmRuntime(heap_bytes=10_000)
        runtime.allocate("A", 1000)
        assert runtime.total_memory() == 10_000
        assert runtime.used_memory() == 1000
        assert runtime.free_memory() == 9000

    def test_allocation_triggers_gc_under_pressure(self):
        runtime = JvmRuntime(heap_bytes=1000, gc_occupancy_threshold=0.5)
        # Unrooted garbage fills the heap; the next allocation collects it.
        for _ in range(6):
            runtime.allocate("Garbage", 100)
        assert runtime.used_memory() <= 1000
        assert runtime.collector.stats.collections >= 1
        assert runtime.consume_pending_gc_pause() > 0
        assert runtime.consume_pending_gc_pause() == 0.0

    def test_oom_when_roots_fill_heap(self):
        runtime = JvmRuntime(heap_bytes=500)
        runtime.allocate("Pinned", 400, root=True)
        with pytest.raises(OutOfMemoryError):
            runtime.allocate("TooBig", 300, root=True)

    def test_cpu_accounting(self):
        runtime = JvmRuntime()
        runtime.record_cpu_time("home", 0.5)
        runtime.record_cpu_time("home", 0.25)
        runtime.record_cpu_time("cart", 1.0)
        assert runtime.cpu_time("home") == pytest.approx(0.75)
        assert runtime.cpu_time() == pytest.approx(1.75)
        assert runtime.cpu_time_by_owner()["cart"] == 1.0
        with pytest.raises(ValueError):
            runtime.record_cpu_time("home", -1.0)


# --------------------------------------------------------------------------- #
# Property-based tests
# --------------------------------------------------------------------------- #
@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=5000), min_size=1, max_size=60))
def test_property_heap_byte_accounting(sizes):
    """used_bytes always equals the sum of live objects' shallow sizes."""
    heap = Heap(capacity_bytes=10_000_000)
    objects = [heap.allocate(f"C{index}", size) for index, size in enumerate(sizes)]
    assert heap.used_bytes == sum(sizes)
    # Free every other object.
    freed = 0
    for index, obj in enumerate(objects):
        if index % 2 == 0:
            heap.free(obj)
            freed += sizes[index]
    assert heap.used_bytes == sum(sizes) - freed


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_property_gc_never_collects_reachable(data):
    """Objects reachable from roots survive any collection."""
    heap = Heap(10_000_000)
    collector = GarbageCollector(heap)
    root = heap.allocate("Root", 16, root=True)
    chain = [root]
    depth = data.draw(st.integers(min_value=1, max_value=20))
    for index in range(depth):
        node = heap.allocate(f"Node{index}", 16)
        chain[-1].add_reference(node)
        chain.append(node)
    garbage_count = data.draw(st.integers(min_value=0, max_value=20))
    for index in range(garbage_count):
        heap.allocate(f"Garbage{index}", 16)
    collector.collect()
    for node in chain:
        assert heap.is_live(node)
    assert heap.live_object_count == len(chain)
