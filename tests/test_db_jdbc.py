"""Tests for the JDBC-like access layer and connection pool."""

from __future__ import annotations

import pytest

from repro.db.engine import Database
from repro.db.jdbc import ConnectionPoolExhaustedError, DataSource, SQLError
from repro.db.table import Column, ColumnType


@pytest.fixture
def datasource() -> DataSource:
    database = Database("jdbc-test")
    database.create_table(
        "t",
        [Column("id", ColumnType.INTEGER, primary_key=True), Column("name", ColumnType.VARCHAR)],
    )
    for index in range(5):
        database.table("t").insert({"id": index, "name": f"row{index}"})
    return DataSource(database, pool_size=2)


class TestResultSetAndStatements:
    def test_forward_only_cursor(self, datasource):
        connection = datasource.get_connection()
        result = connection.execute_query("SELECT id, name FROM t ORDER BY id ASC")
        names = []
        while result.next():
            names.append(result.get_string("name"))
        assert names == [f"row{i}" for i in range(5)]
        assert result.next() is False
        connection.close()

    def test_get_before_next_raises(self, datasource):
        connection = datasource.get_connection()
        result = connection.execute_query("SELECT id FROM t")
        with pytest.raises(SQLError):
            result.get("id")
        connection.close()

    def test_typed_getters_handle_null(self, datasource):
        connection = datasource.get_connection()
        connection.execute_update("INSERT INTO t (id, name) VALUES (?, ?)", [99, None])
        result = connection.execute_query("SELECT name FROM t WHERE id = 99")
        assert result.next()
        assert result.get_string("name") is None
        assert result.get_int("name") == 0
        connection.close()

    def test_unknown_column_raises(self, datasource):
        connection = datasource.get_connection()
        result = connection.execute_query("SELECT id FROM t WHERE id = 1")
        result.next()
        with pytest.raises(SQLError):
            result.get("missing")
        connection.close()

    def test_prepared_statement_parameter_binding(self, datasource):
        connection = datasource.get_connection()
        statement = connection.prepare_statement("SELECT name FROM t WHERE id = ?")
        statement.set(1, 3)
        result = statement.execute_query()
        assert result.next() and result.get_string("name") == "row3"
        with pytest.raises(SQLError):
            statement.set(0, 1)
        connection.close()

    def test_prepared_statement_update(self, datasource):
        connection = datasource.get_connection()
        statement = connection.prepare_statement("UPDATE t SET name = ? WHERE id = ?")
        statement.set(1, "renamed")
        statement.set(2, 2)
        assert statement.execute_update() == 1
        connection.close()


class TestConnectionPool:
    def test_pool_bound_enforced(self, datasource):
        first = datasource.get_connection()
        second = datasource.get_connection()
        assert datasource.active_connections == 2
        with pytest.raises(ConnectionPoolExhaustedError):
            datasource.get_connection()
        assert datasource.exhaustion_events == 1
        first.close()
        third = datasource.get_connection()
        assert third is not None
        second.close()
        third.close()
        assert datasource.active_connections == 0

    def test_closed_connection_rejects_queries(self, datasource):
        connection = datasource.get_connection()
        connection.close()
        assert connection.is_closed
        with pytest.raises(SQLError):
            connection.execute_query("SELECT id FROM t")
        # Closing twice is harmless.
        connection.close()

    def test_context_manager_returns_connection(self, datasource):
        with datasource.get_connection() as connection:
            connection.execute_query("SELECT id FROM t WHERE id = 1")
        assert datasource.active_connections == 0

    def test_cost_accumulation(self, datasource):
        connection = datasource.get_connection()
        before = datasource.total_cost_seconds
        connection.execute_query("SELECT * FROM t")
        connection.execute_query("SELECT * FROM t")
        assert datasource.total_cost_seconds > before
        assert connection.query_count == 2
        assert connection.accumulated_cost_seconds > 0
        connection.close()

    def test_invalid_pool_size(self):
        with pytest.raises(ValueError):
            DataSource(Database("x"), pool_size=0)
