"""Integration tests for multi-resource rejuvenation & the fig_adaptive scenario.

Covers the ISSUE 3 acceptance semantics:

* the ResourceChannel abstraction: thread/connection series polled by the
  manager, channel capacities and direct attribution, component recycling
  of threads and connections (not just heap);
* the thread-leak fault pins stack memory on the heap and fails requests at
  the JVM thread capacity; the connection-leak fault tags its borrows;
* ``fig_adaptive``: the adaptive policy's SLA cost is no worse than the
  best fixed policy on the memory workload, thread/connection no-action
  error spikes are eliminated by rejuvenation, and the scenario is
  deterministic per seed at ``duration_scale=0.05``.
"""

from __future__ import annotations

import pytest

from repro.baselines.rejuvenation import MICRO_REBOOT, RejuvenationAction
from repro.core.framework import FrameworkConfig, MonitoringFramework
from repro.core.rejuvenation import (
    ConnectionChannel,
    HeapChannel,
    RejuvenationController,
    ThreadChannel,
    build_channels,
)
from repro.container.server import ServerConfig
from repro.jvm.heap import Heap
from repro.jvm.threads import ThreadLimitError, ThreadRegistry
from repro.sim.engine import SimulationEngine
from repro.slo.adaptive_policy import AdaptiveRejuvenationPolicy
from repro.tpcw.application import build_deployment
from repro.tpcw.population import PopulationScale

TINY = PopulationScale.tiny()
DS = 0.05


# --------------------------------------------------------------------------- #
# JVM thread registry: capacity + pinned stacks
# --------------------------------------------------------------------------- #
class TestThreadRegistry:
    def test_capacity_limits_spawns(self):
        registry = ThreadRegistry(capacity=2)
        registry.spawn("a")
        registry.spawn("b")
        with pytest.raises(ThreadLimitError):
            registry.spawn("c")
        # Terminating frees a slot.
        registry.terminate(registry.live_threads()[0])
        registry.remove_terminated()
        registry.spawn("c")

    def test_pinned_stack_accounts_on_heap_and_frees_on_terminate(self):
        heap = Heap(capacity_bytes=10 * 1024 * 1024)
        registry = ThreadRegistry(heap=heap)
        before = heap.used_bytes
        thread = registry.spawn(
            "leaked", owner="home", stack_bytes=256 * 1024, pin_stack=True
        )
        assert heap.used_bytes == before + 256 * 1024
        assert heap.is_root(thread.stack_object)
        registry.terminate(thread)
        assert heap.used_bytes == before

    def test_terminate_owned_frees_only_that_owner(self):
        heap = Heap(capacity_bytes=10 * 1024 * 1024)
        registry = ThreadRegistry(heap=heap)
        for index in range(3):
            registry.spawn(f"a{index}", owner="home", stack_bytes=1024, pin_stack=True)
        registry.spawn("other", owner="search_request", stack_bytes=1024, pin_stack=True)
        count, freed = registry.terminate_owned("home")
        assert count == 3
        assert freed == 3 * 1024
        assert registry.count_by_owner("home") == 0
        assert registry.count_by_owner("search_request") == 1

    def test_unpinned_spawn_does_not_touch_heap(self):
        heap = Heap(capacity_bytes=1024)  # far too small for a stack
        registry = ThreadRegistry(heap=heap)
        registry.spawn("worker", stack_bytes=512 * 1024)  # pin_stack defaults off
        assert heap.used_bytes == 0


# --------------------------------------------------------------------------- #
# DataSource: owner tagging and forced release
# --------------------------------------------------------------------------- #
class TestConnectionOwnership:
    def test_borrows_are_tagged_and_released_by_owner(self):
        deployment = build_deployment(scale=TINY, seed=3)
        datasource = deployment.datasource
        held = [datasource.get_connection(owner="home") for _ in range(3)]
        other = datasource.get_connection(owner="search_request")
        assert datasource.active_by_owner()["home"] == 3
        released = datasource.release_owned("home")
        assert released == 3
        assert all(connection.is_closed for connection in held)
        assert not other.is_closed
        assert datasource.active_by_owner() == {"search_request": 1}

    def test_servlet_borrows_carry_component_name(self):
        deployment = build_deployment(scale=TINY, seed=3)
        servlet = deployment.servlet("home")
        connection = servlet.get_connection()
        assert connection.owner == "home"
        connection.close()


# --------------------------------------------------------------------------- #
# Channels + controller
# --------------------------------------------------------------------------- #
def build_monitored_stack(seed=7, server_config=None):
    engine = SimulationEngine()
    deployment = build_deployment(
        scale=TINY, seed=seed, clock=engine.clock, config=server_config
    )
    framework = MonitoringFramework(
        deployment,
        engine=engine,
        config=FrameworkConfig(
            snapshot_interval=10.0, monitor_threads=True, monitor_connections=True
        ),
    )
    framework.install()
    return engine, deployment, framework


class TestResourceChannels:
    def test_build_channels_by_name(self):
        channels = build_channels(["heap", "threads", "connections"])
        assert [channel.name for channel in channels] == [
            "heap",
            "threads",
            "connections",
        ]
        with pytest.raises(KeyError):
            build_channels(["cpu"])

    def test_manager_snapshot_records_extended_series(self):
        engine, deployment, framework = build_monitored_stack()
        framework.manager.snapshot(timestamp=5.0)
        threads = framework.manager.map.series("<jvm>", "threads_total")
        connections = framework.manager.map.series("<jvm>", "connections_active")
        assert len(threads) == 1
        assert threads.values[0] == deployment.runtime.thread_count()
        assert len(connections) == 1
        assert connections.values[0] == 0.0

    def test_channel_capacities(self):
        config = ServerConfig(thread_capacity=333)
        engine, deployment, framework = build_monitored_stack(server_config=config)
        controller = RejuvenationController(
            deployment,
            framework.manager,
            engine,
            policy=AdaptiveRejuvenationPolicy(base_horizon=100.0),
            channels=build_channels(["heap", "threads", "connections"]),
        )
        heap, threads, connections = controller.channels
        assert heap.capacity(deployment) == deployment.runtime.total_memory()
        assert threads.capacity(deployment) == 333.0
        assert connections.capacity(deployment) == float(deployment.datasource.pool_size)

    def test_direct_attribution_suspects(self):
        engine, deployment, framework = build_monitored_stack()
        controller = RejuvenationController(
            deployment,
            framework.manager,
            engine,
            policy=AdaptiveRejuvenationPolicy(base_horizon=100.0),
            channels=build_channels(["threads", "connections"]),
        )
        thread_channel, connection_channel = controller.channels
        assert thread_channel.suspect(controller) is None
        deployment.runtime.threads.spawn("leak-1", owner="home")
        deployment.runtime.threads.spawn("leak-2", owner="home")
        assert thread_channel.suspect(controller) == "home"
        assert connection_channel.suspect(controller) is None
        deployment.datasource.get_connection(owner="shopping_cart")
        assert connection_channel.suspect(controller) == "shopping_cart"

    def test_heap_only_controller_skips_extended_polling(self):
        engine, deployment, framework = build_monitored_stack()
        controller = RejuvenationController(
            deployment,
            framework.manager,
            engine,
            policy=AdaptiveRejuvenationPolicy(base_horizon=100.0),
        )
        assert [channel.name for channel in controller.channels] == ["heap"]
        assert framework.manager.poll_live_heap is True

    def test_micro_reboot_recycles_threads_and_connections(self):
        engine, deployment, framework = build_monitored_stack()
        runtime = deployment.runtime
        for index in range(4):
            runtime.threads.spawn(
                f"leak-{index}", owner="home", stack_bytes=2048, pin_stack=True
            )
        for _ in range(3):
            deployment.datasource.get_connection(owner="home")
        controller = RejuvenationController(
            deployment,
            framework.manager,
            engine,
            policy=AdaptiveRejuvenationPolicy(base_horizon=100.0),
            channels=build_channels(["threads"]),
        )
        event = controller.execute(
            RejuvenationAction(
                kind=MICRO_REBOOT,
                downtime_seconds=0.5,
                component="home",
                resource="threads",
            ),
            at_time=10.0,
        )
        assert event.reclaimed_threads == 4
        assert event.reclaimed_connections == 3
        assert event.reclaimed_bytes >= 4 * 2048
        assert runtime.threads.count_by_owner("home") == 0
        assert deployment.datasource.active_connections == 0
        report = controller.report()
        assert report.reclaimed_threads == 4
        assert report.reclaimed_connections == 3


# --------------------------------------------------------------------------- #
# Faults: error surfacing
# --------------------------------------------------------------------------- #
class TestFaultErrorSurfacing:
    def test_thread_limit_fails_the_request(self):
        from repro.container.servlet import HttpServletRequest
        from repro.faults.thread_leak import ThreadLeakFault

        config = ServerConfig(thread_capacity=151)  # room for one leak on top
        deployment = build_deployment(scale=TINY, seed=5, config=config)
        fault = ThreadLeakFault(period_n=0)  # trigger on every visit
        deployment.servlet("home").attach_fault(fault)
        first = deployment.server.handle(
            HttpServletRequest(uri=deployment.url_for("home")), 1.0
        )
        assert first.response.status == 200
        second = deployment.server.handle(
            HttpServletRequest(uri=deployment.url_for("home")), 2.0
        )
        assert second.response.is_error
        assert fault.leaked_threads == 1
        assert fault.thread_limit_hits == 1

    def test_connection_leak_prunes_force_closed(self):
        from repro.faults.connection_leak import ConnectionLeakFault

        deployment = build_deployment(scale=TINY, seed=5)
        fault = ConnectionLeakFault(period_n=0)
        servlet = deployment.servlet("home")
        servlet.attach_fault(fault)
        fault.on_request(servlet, None)
        fault.on_request(servlet, None)
        assert fault.leaked_connections == 2
        assert deployment.datasource.active_by_owner()["home"] == 2
        deployment.datasource.release_owned("home")
        fault.on_request(servlet, None)
        # The force-closed connections dropped out; only the fresh leak is held.
        assert fault.leaked_connections == 1


# --------------------------------------------------------------------------- #
# fig_adaptive acceptance
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def adaptive_scenario():
    from repro.experiments.scenarios import fig_adaptive

    return fig_adaptive(duration_scale=DS, seed=42, scale=TINY)


class TestFigAdaptive:
    def test_adaptive_beats_or_matches_best_fixed_on_memory(self, adaptive_scenario):
        adaptive = adaptive_scenario.sla_cost("memory", "adaptive")
        best_fixed = adaptive_scenario.best_fixed_cost("memory")
        assert adaptive <= best_fixed

    @pytest.mark.parametrize("workload", ["threads", "connections"])
    def test_rejuvenation_eliminates_error_spikes(self, adaptive_scenario, workload):
        no_action = adaptive_scenario.result(workload, "no-action")
        adaptive = adaptive_scenario.result(workload, "adaptive")
        assert no_action.error_count > 0, "no-action run must exhibit the spike"
        assert adaptive.error_count == 0
        assert adaptive_scenario.result(workload, "proactive-microreboot").error_count == 0

    def test_all_policies_on_all_workloads(self, adaptive_scenario):
        for workload in ("memory", "threads", "connections"):
            assert sorted(adaptive_scenario.results[workload]) == sorted(
                ["no-action", "time-based", "proactive-microreboot", "adaptive"]
            )

    def test_exposure_and_downtime_enter_the_scalar(self, adaptive_scenario):
        # The no-action memory run pays exposure + errors but no downtime;
        # recycling policies pay downtime but eliminate both.
        observation = adaptive_scenario.sla_observation("memory", "no-action")
        assert observation.downtime_seconds == 0.0
        assert observation.exposure_seconds > 0.0
        assert observation.failed_requests > 0
        recycled = adaptive_scenario.sla_observation("memory", "adaptive")
        assert recycled.downtime_seconds > 0.0
        assert recycled.exposure_seconds == 0.0
        assert recycled.failed_requests == 0

    def test_predictor_rows_present_for_each_workload(self, adaptive_scenario):
        rows = adaptive_scenario.predictor_rows()
        workloads = {row["workload"] for row in rows}
        assert workloads == {"memory", "threads", "connections"}
        for row in rows:
            assert row["predictions"] > 0

    def test_adaptive_report_renders(self, adaptive_scenario):
        from repro.experiments.reporting import adaptive_report

        text = adaptive_report(adaptive_scenario)
        assert "sla_cost" in text
        assert "verdicts:" in text
        assert "True" in text

    def test_deterministic_per_seed(self, adaptive_scenario):
        from repro.experiments.scenarios import fig_adaptive

        repeat = fig_adaptive(duration_scale=DS, seed=42, scale=TINY)
        assert repeat.summary_rows() == adaptive_scenario.summary_rows()


class TestAnalyticCrossCheck:
    """The M/M/c + leak-model cross-check of the no-action runs (ISSUE 5)."""

    def test_rows_cover_every_workload(self, adaptive_scenario):
        rows = {row["workload"]: row for row in adaptive_scenario.analytic_rows()}
        assert set(rows) == {"memory", "threads", "connections"}

    def test_analytic_tte_within_stated_tolerance_of_realized(self, adaptive_scenario):
        # The acceptance tolerance (a factor of TTE_TOLERANCE_FACTOR, stated
        # in repro.slo.analytic) must hold for every workload at the pinned
        # seed/scale: the fluid-limit prediction from the configuration
        # alone lands in the band around the realized exhaustion time.
        for row in adaptive_scenario.analytic_rows():
            assert row["realized_tte_s"] is not None, row["workload"]
            assert row["analytic_tte_s"] is not None, row["workload"]
            assert row["tte_ok"] is True, row

    def test_predicted_failures_track_realized(self, adaptive_scenario):
        # Order-of-magnitude agreement on the failure side too: the model
        # knows which requests an exhausted resource fails.
        for row in adaptive_scenario.analytic_rows():
            assert row["realized_failed"] > 0, row["workload"]
            assert (
                0.5 * row["realized_failed"]
                <= row["analytic_failed"]
                <= 2.0 * row["realized_failed"]
            ), row

    def test_queueing_regime_is_uncongested(self, adaptive_scenario):
        # The M/M/c side of the check: at the configured arrival/service
        # rates the server is deep in the stable regime, so the model
        # attributes the no-action errors to exhaustion, not queueing.
        for row in adaptive_scenario.analytic_rows():
            assert row["mmc_utilization"] < 0.5
            assert row["mmc_wait_probability"] < 0.01

    def test_realized_exhaustion_matches_monitored_series(self, adaptive_scenario):
        from repro.slo.analytic import realized_exhaustion_time

        model = adaptive_scenario.analytic_models["threads"]
        series = adaptive_scenario.monitored_series("threads", "no-action")
        assert adaptive_scenario.realized_exhaustion("threads") == (
            realized_exhaustion_time(
                series,
                adaptive_scenario.capacities["threads"],
                model.exhaustion_fraction,
            )
        )

    def test_report_includes_cross_check_table(self, adaptive_scenario):
        from repro.experiments.reporting import adaptive_report

        text = adaptive_report(adaptive_scenario)
        assert "analytic M/M/c cross-check" in text
        assert "analytic_tte_s" in text
        assert "tte_ok" in text
