"""Tier-1 acceptance tests for ``fig_learning`` (ISSUE 5 tentpole).

The headline claim, pinned at ``duration_scale=0.05`` / tiny / seed 42:
warm-started adaptive (calibration persisted per workload signature across
runs) needs strictly fewer recycles and strictly lower cumulative SLA cost
than cold adaptive, which re-learns its safety horizon every run — and the
whole comparison is deterministic per seed.
"""

from __future__ import annotations

import pytest

from repro.experiments.reporting import learning_report
from repro.experiments.scenarios import LEARNING_MODES, fig_learning
from repro.slo.calibration import CalibrationStore
from repro.tpcw.population import PopulationScale

TINY = PopulationScale.tiny()
DS = 0.05


@pytest.fixture(scope="module")
def scenario(tmp_path_factory):
    store = tmp_path_factory.mktemp("learning") / "calibration.json"
    return fig_learning(duration_scale=DS, seed=42, scale=TINY, store_path=str(store))


class TestFigLearning:
    def test_warm_needs_fewer_recycles_than_cold(self, scenario):
        # The headline claim, pinned strictly: across the run sequence the
        # warm-started policy skips recycles the cold one re-pays.
        assert scenario.total_recycles("warm") < scenario.total_recycles("cold")

    def test_warm_cumulative_sla_cost_is_lower(self, scenario):
        assert scenario.cumulative_sla_cost("warm") < scenario.cumulative_sla_cost("cold")

    def test_first_run_is_identical_cold_and_warm(self, scenario):
        # Run 0 opens against an empty store: warm must behave exactly cold.
        assert not scenario.policies["warm"][0].warm_started
        assert scenario.recycles("warm", 0) == scenario.recycles("cold", 0)
        assert scenario.sla_cost("warm", 0) == pytest.approx(scenario.sla_cost("cold", 0))
        assert (
            scenario.results["warm"][0].completed_requests
            == scenario.results["cold"][0].completed_requests
        )

    def test_later_warm_runs_open_below_base_horizon(self, scenario):
        for run in range(1, scenario.runs):
            policy = scenario.policies["warm"][run]
            assert policy.warm_started
            assert scenario.opening_horizon("warm", run) < policy.base_horizon
        for run in range(scenario.runs):
            cold = scenario.policies["cold"][run]
            assert not cold.warm_started
            assert scenario.opening_horizon("cold", run) == cold.base_horizon

    def test_no_run_trades_recycles_for_outages(self, scenario):
        # Learning must not "win" by letting the heap hit the wall: every
        # warm run still finishes error-free.
        for run in range(scenario.runs):
            assert scenario.results["warm"][run].error_count == 0

    def test_store_accumulates_all_warm_runs(self, scenario):
        store = CalibrationStore(scenario.store_path)
        assert store.loaded_from_disk
        record = store.lookup(scenario.signature)
        assert record is not None
        assert record.runs == scenario.runs
        assert "heap" in record.resources
        assert record.resources["heap"].stats.count > 0

    def test_signature_is_seed_independent(self, scenario):
        assert "seed" not in scenario.signature
        assert "fig-learning-memory" in scenario.signature

    def test_verdict_rows_hold(self, scenario):
        verdicts = {row["claim"]: row["holds"] for row in scenario.verdict_rows()}
        assert all(verdicts.values())

    def test_summary_rows_cover_both_modes(self, scenario):
        rows = scenario.summary_rows()
        assert len(rows) == 2 * scenario.runs
        assert {row["mode"] for row in rows} == set(LEARNING_MODES)
        by_mode_run = {(row["mode"], row["run"]): row for row in rows}
        assert by_mode_run[("warm", 1)]["warm_started"] is True
        assert by_mode_run[("cold", 1)]["warm_started"] is False

    def test_deterministic_per_seed(self, scenario, tmp_path):
        again = fig_learning(
            duration_scale=DS,
            seed=42,
            scale=TINY,
            store_path=str(tmp_path / "calibration.json"),
        )
        assert again.summary_rows() == scenario.summary_rows()
        assert again.signature == scenario.signature

    def test_report_renders(self, scenario):
        text = learning_report(scenario)
        assert "Cross-run calibration learning" in text
        assert "workload signature" in text
        assert "verdicts:" in text
        assert "True" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            fig_learning(duration_scale=0.0)
        with pytest.raises(ValueError):
            fig_learning(duration_scale=DS, runs=1)
