"""Tests for the fault-injection framework."""

from __future__ import annotations

import pytest

from repro.container.servlet import HttpServletRequest
from repro.db.jdbc import ConnectionPoolExhaustedError
from repro.faults.base import RandomCountdownTrigger
from repro.faults.connection_leak import ConnectionLeakFault
from repro.faults.cpu_hog import CpuHogFault
from repro.faults.injector import FaultInjector, FaultSpec
from repro.faults.memory_leak import KB, MemoryLeakFault
from repro.faults.thread_leak import ThreadLeakFault
from repro.sim.random import RandomStreams
from repro.tpcw.application import TpcwApplication


class TestRandomCountdownTrigger:
    def test_fires_on_average_every_half_n(self):
        streams = RandomStreams(3)
        trigger = RandomCountdownTrigger(100, streams, "t")
        fires = sum(1 for _ in range(20_000) if trigger.should_fire())
        # countdown ~ U[0, 100] -> mean gap ~51 visits.
        assert 250 <= fires <= 550

    def test_period_zero_fires_every_time(self):
        trigger = RandomCountdownTrigger(0, None, "t")
        assert all(trigger.should_fire() for _ in range(5))

    def test_negative_period_rejected(self):
        with pytest.raises(ValueError):
            RandomCountdownTrigger(-1, None, "t")

    def test_deterministic_fallback_without_streams(self):
        trigger = RandomCountdownTrigger(10, None, "t")
        fires = [trigger.should_fire() for _ in range(12)]
        assert fires.count(True) == 2  # fires after 5 visits, then again after 5


class TestMemoryLeakFault:
    def test_leak_grows_component_state(self, tiny_deployment):
        app = TpcwApplication(tiny_deployment)
        servlet = tiny_deployment.servlet("home")
        fault = MemoryLeakFault(leak_bytes=100 * KB, period_n=0, streams=tiny_deployment.streams)
        servlet.attach_fault(fault)
        before = servlet.instance_root.reference_count
        for _ in range(5):
            app.visit("home")
        assert fault.trigger_count == 5
        assert fault.leaked_bytes_total == 5 * 100 * KB
        assert servlet.instance_root.reference_count == before + 5
        # Leaked objects are owned by the component.
        leaked = [ref for ref in servlet.instance_root.references if "LeakedBuffer" in ref.class_name]
        assert all(ref.owner == "home" for ref in leaked)

    def test_leak_objects_survive_gc(self, tiny_deployment):
        app = TpcwApplication(tiny_deployment)
        servlet = tiny_deployment.servlet("home")
        servlet.attach_fault(MemoryLeakFault(leak_bytes=50 * KB, period_n=0))
        for _ in range(3):
            app.visit("home")
        tiny_deployment.runtime.gc()
        leaked = [ref for ref in servlet.instance_root.references if "LeakedBuffer" in ref.class_name]
        assert len(leaked) == 3
        assert all(tiny_deployment.runtime.heap.is_live(obj) for obj in leaked)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MemoryLeakFault(leak_bytes=0)

    def test_inactive_fault_does_nothing(self, tiny_deployment):
        app = TpcwApplication(tiny_deployment)
        servlet = tiny_deployment.servlet("home")
        fault = MemoryLeakFault(leak_bytes=10 * KB, period_n=0)
        fault.active = False
        servlet.attach_fault(fault)
        app.visit("home")
        assert fault.trigger_count == 0


class TestOtherFaults:
    def test_cpu_hog_increases_demand(self, tiny_deployment):
        app = TpcwApplication(tiny_deployment)
        servlet = tiny_deployment.servlet("home")
        baseline = servlet.base_cpu_demand_seconds
        servlet.attach_fault(CpuHogFault(increment_seconds=0.01, period_n=0))
        for _ in range(4):
            app.visit("home")
        assert servlet.base_cpu_demand_seconds == pytest.approx(baseline + 0.04)
        assert tiny_deployment.runtime.cpu_time("home") > 0

    def test_cpu_hog_respects_cap(self, tiny_deployment):
        app = TpcwApplication(tiny_deployment)
        servlet = tiny_deployment.servlet("home")
        servlet.attach_fault(CpuHogFault(increment_seconds=0.5, period_n=0, max_extra_seconds=1.0))
        for _ in range(5):
            app.visit("home")
        assert servlet.base_cpu_demand_seconds <= 0.12 + 1.0 + 1e-9

    def test_thread_leak_spawns_component_threads(self, tiny_deployment):
        app = TpcwApplication(tiny_deployment)
        servlet = tiny_deployment.servlet("order_display")
        before = tiny_deployment.runtime.thread_count()
        servlet.attach_fault(ThreadLeakFault(period_n=0))
        for _ in range(3):
            app.visit("order_display")
        assert tiny_deployment.runtime.thread_count() == before + 3
        assert tiny_deployment.runtime.threads.count_by_owner("order_display") == 3

    def test_connection_leak_exhausts_pool(self, tiny_deployment):
        app = TpcwApplication(tiny_deployment)
        servlet = tiny_deployment.servlet("home")
        fault = ConnectionLeakFault(period_n=0)
        servlet.attach_fault(fault)
        pool_size = tiny_deployment.datasource.pool_size
        # Visit until the pool is exhausted; further visits fail with 500.
        failures = 0
        for _ in range(pool_size + 10):
            outcome = app.visit("home")
            if not outcome.ok:
                failures += 1
        assert fault.leaked_connections >= pool_size - 1
        assert failures > 0
        # Releasing (micro-reboot) restores service.
        fault.release_all()
        fault.active = False
        assert app.visit("home").ok


class TestFaultInjector:
    def test_spec_builds_and_attaches(self, tiny_deployment):
        injector = FaultInjector(tiny_deployment)
        fault = injector.inject_spec(
            FaultSpec(component="home", kind="memory-leak", params={"leak_bytes": 10 * KB, "period_n": 5})
        )
        assert isinstance(fault, MemoryLeakFault)
        assert fault in tiny_deployment.servlet("home").injected_faults
        assert injector.faults_for("home") == [fault]

    def test_unknown_kind_rejected(self, tiny_deployment):
        with pytest.raises(KeyError):
            FaultInjector(tiny_deployment).inject_spec(FaultSpec(component="home", kind="nope"))

    def test_unknown_component_rejected_listing_known(self, tiny_deployment):
        injector = FaultInjector(tiny_deployment)
        with pytest.raises(ValueError) as excinfo:
            injector.inject_spec(FaultSpec(component="checkout", kind="memory-leak"))
        message = str(excinfo.value)
        assert "checkout" in message
        # The error enumerates the deployed components to fail loudly and
        # helpfully at install time.
        assert "home" in message and "product_detail" in message
        assert injector.injected == []

    def test_plan_and_remove_all(self, tiny_deployment):
        injector = FaultInjector(tiny_deployment)
        injector.inject_plan(
            [
                FaultSpec("home", "memory-leak", {"leak_bytes": 10 * KB}),
                FaultSpec("product_detail", "thread-leak", {}),
            ]
        )
        assert len(injector.injected) == 2
        assert len(injector.describe()) == 2
        removed = injector.remove_all()
        assert removed == 2
        assert tiny_deployment.servlet("home").injected_faults == []
