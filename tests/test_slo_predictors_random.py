"""Property-style randomized suite for ``repro.slo.predictors`` (ISSUE 5).

Mirrors the randomized-corpus pattern of ``test_db_planner_equivalence``:
every stochastic input is drawn from seeded :class:`repro.sim.random`
streams (never the global RNG), a corpus of random workload shapes is
generated at module level, and the assertions are *invariants* rather than
pinned values:

* calibration → 1.0 as noise → 0 (and the calibration error shrinks
  monotonically with the noise level, averaged over seeds);
* MAE is monotone non-decreasing in the noise level;
* ``outstanding_predictions`` drains to 0 after a settle that covers every
  recorded prediction, and settle conserves records
  (settled + discarded + remaining == noted);
* stale-regime records (made before ``since``) are discarded, never folded
  into the error statistics;
* the outstanding buffer is bounded by ``MAX_OUTSTANDING`` and keeps the
  newest records;
* predictions on arbitrary random walks are ``None`` or non-negative, and
  identical seeds yield identical predictions.
"""

from __future__ import annotations

import pytest

from repro.sim.metrics import TimeSeries
from repro.sim.random import RandomStreams
from repro.slo.predictors import (
    MAX_OUTSTANDING,
    EwmaSlopePredictor,
    SlidingWindowLinearPredictor,
    TheilSenPredictor,
)

PREDICTOR_CLASSES = [
    SlidingWindowLinearPredictor,
    TheilSenPredictor,
    EwmaSlopePredictor,
]

#: Seeds of the randomized corpus (one independent stream family each).
SEEDS = list(range(8))
#: Ascending noise levels (standard deviation of the additive noise, in the
#: same units as the series values).
NOISE_LEVELS = [0.0, 0.5, 2.0, 8.0]


def noisy_linear_series(
    streams: RandomStreams,
    stream: str,
    slope: float,
    noise: float,
    n: int = 40,
    dt: float = 1.0,
    intercept: float = 5.0,
) -> TimeSeries:
    """``intercept + slope * t`` plus seeded Gaussian noise."""
    series = TimeSeries("random")
    generator = streams.stream(stream)
    for index in range(n):
        t = index * dt
        value = intercept + slope * t
        if noise > 0:
            value += float(generator.normal(0.0, noise))
        series.record(t, value)
    return series


def settled_stats(predictor_class, seed: int, noise: float):
    """Drive one predict/settle cycle on a known trend; return the stats.

    The true exhaustion time comes from the noiseless line, so every error
    folded into the statistics is *caused by the injected noise alone*.
    """
    streams = RandomStreams(seed)
    slope = streams.uniform("slope", 0.5, 4.0)
    intercept = 5.0
    true_exhaustion = 100.0
    capacity = intercept + slope * true_exhaustion
    predictor = predictor_class(min_samples=4)
    for now in (40.0, 48.0, 56.0, 64.0):
        series = noisy_linear_series(
            streams, f"noise.{noise}.{now}", slope, noise, n=int(now) + 1, intercept=intercept
        )
        predictor.predict(series, capacity, now)
    settled, ratio = predictor.settle(true_exhaustion)
    return predictor.stats, settled, ratio


# --------------------------------------------------------------------------- #
# Calibration / MAE vs. noise
# --------------------------------------------------------------------------- #
class TestNoiseInvariants:
    @pytest.mark.parametrize("predictor_class", PREDICTOR_CLASSES)
    def test_noise_free_trend_is_perfectly_calibrated(self, predictor_class):
        for seed in SEEDS:
            stats, settled, ratio = settled_stats(predictor_class, seed, noise=0.0)
            assert settled == 4
            assert stats.calibration == pytest.approx(1.0, abs=1e-9)
            assert ratio == pytest.approx(1.0, abs=1e-9)
            assert stats.mae_seconds == pytest.approx(0.0, abs=1e-6)
            assert stats.bias_seconds == pytest.approx(0.0, abs=1e-6)

    @pytest.mark.parametrize("predictor_class", PREDICTOR_CLASSES)
    def test_calibration_error_shrinks_as_noise_vanishes(self, predictor_class):
        def mean_calibration_error(noise: float) -> float:
            errors = [
                abs(settled_stats(predictor_class, seed, noise)[0].calibration - 1.0)
                for seed in SEEDS
            ]
            return sum(errors) / len(errors)

        errors = [mean_calibration_error(noise) for noise in NOISE_LEVELS]
        # Monotone non-increasing toward zero noise, exactly zero at zero.
        for lower, higher in zip(errors, errors[1:]):
            assert lower <= higher + 1e-9
        assert errors[0] == pytest.approx(0.0, abs=1e-9)
        assert errors[-1] > errors[0]

    @pytest.mark.parametrize("predictor_class", PREDICTOR_CLASSES)
    def test_mae_monotone_non_decreasing_in_noise(self, predictor_class):
        def mean_mae(noise: float) -> float:
            maes = [
                settled_stats(predictor_class, seed, noise)[0].mae_seconds
                for seed in SEEDS
            ]
            return sum(maes) / len(maes)

        maes = [mean_mae(noise) for noise in NOISE_LEVELS]
        for lower, higher in zip(maes, maes[1:]):
            assert lower <= higher + 1e-9
        assert maes[-1] > maes[0]

    @pytest.mark.parametrize("predictor_class", PREDICTOR_CLASSES)
    def test_bias_bounded_by_mae(self, predictor_class):
        for seed in SEEDS:
            for noise in NOISE_LEVELS:
                stats, _, _ = settled_stats(predictor_class, seed, noise)
                assert abs(stats.bias_seconds) <= stats.mae_seconds + 1e-12
                assert stats.calibration > 0.0


# --------------------------------------------------------------------------- #
# Settle bookkeeping
# --------------------------------------------------------------------------- #
class TestSettleBookkeeping:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_outstanding_drains_to_zero_after_covering_settle(self, seed):
        streams = RandomStreams(seed)
        predictor = TheilSenPredictor()
        count = streams.uniform_int("count", 1, 50)
        latest = 0.0
        for index in range(count):
            made_at = streams.uniform(f"made.{index}", 0.0, 500.0)
            predictor.note(made_at, streams.uniform(f"tte.{index}", 1.0, 300.0))
            latest = max(latest, made_at)
        settled, _ = predictor.settle(latest + 1.0)
        assert settled == count
        assert predictor.outstanding_predictions == 0
        assert predictor.stats.count == count

    @pytest.mark.parametrize("seed", SEEDS)
    def test_settle_conserves_records(self, seed):
        streams = RandomStreams(seed)
        predictor = TheilSenPredictor()
        count = streams.uniform_int("count", 5, 60)
        made_ats = [streams.uniform(f"made.{i}", 0.0, 100.0) for i in range(count)]
        for made_at in made_ats:
            predictor.note(made_at, 10.0)
        since = streams.uniform("since", 20.0, 50.0)
        realized = streams.uniform("realized", 55.0, 90.0)
        expected_settled = sum(1 for t in made_ats if since <= t < realized)
        expected_discarded = sum(1 for t in made_ats if t < since)
        expected_remaining = sum(1 for t in made_ats if t >= realized)
        settled, _ = predictor.settle(realized, since=since)
        assert settled == expected_settled
        assert predictor.outstanding_predictions == expected_remaining
        assert settled + expected_discarded + expected_remaining == count

    @pytest.mark.parametrize("seed", SEEDS)
    def test_stale_regime_records_never_fold(self, seed):
        streams = RandomStreams(seed)
        predictor = TheilSenPredictor()
        stale_count = streams.uniform_int("stale", 1, 20)
        fresh_count = streams.uniform_int("fresh", 1, 20)
        since = 100.0
        realized = 200.0
        for index in range(stale_count):
            predictor.note(streams.uniform(f"s.{index}", 0.0, 99.0), 50.0)
        fresh_ttes = []
        for index in range(fresh_count):
            made_at = streams.uniform(f"f.{index}", 100.0, 199.0)
            predictor.note(made_at, 50.0)
            fresh_ttes.append((made_at, 50.0))
        settled, ratio = predictor.settle(realized, since=since)
        # Only the fresh regime is scored; the stale one is dropped outright.
        assert settled == fresh_count
        assert predictor.stats.count == fresh_count
        assert predictor.outstanding_predictions == 0
        expected_ratio = sum(
            tte / (realized - made_at) for made_at, tte in fresh_ttes
        ) / len(fresh_ttes)
        assert ratio == pytest.approx(expected_ratio)
        # A later settle cannot resurrect the discarded stale records.
        settled_again, _ = predictor.settle(realized + 100.0)
        assert settled_again == 0
        assert predictor.stats.count == fresh_count

    def test_outstanding_buffer_is_bounded_and_keeps_newest(self):
        predictor = TheilSenPredictor()
        total = MAX_OUTSTANDING + 137
        for index in range(total):
            predictor.note(float(index), 10.0)
        assert predictor.outstanding_predictions == MAX_OUTSTANDING
        # Settling everything scores exactly the retained (newest) records.
        settled, _ = predictor.settle(float(total) + 1.0)
        assert settled == MAX_OUTSTANDING
        realized = [float(total) + 1.0 - made for made in range(total - MAX_OUTSTANDING, total)]
        assert predictor.stats.count == MAX_OUTSTANDING
        assert min(realized) > 0  # sanity: all retained records were settleable


# --------------------------------------------------------------------------- #
# Random-walk robustness + determinism
# --------------------------------------------------------------------------- #
class TestRandomWalks:
    @pytest.mark.parametrize("predictor_class", PREDICTOR_CLASSES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_predictions_are_none_or_non_negative(self, predictor_class, seed):
        streams = RandomStreams(seed)
        generator = streams.stream("walk")
        series = TimeSeries("walk")
        value = 50.0
        for index in range(60):
            value += float(generator.normal(0.0, 3.0))
            series.record(float(index), value)
        predictor = predictor_class()
        tte = predictor.time_to_exhaustion(series, capacity=200.0, now=59.0)
        assert tte is None or tte >= 0.0

    @pytest.mark.parametrize("predictor_class", PREDICTOR_CLASSES)
    def test_same_seed_same_predictions(self, predictor_class):
        def run(seed: int):
            streams = RandomStreams(seed)
            series = noisy_linear_series(streams, "det", slope=2.0, noise=1.5)
            predictor = predictor_class()
            return predictor.predict(series, capacity=500.0, now=39.0)

        assert run(3) == run(3)
        assert run(3) != run(4)
