"""Tests for the ablation matrix runner and its deterministic artifacts."""

from __future__ import annotations

import pytest

from repro.experiments.ablation import (
    FAULTS,
    MECHANISMS,
    POLICIES,
    AblationManifest,
    AblationRunResult,
    default_manifest,
    render_markdown,
    run_ablation,
    smoke_manifest,
    write_reports,
)


class TestAblationManifest:
    def test_defaults_are_valid(self):
        manifest = default_manifest()
        assert manifest.cell_count() == len(manifest.faults) * len(manifest.mechanisms)
        assert set(manifest.mechanisms) <= set(MECHANISMS)
        assert set(manifest.faults) <= set(FAULTS)
        assert set(manifest.policies) <= set(POLICIES)

    def test_unknown_fault_rejected_listing_known(self):
        with pytest.raises(ValueError) as excinfo:
            AblationManifest(faults=["bit-rot"])
        message = str(excinfo.value)
        assert "bit-rot" in message
        assert "slow-downstream" in message  # the known set is spelled out

    def test_unknown_mechanism_and_policy_rejected(self):
        with pytest.raises(ValueError):
            AblationManifest(mechanisms=["prayer"])
        with pytest.raises(ValueError):
            AblationManifest(policies=["reboot-weekly"])

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            AblationManifest(faults=[])
        with pytest.raises(ValueError):
            AblationManifest(seeds=[])
        with pytest.raises(ValueError):
            AblationManifest(duration_scale=0.0)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError) as excinfo:
            AblationManifest.from_dict({"name": "x", "speeds": [1]})
        assert "speeds" in str(excinfo.value)

    def test_round_trips_through_dict(self):
        manifest = smoke_manifest()
        again = AblationManifest.from_dict(manifest.to_dict())
        assert again == manifest

    def test_from_file(self, tmp_path):
        import json

        path = tmp_path / "manifest.json"
        path.write_text(json.dumps(smoke_manifest().to_dict()))
        assert AblationManifest.from_file(str(path)) == smoke_manifest()


def _synthetic_result() -> AblationRunResult:
    """Hand-built cells with known costs to pin the ranking math."""
    manifest = AblationManifest(
        name="synthetic",
        policies=["no-action", "time-based"],
        faults=["memory-leak", "lock-convoy"],
        mechanisms=["none", "naive-retry", "backoff"],
        seeds=[1],
    )
    costs = {
        # (policy, fault): {mechanism: cost}
        ("no-action", "memory-leak"): {"none": 10.0, "naive-retry": 8.0, "backoff": 2.0},
        ("no-action", "lock-convoy"): {"none": 20.0, "naive-retry": 18.0, "backoff": 6.0},
        ("time-based", "memory-leak"): {"none": 6.0, "naive-retry": 5.0, "backoff": 3.0},
        ("time-based", "lock-convoy"): {"none": 12.0, "naive-retry": 11.0, "backoff": 4.0},
    }
    cells = [
        {
            "policy": policy,
            "fault": fault,
            "mechanism": mechanism,
            "seed": 1,
            "sla_cost": cost,
            "completed": 100,
            "errors": 0,
            "timeouts": 0,
            "retries": 0,
            "refused": 0,
            "downtime_s": 0.0,
        }
        for (policy, fault), by_mechanism in costs.items()
        for mechanism, cost in by_mechanism.items()
    ]
    return AblationRunResult(manifest=manifest, cells=cells, duration_scale=0.05)


class TestRankingMath:
    def test_mechanism_importance_vs_none_baseline(self):
        rows = _synthetic_result().mechanism_importance()
        by_name = {row["mechanism"]: row for row in rows}
        # backoff removes mean((10-2)+(20-6)+(6-3)+(12-4))/4 = 8.25
        assert by_name["backoff"]["mean_cost_removed"] == pytest.approx(8.25)
        # naive-retry removes mean(2+2+1+1)/4 = 1.5
        assert by_name["naive-retry"]["mean_cost_removed"] == pytest.approx(1.5)
        assert by_name["backoff"]["rank"] == 1
        assert by_name["naive-retry"]["rank"] == 2
        assert all(row["baseline"] == "none" for row in rows)

    def test_policy_regret_ranks_the_best_policy_first(self):
        rows = _synthetic_result().policy_regret()
        by_name = {row["policy"]: row for row in rows}
        # time-based is best in every (fault, mechanism) cell except
        # (memory-leak, backoff) where no-action wins by 1.
        assert by_name["time-based"]["mean_regret"] == pytest.approx(1.0 / 6.0)
        assert by_name["no-action"]["mean_regret"] == pytest.approx(
            (4.0 + 3.0 + 0.0 + 8.0 + 7.0 + 2.0) / 6.0
        )
        assert by_name["time-based"]["rank"] == 1

    def test_fault_severity_ranked_descending(self):
        rows = _synthetic_result().fault_severity()
        assert [row["fault"] for row in rows] == ["lock-convoy", "memory-leak"]
        assert rows[0]["mean_sla_cost"] == pytest.approx((20 + 18 + 6 + 12 + 11 + 4) / 6)
        assert rows[0]["rank"] == 1

    def test_payload_contains_all_reports(self):
        payload = _synthetic_result().to_payload()
        assert set(payload) == {
            "manifest",
            "duration_scale",
            "cells",
            "mechanism_importance",
            "policy_regret",
            "fault_severity",
        }


class TestRunAblation:
    @pytest.fixture(scope="class")
    def mini(self):
        manifest = AblationManifest(
            name="mini",
            policies=["no-action"],
            faults=["slow-downstream"],
            mechanisms=["naive-retry", "backoff-breaker"],
            seeds=[42],
            duration_scale=0.01,
            period_n=3,
            ebs=20,
            tiny=True,
        )
        return manifest, run_ablation(manifest)

    def test_runs_every_cell_in_order(self, mini):
        manifest, result = mini
        assert len(result.cells) == manifest.cell_count() == 2
        assert [cell["mechanism"] for cell in result.cells] == [
            "naive-retry",
            "backoff-breaker",
        ]
        for cell in result.cells:
            assert cell["completed"] > 0
            assert cell["sla_cost"] >= 0.0

    def test_artifacts_are_byte_identical_across_reruns(self, mini, tmp_path):
        manifest, result = mini
        first_dir = tmp_path / "first"
        second_dir = tmp_path / "second"
        first_paths = write_reports(result, str(first_dir))
        assert sorted(path.split("/")[-1] for path in first_paths) == [
            "ablation_mini.csv",
            "ablation_mini.json",
            "ablation_mini.md",
        ]
        # A completely fresh run of the same manifest regenerates the same bytes.
        rerun = run_ablation(
            AblationManifest.from_dict(manifest.to_dict())
        )
        second_paths = write_reports(rerun, str(second_dir))
        for first_file, second_file in zip(first_paths, second_paths):
            with open(first_file, "rb") as a, open(second_file, "rb") as b:
                assert a.read() == b.read(), first_file

    def test_markdown_includes_the_three_ranked_tables(self, mini):
        _, result = mini
        rendered = render_markdown(result)
        assert "# Ablation matrix: mini" in rendered
        assert "## Mechanism importance" in rendered
        assert "## Policy regret" in rendered
        assert "## Fault severity" in rendered
        assert "## Cells" in rendered

    def test_csv_has_fixed_columns(self, mini, tmp_path):
        _, result = mini
        paths = write_reports(result, str(tmp_path / "csv"))
        csv_path = next(path for path in paths if path.endswith(".csv"))
        with open(csv_path, "r", encoding="utf-8") as handle:
            header = handle.readline().strip()
        assert header == (
            "policy,fault,mechanism,seed,sla_cost,completed,errors,"
            "timeouts,retries,refused,downtime_s"
        )


class TestAblateCli:
    def test_parser_accepts_preset_and_overrides(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["ablate", "--preset", "smoke", "--tiny", "--duration-scale", "0.02"]
        )
        assert args.preset == "smoke"
        assert args.tiny
        assert args.duration_scale == pytest.approx(0.02)

    def test_bad_manifest_path_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        missing = tmp_path / "nope.json"
        assert main(["ablate", "--manifest", str(missing)]) == 2
        assert "error" in capsys.readouterr().err.lower()


class TestParallelAblation:
    @pytest.fixture(scope="class")
    def manifest(self):
        return AblationManifest(
            name="par",
            policies=["no-action"],
            faults=["slow-downstream"],
            mechanisms=["naive-retry", "backoff-breaker"],
            seeds=[42],
            duration_scale=0.01,
            period_n=3,
            ebs=20,
            tiny=True,
        )

    def test_jobs_must_be_positive(self, manifest):
        with pytest.raises(ValueError, match="jobs"):
            run_ablation(manifest, jobs=0)

    def test_process_pool_payload_identical_to_serial(self, manifest):
        """--jobs N must only change wall-clock, never a single byte.

        Each cell is an independent simulation seeded from its own
        coordinates, and the pool map preserves submission order, so the
        merged payload (cells + all three ranked reports) must compare
        equal to the serial run's.
        """
        serial = run_ablation(manifest, jobs=1)
        parallel = run_ablation(manifest, jobs=2)
        assert parallel.cells == serial.cells
        assert parallel.to_payload() == serial.to_payload()

    def test_progress_reports_every_cell_up_front(self, manifest):
        labels = []
        run_ablation(manifest, jobs=2, progress=labels.append)
        assert len(labels) == manifest.cell_count()
        assert "naive-retry" in labels[0]
