"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestCliParser:
    def test_requires_a_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_defaults(self):
        args = build_parser().parse_args(["fig4"])
        assert args.seed == 42
        assert args.duration_scale == pytest.approx(0.1)
        assert args.ebs == 100
        assert not args.tiny

    def test_quickstart_options(self):
        args = build_parser().parse_args(
            ["quickstart", "--component", "best_sellers", "--leak-kb", "50", "--tiny"]
        )
        assert args.component == "best_sellers"
        assert args.leak_kb == 50
        assert args.tiny


class TestCliCommands:
    def test_environment_command(self, capsys):
        assert main(["environment"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "Tomcat 5.5.26" in out

    def test_quickstart_command_small_run(self, capsys):
        exit_code = main(
            [
                "quickstart",
                "--tiny",
                "--ebs", "10",
                "--duration-scale", "0.03",
                "--period-n", "5",
                "--seed", "3",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Root cause ranking" in out
        assert "home" in out

    def test_fig4_command_small_run(self, capsys):
        exit_code = main(
            ["fig4", "--tiny", "--ebs", "20", "--duration-scale", "0.03", "--seed", "3"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Fig. 4" in out
        assert "root-cause ranking" in out

    def test_rejuvenation_command_small_run(self, capsys):
        exit_code = main(["rejuvenation", "--tiny", "--duration-scale", "0.02"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "per-policy availability" in out
        assert "proactive-microreboot" in out
        assert "time-based" in out
        assert "sla_cost" in out

    def test_adaptive_command_small_run(self, capsys):
        exit_code = main(["adaptive", "--tiny", "--duration-scale", "0.02"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "sla_cost" in out
        assert "adaptive" in out
        assert "verdicts:" in out
        assert "rejuvenation eliminates error spike" in out

    def test_mixed_command_small_run(self, capsys):
        exit_code = main(["mixed", "--tiny", "--duration-scale", "0.02"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Mixed faults" in out
        assert "heap_recycles" in out
        assert "proactive-microreboot" in out

    def test_mixed_dual_command_small_run(self, capsys):
        exit_code = main(["mixed", "--tiny", "--duration-scale", "0.02", "--dual"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "memory-leak+connection-leak" in out

    def test_learning_command_small_run(self, capsys, tmp_path):
        store = tmp_path / "calibration.json"
        exit_code = main(
            [
                "learning",
                "--tiny",
                "--duration-scale",
                "0.02",
                "--runs",
                "2",
                "--store",
                str(store),
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Cross-run calibration learning" in out
        assert "cumulative SLA cost: warm < cold" in out
        assert store.exists()


class TestBenchCompareCli:
    @staticmethod
    def _artifact(path, entries):
        path.write_text(json.dumps({"schema": "repro-bench/v1", "benches": entries}))

    @staticmethod
    def _entry(name, speedup, passed=None):
        return {
            "name": name,
            "speedup_vs_seed": speedup,
            "passed": passed,
            "options": {"seed": 42, "duration_scale": 0.05, "tiny": True},
        }

    def test_compare_passes_within_tolerance(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        self._artifact(old, [self._entry("a", 3.0, passed=True)])
        self._artifact(new, [self._entry("a", 2.9, passed=True)])
        assert main(["bench", "--compare", str(old), str(new)]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_compare_fails_on_regression(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        self._artifact(old, [self._entry("a", 3.0, passed=True)])
        self._artifact(new, [self._entry("a", 2.0, passed=True)])
        assert main(["bench", "--compare", str(old), str(new)]) == 1
        captured = capsys.readouterr()
        assert "regression" in captured.out + captured.err

    def test_compare_rejects_missing_artifact(self, tmp_path, capsys):
        old = tmp_path / "absent.json"
        new = tmp_path / "new.json"
        self._artifact(new, [self._entry("a", 1.0)])
        assert main(["bench", "--compare", str(old), str(new)]) == 2

    def test_compare_failure_summary_names_every_regressed_entry(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        self._artifact(
            old,
            [
                self._entry("a", 3.0, passed=True),
                self._entry("b", 2.0, passed=True),
                self._entry("c", 1.5, passed=True),
            ],
        )
        self._artifact(
            new,
            [
                self._entry("a", 2.0, passed=True),  # -33 %
                self._entry("b", 1.0, passed=True),  # -50 %
                self._entry("c", 1.5, passed=True),  # unchanged
            ],
        )
        assert main(["bench", "--compare", str(old), str(new)]) == 1
        err = capsys.readouterr().err
        summary = [line for line in err.splitlines() if "regression(s)" in line]
        assert len(summary) == 1, err
        # One line, naming each regressed (name, options) entry with its delta.
        assert "a[tiny] -33.3%" in summary[0]
        assert "b[tiny] -50.0%" in summary[0]
        assert "c[tiny]" not in summary[0]


class TestScenarioRegistry:
    def test_every_registered_scenario_gets_a_subparser(self):
        from repro.cli import SCENARIO_COMMANDS

        parser = build_parser()
        for command in SCENARIO_COMMANDS:
            args = parser.parse_args([command.name])
            assert args.handler is command.handler
            assert args.seed == 42
            assert hasattr(args, "ebs") == command.include_ebs

    def test_register_scenario_rejects_duplicate_names(self):
        from repro.cli import SCENARIO_COMMANDS, ScenarioCommand, register_scenario

        existing = SCENARIO_COMMANDS[0]
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(
                ScenarioCommand(existing.name, "dup", handler=existing.handler)
            )

    def test_fleet_command_options(self):
        args = build_parser().parse_args(
            ["fleet", "--shards", "2", "--balancer", "round-robin", "--tiny"]
        )
        assert args.shards == 2
        assert args.balancer == "round-robin"
        assert args.tiny

    def test_fleet_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.shards == 4
        assert args.balancer == "sticky"

    def test_ablate_jobs_option(self):
        args = build_parser().parse_args(["ablate", "--jobs", "3"])
        assert args.jobs == 3
        assert build_parser().parse_args(["ablate"]).jobs == 1

    def test_canary_command_options(self):
        args = build_parser().parse_args(
            ["canary", "--shards", "4", "--stream-metrics", "out.jsonl", "--tiny"]
        )
        assert args.shards == 4
        assert args.stream_metrics == "out.jsonl"
        assert args.tiny
        defaults = build_parser().parse_args(["canary"])
        assert defaults.shards == 3
        assert defaults.stream_metrics is None


class TestUnknownCommand:
    def test_unknown_command_prints_registry_table(self, capsys):
        assert main(["frobnicate"]) == 2
        err = capsys.readouterr().err
        assert "unknown command 'frobnicate'" in err
        # The registry table, not argparse's bare "invalid choice" error.
        assert "invalid choice" not in err
        for name in ("environment", "bench", "ablate", "fig3", "fleet", "canary"):
            assert name in err

    def test_no_command_prints_registry_table(self, capsys):
        assert main([]) == 2
        err = capsys.readouterr().err
        assert "available commands" in err
        assert "canary" in err

    def test_help_and_version_still_reach_argparse(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        assert "usage" in capsys.readouterr().out


class TestFleetCommand:
    def test_fleet_smoke_run(self, capsys):
        exit_code = main(
            ["fleet", "--tiny", "--duration-scale", "0.02", "--shards", "2", "--seed", "42"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "rolling" in out
        assert "simultaneous" in out
        assert "served == issued" in out
